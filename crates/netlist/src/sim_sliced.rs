//! Bit-sliced (word-parallel) cycle simulation: 64 independent
//! machines advance per gate operation.
//!
//! The levelized [`Simulator`](crate::Simulator) and the event-driven
//! [`EventSimulator`](crate::EventSimulator) both advance **one**
//! stimulus per call; a fault campaign replaying hundreds of faulty
//! machines, or a fuzzer driving dozens of generated cases, pays the
//! whole netlist walk once per machine. [`SlicedSimulator`] applies
//! the same word-parallel trick as the packed positional-cube kernel
//! in `adgen-synth`: each net holds one `u64` *word* per 64 lanes, so
//! a single pass over the gates steps up to 64 independent machines —
//! same netlist, different stimulus and different injected faults per
//! lane.
//!
//! ## Slicing layout
//!
//! Three-valued (`0/1/X`) semantics need two bitplanes per net:
//!
//! * `ones` — bit set ⇔ the lane's value is [`Logic::One`];
//! * `xs`   — bit set ⇔ the lane's value is [`Logic::X`].
//!
//! Both clear means [`Logic::Zero`]; `ones & xs == 0` is a canonical-
//! form invariant every packed operator preserves. Lane `l` lives in
//! bit `l % 64` of word `l / 64`; a simulator with `lanes` not a
//! multiple of 64 masks the trailing word so inactive bits never leak
//! into reads or fault hooks.
//!
//! ## Lane-mask fault hooks and the golden-lane convention
//!
//! [`force_net_lanes`](SlicedSimulator::force_net_lanes) and
//! [`upset_flip_flop_lanes`](SlicedSimulator::upset_flip_flop_lanes)
//! take a [`LaneMask`], so one pass carries a whole batch of faulty
//! machines next to an unfaulted reference: the campaign engine packs
//! 63 faults into lanes `1..` and keeps lane 0 as the shared *golden*
//! lane, cross-checked against the scalar golden trace every cycle.
//!
//! Every lane is bit-exact with the scalar engines by construction;
//! the fuzz family `sliced-vs-scalar` and the word-seam tests below
//! pin that equivalence.

use crate::cell::CellKind;
use crate::error::NetlistError;
use crate::graph::{InstId, NetId, Netlist};
use crate::sim::{Logic, SimControl};
use adgen_obs as obs;

/// One 64-lane word of three-valued values: `ones` marks One lanes,
/// `xs` marks X lanes, both clear is Zero. Invariant: `ones & xs == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Pk {
    ones: u64,
    xs: u64,
}

/// All lanes Zero.
const PK_ZERO: Pk = Pk { ones: 0, xs: 0 };
/// All lanes One.
const PK_ONE: Pk = Pk { ones: !0, xs: 0 };
/// All lanes X.
const PK_X: Pk = Pk { ones: 0, xs: !0 };

impl Pk {
    fn broadcast(v: Logic) -> Pk {
        match v {
            Logic::Zero => PK_ZERO,
            Logic::One => PK_ONE,
            Logic::X => PK_X,
        }
    }

    fn lane(self, bit: u32) -> Logic {
        if (self.xs >> bit) & 1 == 1 {
            Logic::X
        } else if (self.ones >> bit) & 1 == 1 {
            Logic::One
        } else {
            Logic::Zero
        }
    }
}

#[inline]
fn pk_not(a: Pk) -> Pk {
    Pk {
        ones: !a.ones & !a.xs,
        xs: a.xs,
    }
}

#[inline]
fn pk_and(a: Pk, b: Pk) -> Pk {
    let one = a.ones & b.ones;
    let zero = (!a.ones & !a.xs) | (!b.ones & !b.xs);
    Pk {
        ones: one,
        xs: !(one | zero),
    }
}

#[inline]
fn pk_or(a: Pk, b: Pk) -> Pk {
    let one = a.ones | b.ones;
    let zero = (!a.ones & !a.xs) & (!b.ones & !b.xs);
    Pk {
        ones: one,
        xs: !(one | zero),
    }
}

#[inline]
fn pk_xor(a: Pk, b: Pk) -> Pk {
    let xs = a.xs | b.xs;
    Pk {
        ones: (a.ones ^ b.ones) & !xs,
        xs,
    }
}

/// Lane-wise [`Logic::merge`]: the common value where both sides
/// agree and are defined, X everywhere else.
#[inline]
fn pk_merge(a: Pk, b: Pk) -> Pk {
    let same = !a.xs & !b.xs & !(a.ones ^ b.ones);
    Pk {
        ones: a.ones & same,
        xs: !same,
    }
}

/// Lane-wise 2:1 mux with X-select merge — also the shared kernel of
/// every flip-flop next-state function (enable, reset and set pins
/// are selects).
#[inline]
fn pk_mux(d0: Pk, d1: Pk, s: Pk) -> Pk {
    let m = pk_merge(d0, d1);
    let s_one = s.ones;
    let s_zero = !s.ones & !s.xs;
    Pk {
        ones: (d0.ones & s_zero) | (d1.ones & s_one) | (m.ones & s.xs),
        xs: (d0.xs & s_zero) | (d1.xs & s_one) | (m.xs & s.xs),
    }
}

/// Word-parallel combinational evaluation, lane-for-lane identical to
/// the scalar `eval_gate`.
fn eval_gate_pk(kind: CellKind, v: &dyn Fn(usize) -> Pk) -> Pk {
    match kind {
        CellKind::Inv => pk_not(v(0)),
        CellKind::Buf => v(0),
        CellKind::Nand2 => pk_not(pk_and(v(0), v(1))),
        CellKind::Nand3 => pk_not(pk_and(pk_and(v(0), v(1)), v(2))),
        CellKind::Nand4 => pk_not(pk_and(pk_and(pk_and(v(0), v(1)), v(2)), v(3))),
        CellKind::Nor2 => pk_not(pk_or(v(0), v(1))),
        CellKind::Nor3 => pk_not(pk_or(pk_or(v(0), v(1)), v(2))),
        CellKind::Nor4 => pk_not(pk_or(pk_or(pk_or(v(0), v(1)), v(2)), v(3))),
        CellKind::And2 => pk_and(v(0), v(1)),
        CellKind::And3 => pk_and(pk_and(v(0), v(1)), v(2)),
        CellKind::And4 => pk_and(pk_and(pk_and(v(0), v(1)), v(2)), v(3)),
        CellKind::Or2 => pk_or(v(0), v(1)),
        CellKind::Or3 => pk_or(pk_or(v(0), v(1)), v(2)),
        CellKind::Or4 => pk_or(pk_or(pk_or(v(0), v(1)), v(2)), v(3)),
        CellKind::Xor2 => pk_xor(v(0), v(1)),
        CellKind::Xnor2 => pk_not(pk_xor(v(0), v(1))),
        CellKind::Aoi21 => pk_not(pk_or(pk_and(v(0), v(1)), v(2))),
        CellKind::Oai21 => pk_not(pk_and(pk_or(v(0), v(1)), v(2))),
        CellKind::Mux2 => pk_mux(v(0), v(1), v(2)),
        CellKind::TieHi => PK_ONE,
        CellKind::TieLo => PK_ZERO,
        _ => unreachable!("sequential cell in combinational order"),
    }
}

/// Word-parallel flip-flop next state, lane-for-lane identical to the
/// scalar `ff_next_state`. Control pins reduce to [`pk_mux`]: an X
/// enable merges data with the held state, an X reset/set merges the
/// forced constant with the data path — exactly the scalar X rules.
fn ff_next_pk(kind: CellKind, cur: Pk, pin: &dyn Fn(usize) -> Pk) -> Pk {
    match kind {
        CellKind::Dff => pin(0),
        CellKind::Dffe => pk_mux(cur, pin(0), pin(1)),
        CellKind::Dffr => pk_mux(pin(0), PK_ZERO, pin(1)),
        CellKind::Dffs => pk_mux(pin(0), PK_ONE, pin(1)),
        CellKind::Dffre => pk_mux(pk_mux(cur, pin(0), pin(1)), PK_ZERO, pin(2)),
        CellKind::Dffse => pk_mux(pk_mux(cur, pin(0), pin(1)), PK_ONE, pin(2)),
        _ => unreachable!("combinational cell treated as flip-flop"),
    }
}

/// A per-lane bit mask over the lanes of one [`SlicedSimulator`] —
/// the batch-selection argument of the lane-masked fault hooks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneMask {
    words: Vec<u64>,
    lanes: usize,
}

impl LaneMask {
    /// An empty mask over `lanes` lanes.
    pub fn none(lanes: usize) -> Self {
        LaneMask {
            words: vec![0; lanes.div_ceil(64)],
            lanes,
        }
    }

    /// Every active lane set (trailing-word bits beyond `lanes` stay
    /// clear).
    pub fn all(lanes: usize) -> Self {
        let mut m = LaneMask::none(lanes);
        for (w, word) in m.words.iter_mut().enumerate() {
            *word = tail_mask(lanes, w);
        }
        m
    }

    /// A single-lane mask.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes`.
    pub fn single(lane: usize, lanes: usize) -> Self {
        let mut m = LaneMask::none(lanes);
        m.set(lane);
        m
    }

    /// Number of lanes the mask ranges over.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Sets `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes`.
    pub fn set(&mut self, lane: usize) {
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        self.words[lane / 64] |= 1u64 << (lane % 64);
    }

    /// Whether `lane` is set.
    pub fn get(&self, lane: usize) -> bool {
        lane < self.lanes && (self.words[lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// Number of set lanes.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn word(&self, w: usize) -> u64 {
        self.words[w]
    }
}

/// Mask of the active bits of word `w` for a `lanes`-lane simulator.
fn tail_mask(lanes: usize, w: usize) -> u64 {
    let below = lanes.saturating_sub(w * 64);
    match below {
        0 => 0,
        64.. => !0,
        n => (1u64 << n) - 1,
    }
}

/// A stuck-at override on a subset of lanes: outside `mask` the net
/// follows its driver, inside it is pinned to the stored planes.
#[derive(Debug, Clone)]
struct ForceRow {
    ones: Vec<u64>,
    xs: Vec<u64>,
    mask: Vec<u64>,
}

/// Sentinel for "no force on this net" in the dense index map.
const NO_FORCE: u32 = u32::MAX;

/// Bit-sliced cycle-accurate simulator: `lanes` independent machines
/// over one shared [`Netlist`], each lane bit-exact with
/// [`Simulator`](crate::Simulator) under the same per-lane stimulus
/// and faults.
#[derive(Debug, Clone)]
pub struct SlicedSimulator<'a> {
    netlist: &'a Netlist,
    order: Vec<InstId>,
    lanes: usize,
    words: usize,
    /// `ones` plane per net, net-major: `net.index() * words + w`.
    val_ones: Vec<u64>,
    /// `xs` plane per net, same layout.
    val_xs: Vec<u64>,
    /// Flip-flop state planes per instance, instance-major.
    st_ones: Vec<u64>,
    st_xs: Vec<u64>,
    /// Dense net-index → force-row map (`NO_FORCE` = unforced).
    force_idx: Vec<u32>,
    forces: Vec<(NetId, ForceRow)>,
    cycle: u64,
    evaluations: u64,
    word_ops: u64,
}

impl<'a> SlicedSimulator<'a> {
    /// Prepares a simulator with `lanes` machines for `netlist`. Every
    /// lane powers up all-X, exactly like the scalar engines.
    ///
    /// # Errors
    ///
    /// Fails if the netlist does not [`validate`](Netlist::validate)
    /// or `lanes` is zero (reported as a width mismatch).
    pub fn new(netlist: &'a Netlist, lanes: usize) -> Result<Self, NetlistError> {
        if lanes == 0 {
            return Err(NetlistError::InputWidthMismatch {
                expected: 1,
                found: 0,
            });
        }
        netlist.validate()?;
        let order = netlist.comb_topo_order()?;
        let words = lanes.div_ceil(64);
        if obs::enabled() {
            obs::add(obs::Ctr::SimSlicedPasses, 1);
            obs::add(obs::Ctr::SimSlicedLanes, lanes as u64);
        }
        Ok(SlicedSimulator {
            netlist,
            order,
            lanes,
            words,
            val_ones: vec![0; netlist.nets().len() * words],
            val_xs: vec![!0; netlist.nets().len() * words],
            st_ones: vec![0; netlist.instances().len() * words],
            st_xs: vec![!0; netlist.instances().len() * words],
            force_idx: vec![NO_FORCE; netlist.nets().len()],
            forces: Vec::new(),
            cycle: 0,
            evaluations: 0,
            word_ops: 0,
        })
    }

    /// Number of lanes (independent machines).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of 64-lane words per net.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of clock cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Combinational gate evaluations performed, counted per 64-lane
    /// *word*: one evaluation advances up to 64 machines, which is
    /// exactly where the engine's speedup comes from.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Total kernel word operations (gate evaluations plus flip-flop
    /// captures, per word) — the sliced analogue of `cube.word_ops`.
    pub fn word_ops(&self) -> u64 {
        self.word_ops
    }

    #[inline]
    fn read(&self, net: NetId, w: usize) -> Pk {
        let at = net.index() * self.words + w;
        Pk {
            ones: self.val_ones[at],
            xs: self.val_xs[at],
        }
    }

    #[inline]
    fn write(&mut self, net: NetId, w: usize, v: Pk) {
        let at = net.index() * self.words + w;
        self.val_ones[at] = v.ones;
        self.val_xs[at] = v.xs;
    }

    /// Value of `net` in `lane` (as of the last step).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes`.
    pub fn value_lane(&self, net: NetId, lane: usize) -> Logic {
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        self.read(net, lane / 64).lane((lane % 64) as u32)
    }

    /// Primary-output values of `lane`, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes`.
    pub fn output_values_lane(&self, lane: usize) -> Vec<Logic> {
        self.netlist
            .outputs()
            .iter()
            .map(|&o| self.value_lane(o, lane))
            .collect()
    }

    /// Stored flip-flop states of `lane`, in instance order — the
    /// same view as the scalar `flip_flop_states`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes`.
    pub fn flip_flop_states_lane(&self, lane: usize) -> Vec<Logic> {
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        let (w, bit) = (lane / 64, (lane % 64) as u32);
        self.netlist
            .instances()
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.kind().is_sequential())
            .map(|(idx, _)| {
                Pk {
                    ones: self.st_ones[idx * self.words + w],
                    xs: self.st_xs[idx * self.words + w],
                }
                .lane(bit)
            })
            .collect()
    }

    /// Raw `(ones, xs)` planes of `net` for word `w`, trimmed to the
    /// active lanes — the mask-level readback the campaign engine
    /// classifies whole fault batches with.
    ///
    /// # Panics
    ///
    /// Panics if `w >= words`.
    pub fn packed_value(&self, net: NetId, w: usize) -> (u64, u64) {
        assert!(w < self.words, "word {w} out of {}", self.words);
        let active = tail_mask(self.lanes, w);
        let v = self.read(net, w);
        (v.ones & active, v.xs & active)
    }

    /// Pins `net` at `value` on every lane in `mask` — the stuck-at
    /// model, batched. Lanes outside `mask` keep following the net's
    /// driver; re-forcing a masked lane replaces its value.
    ///
    /// # Panics
    ///
    /// Panics if `mask` was built for a different lane count.
    pub fn force_net_lanes(&mut self, net: NetId, value: Logic, mask: &LaneMask) {
        assert_eq!(
            mask.lanes(),
            self.lanes,
            "lane mask built for a different simulator"
        );
        let pv = Pk::broadcast(value);
        let slot = self.force_idx[net.index()];
        let row = if slot == NO_FORCE {
            self.force_idx[net.index()] = self.forces.len() as u32;
            self.forces.push((
                net,
                ForceRow {
                    ones: vec![0; self.words],
                    xs: vec![0; self.words],
                    mask: vec![0; self.words],
                },
            ));
            &mut self.forces.last_mut().expect("just pushed").1
        } else {
            &mut self.forces[slot as usize].1
        };
        for w in 0..self.words {
            let m = mask.word(w) & tail_mask(self.lanes, w);
            row.mask[w] |= m;
            row.ones[w] = (row.ones[w] & !m) | (pv.ones & m);
            row.xs[w] = (row.xs[w] & !m) | (pv.xs & m);
        }
    }

    /// Removes every active [`force_net_lanes`](Self::force_net_lanes)
    /// override on every lane; nets resume following their drivers on
    /// the next step.
    pub fn clear_forces(&mut self) {
        for (net, _) in self.forces.drain(..) {
            self.force_idx[net.index()] = NO_FORCE;
        }
    }

    /// Flips the stored state of flip-flop `inst` on every lane in
    /// `mask` whose state is defined (`0 ↔ 1`; X lanes are left
    /// alone) — the single-event-upset model, batched. Returns the
    /// mask of lanes that actually flipped.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not sequential or `mask` was built for a
    /// different lane count.
    pub fn upset_flip_flop_lanes(&mut self, inst: InstId, mask: &LaneMask) -> LaneMask {
        assert!(
            self.netlist.instance(inst).kind().is_sequential(),
            "single-event upsets only apply to flip-flops"
        );
        assert_eq!(
            mask.lanes(),
            self.lanes,
            "lane mask built for a different simulator"
        );
        let mut flipped = LaneMask::none(self.lanes);
        for w in 0..self.words {
            let at = inst.index() * self.words + w;
            let hit = mask.word(w) & !self.st_xs[at] & tail_mask(self.lanes, w);
            self.st_ones[at] ^= hit;
            flipped.words[w] = hit;
        }
        flipped
    }

    /// Advances one clock cycle with the same stimulus on every lane.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a wrong-width
    /// stimulus.
    pub fn step(&mut self, inputs: &[Logic]) -> Result<(), NetlistError> {
        let pis = self.netlist.inputs();
        if inputs.len() != pis.len() {
            return Err(NetlistError::InputWidthMismatch {
                expected: pis.len(),
                found: inputs.len(),
            });
        }
        let rows: Vec<Pk> = inputs.iter().map(|&v| Pk::broadcast(v)).collect();
        self.step_rows(&rows);
        Ok(())
    }

    /// Convenience wrapper over [`step`](Self::step) taking `bool`s.
    ///
    /// # Errors
    ///
    /// Same as [`step`](Self::step).
    pub fn step_bools(&mut self, inputs: &[bool]) -> Result<(), NetlistError> {
        let v: Vec<Logic> = inputs.iter().map(|&b| Logic::from_bool(b)).collect();
        self.step(&v)
    }

    /// Advances one clock cycle with an independent stimulus per
    /// lane: `per_lane[l]` supplies the full primary-input vector of
    /// lane `l`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if the outer
    /// length is not `lanes` or any inner length is not the number of
    /// primary inputs.
    pub fn step_per_lane(&mut self, per_lane: &[Vec<Logic>]) -> Result<(), NetlistError> {
        let pis = self.netlist.inputs();
        if per_lane.len() != self.lanes {
            return Err(NetlistError::InputWidthMismatch {
                expected: self.lanes,
                found: per_lane.len(),
            });
        }
        if let Some(bad) = per_lane.iter().find(|v| v.len() != pis.len()) {
            return Err(NetlistError::InputWidthMismatch {
                expected: pis.len(),
                found: bad.len(),
            });
        }
        // Transpose the per-lane stimulus into per-input plane words.
        let mut rows = vec![PK_ZERO; pis.len() * self.words];
        for (lane, inputs) in per_lane.iter().enumerate() {
            let (w, bit) = (lane / 64, lane % 64);
            for (k, &v) in inputs.iter().enumerate() {
                let row = &mut rows[k * self.words + w];
                match v {
                    Logic::Zero => {}
                    Logic::One => row.ones |= 1u64 << bit,
                    Logic::X => row.xs |= 1u64 << bit,
                }
            }
        }
        self.step_rows_strided(&rows);
        Ok(())
    }

    /// The shared step body for a broadcast stimulus (one row per
    /// primary input, applied to every word).
    fn step_rows(&mut self, rows: &[Pk]) {
        let words = self.words;
        let expanded: Vec<Pk> = rows
            .iter()
            .flat_map(|&r| std::iter::repeat_n(r, words))
            .collect();
        self.step_rows_strided(&expanded);
    }

    /// One cycle from pre-packed input planes (`rows[k * words + w]`
    /// is input `k`, word `w`): drive inputs, present state on Q,
    /// apply forces, settle in topological order, capture next state.
    fn step_rows_strided(&mut self, rows: &[Pk]) {
        let words = self.words;
        let mut step_word_ops = 0u64;
        let mut step_evals = 0u64;
        // Drive primary inputs.
        for (k, &net) in self.netlist.inputs().iter().enumerate() {
            for w in 0..words {
                self.write(net, w, rows[k * words + w]);
            }
        }
        // Present flip-flop state on Q pins.
        for (idx, inst) in self.netlist.instances().iter().enumerate() {
            if inst.kind().is_sequential() {
                for &q in inst.outputs() {
                    for w in 0..words {
                        let at = idx * words + w;
                        self.write(
                            q,
                            w,
                            Pk {
                                ones: self.st_ones[at],
                                xs: self.st_xs[at],
                            },
                        );
                    }
                }
            }
        }
        // Pin forced lanes before settling so flip-flop sampling and
        // fanout both see the overrides, as in the scalar engines.
        for fi in 0..self.forces.len() {
            let net = self.forces[fi].0;
            for w in 0..words {
                let v = self.apply_force(fi, w, self.read(net, w));
                self.write(net, w, v);
            }
        }
        // Settle combinational logic in topological order.
        for oi in 0..self.order.len() {
            let id = self.order[oi];
            let inst = self.netlist.instance(id);
            let kind = inst.kind();
            let num_outputs = inst.outputs().len();
            for w in 0..words {
                let v = {
                    let inputs = inst.inputs();
                    eval_gate_pk(kind, &|i| self.read(inputs[i], w))
                };
                step_evals += 1;
                for o in 0..num_outputs {
                    let net = self.netlist.instance(id).outputs()[o];
                    let v = match self.force_idx[net.index()] {
                        NO_FORCE => v,
                        fi => self.apply_force(fi as usize, w, v),
                    };
                    self.write(net, w, v);
                }
            }
        }
        // Capture next state. In-place is safe: pins read settled net
        // values, never another flip-flop's stored state.
        for (idx, inst) in self.netlist.instances().iter().enumerate() {
            if !inst.kind().is_sequential() {
                continue;
            }
            for w in 0..words {
                let at = idx * words + w;
                let cur = Pk {
                    ones: self.st_ones[at],
                    xs: self.st_xs[at],
                };
                let next = {
                    let inputs = inst.inputs();
                    ff_next_pk(inst.kind(), cur, &|i| self.read(inputs[i], w))
                };
                self.st_ones[at] = next.ones;
                self.st_xs[at] = next.xs;
                step_word_ops += 1;
            }
        }
        step_word_ops += step_evals;
        self.evaluations += step_evals;
        self.word_ops += step_word_ops;
        self.cycle += 1;
        if obs::enabled() {
            obs::add(obs::Ctr::SimEvaluations, step_evals);
            obs::add(obs::Ctr::SimSlicedWordOps, step_word_ops);
        }
    }

    /// Blends force row `fi`'s pinned lanes into `v` for word `w`.
    fn apply_force(&self, fi: usize, w: usize, v: Pk) -> Pk {
        let row = &self.forces[fi].1;
        let m = row.mask[w];
        Pk {
            ones: (v.ones & !m) | (row.ones[w] & m),
            xs: (v.xs & !m) | (row.xs[w] & m),
        }
    }
}

/// The scalar view of a sliced simulator: stimulus and faults
/// broadcast to every lane, reads come from lane 0. With this a
/// `SlicedSimulator` drops into any harness written against the
/// shared control surface.
impl SimControl for SlicedSimulator<'_> {
    fn force_net(&mut self, net: NetId, value: Logic) {
        self.force_net_lanes(net, value, &LaneMask::all(self.lanes));
    }

    fn clear_forces(&mut self) {
        SlicedSimulator::clear_forces(self);
    }

    fn upset_flip_flop(&mut self, inst: InstId) -> bool {
        self.upset_flip_flop_lanes(inst, &LaneMask::all(self.lanes))
            .get(0)
    }

    fn flip_flop_states(&self) -> Vec<Logic> {
        self.flip_flop_states_lane(0)
    }

    fn cycle(&self) -> u64 {
        SlicedSimulator::cycle(self)
    }

    fn evaluations(&self) -> u64 {
        SlicedSimulator::evaluations(self)
    }

    fn value(&self, net: NetId) -> Logic {
        self.value_lane(net, 0)
    }

    fn output_values(&self) -> Vec<Logic> {
        self.output_values_lane(0)
    }

    fn step(&mut self, inputs: &[Logic]) -> Result<(), NetlistError> {
        SlicedSimulator::step(self, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    const ALL_LOGIC: [Logic; 3] = [Logic::Zero, Logic::One, Logic::X];

    fn pk_of(values: &[Logic]) -> Pk {
        let mut pk = PK_ZERO;
        for (i, &v) in values.iter().enumerate() {
            match v {
                Logic::Zero => {}
                Logic::One => pk.ones |= 1 << i,
                Logic::X => pk.xs |= 1 << i,
            }
        }
        pk
    }

    fn assert_canonical(pk: Pk) {
        assert_eq!(pk.ones & pk.xs, 0, "ones/xs overlap: {pk:?}");
    }

    /// Every packed binary operator must agree with the scalar truth
    /// table on all 9 value pairs, packed into one word.
    #[test]
    fn packed_ops_match_scalar_truth_tables() {
        let mut avs = Vec::new();
        let mut bvs = Vec::new();
        for &a in &ALL_LOGIC {
            for &b in &ALL_LOGIC {
                avs.push(a);
                bvs.push(b);
            }
        }
        let pa = pk_of(&avs);
        let pb = pk_of(&bvs);
        type ScalarOp = fn(Logic, Logic) -> Logic;
        type PackedOp = fn(Pk, Pk) -> Pk;
        let table: [(&str, ScalarOp, PackedOp); 4] = [
            ("and", Logic::and, pk_and),
            ("or", Logic::or, pk_or),
            ("xor", Logic::xor, pk_xor),
            ("merge", Logic::merge, pk_merge),
        ];
        for (name, scalar, packed) in table {
            let got = packed(pa, pb);
            assert_canonical(got);
            for i in 0..avs.len() {
                assert_eq!(
                    got.lane(i as u32),
                    scalar(avs[i], bvs[i]),
                    "{name}({:?}, {:?})",
                    avs[i],
                    bvs[i]
                );
            }
        }
        let got = pk_not(pa);
        assert_canonical(got);
        for (i, &av) in avs.iter().enumerate() {
            assert_eq!(got.lane(i as u32), av.not(), "not({av:?})");
        }
    }

    /// The packed mux over all 27 (d0, d1, s) combinations.
    #[test]
    fn packed_mux_matches_scalar() {
        let mut d0s = Vec::new();
        let mut d1s = Vec::new();
        let mut ss = Vec::new();
        for &a in &ALL_LOGIC {
            for &b in &ALL_LOGIC {
                for &s in &ALL_LOGIC {
                    d0s.push(a);
                    d1s.push(b);
                    ss.push(s);
                }
            }
        }
        let got = pk_mux(pk_of(&d0s), pk_of(&d1s), pk_of(&ss));
        assert_canonical(got);
        for i in 0..d0s.len() {
            let want = match ss[i] {
                Logic::Zero => d0s[i],
                Logic::One => d1s[i],
                Logic::X => d0s[i].merge(d1s[i]),
            };
            assert_eq!(
                got.lane(i as u32),
                want,
                "mux({:?}, {:?}, {:?})",
                d0s[i],
                d1s[i],
                ss[i]
            );
        }
    }

    /// The 4-FF ring with muxes from the event-sim tests — every
    /// sequential kind path plus combinational feedback through Q.
    fn ring_netlist() -> (Netlist, Vec<NetId>, Vec<InstId>) {
        let mut n = Netlist::new("ring");
        let en = n.add_input("en");
        let sel = n.add_input("sel");
        let rst = n.reset();
        let q: Vec<NetId> = (0..4).map(|i| n.add_net(format!("r{i}"))).collect();
        let mut ffs = Vec::new();
        for i in 0..4 {
            let prev = q[(i + 3) % 4];
            let alt = q[(i + 2) % 4];
            let d = n.gate(CellKind::Mux2, &[prev, alt, sel]).unwrap();
            let kind = if i == 0 {
                CellKind::Dffse
            } else {
                CellKind::Dffre
            };
            n.add_instance(format!("ff{i}"), kind, &[d, en, rst], &[q[i]])
                .unwrap();
            ffs.push(n.inst_id_from_index(n.num_instances() - 1));
            n.add_output(q[i]);
        }
        (n, q, ffs)
    }

    /// Broadcast-steps a sliced simulator against one scalar
    /// reference, comparing every net on every lane each cycle.
    fn cross_check_broadcast(netlist: &Netlist, lanes: usize, cycles: usize) {
        let mut reference = Simulator::new(netlist).unwrap();
        let mut sliced = SlicedSimulator::new(netlist, lanes).unwrap();
        let num_inputs = netlist.inputs().len();
        let mut lcg = 0x5eed ^ lanes as u64;
        for cycle in 0..cycles {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = lcg >> 33;
            let mut inputs = vec![Logic::Zero; num_inputs];
            inputs[0] = Logic::from_bool(cycle == 0 || r.is_multiple_of(13));
            for (k, v) in inputs.iter_mut().enumerate().skip(1) {
                *v = match (r >> (2 * k)) & 3 {
                    0 => Logic::Zero,
                    1 => Logic::One,
                    2 => Logic::X,
                    _ => Logic::from_bool((r >> k) & 1 == 1),
                };
            }
            reference.step(&inputs).unwrap();
            sliced.step(&inputs).unwrap();
            for i in 0..netlist.nets().len() {
                let id = netlist.net_id_from_index(i);
                let want = reference.value(id);
                for lane in [0, lanes / 2, lanes - 1] {
                    assert_eq!(
                        sliced.value_lane(id, lane),
                        want,
                        "lanes={lanes} cycle {cycle}, net {}, lane {lane}",
                        netlist.net(id).name()
                    );
                }
            }
            assert_eq!(
                sliced.flip_flop_states_lane(lanes - 1),
                reference.flip_flop_states(),
                "lanes={lanes} cycle {cycle} states"
            );
        }
    }

    /// Word-seam lane counts: 1, 63, 64, 65 and 128 lanes must all be
    /// lane-exact, including the partial-last-word configurations.
    #[test]
    fn word_seam_lane_counts_are_lane_exact() {
        let (n, _, _) = ring_netlist();
        for lanes in [1, 63, 64, 65, 128] {
            cross_check_broadcast(&n, lanes, 40);
        }
    }

    #[test]
    fn zero_lanes_is_rejected() {
        let (n, _, _) = ring_netlist();
        assert!(SlicedSimulator::new(&n, 0).is_err());
    }

    /// Per-lane stimulus: every lane runs a different input stream
    /// and must match its own scalar twin (65 lanes spills a word).
    #[test]
    fn per_lane_stimulus_matches_scalar_twins() {
        let (n, _, _) = ring_netlist();
        let lanes = 65;
        let mut sliced = SlicedSimulator::new(&n, lanes).unwrap();
        let mut twins: Vec<Simulator> = (0..lanes).map(|_| Simulator::new(&n).unwrap()).collect();
        let mut lcg = 99u64;
        for cycle in 0..30 {
            let per_lane: Vec<Vec<Logic>> = (0..lanes)
                .map(|lane| {
                    lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let r = lcg >> 33;
                    vec![
                        Logic::from_bool(cycle == 0 || r.is_multiple_of(11)),
                        match r & 3 {
                            0 => Logic::Zero,
                            1 => Logic::One,
                            _ => Logic::X,
                        },
                        Logic::from_bool((r >> (lane % 7)) & 1 == 1),
                    ]
                })
                .collect();
            sliced.step_per_lane(&per_lane).unwrap();
            for (lane, twin) in twins.iter_mut().enumerate() {
                twin.step(&per_lane[lane]).unwrap();
                for i in 0..n.nets().len() {
                    let id = n.net_id_from_index(i);
                    assert_eq!(
                        sliced.value_lane(id, lane),
                        twin.value(id),
                        "cycle {cycle}, lane {lane}, net {}",
                        n.net(id).name()
                    );
                }
            }
        }
    }

    /// Lane-masked stuck-ats: only the masked lanes deviate; the
    /// others keep tracking the fault-free reference.
    #[test]
    fn lane_masked_force_isolates_lanes() {
        let (n, q, _) = ring_netlist();
        let lanes = 70; // partial last word
        let mut sliced = SlicedSimulator::new(&n, lanes).unwrap();
        let mut clean = Simulator::new(&n).unwrap();
        let mut faulty = Simulator::new(&n).unwrap();
        let mut mask = LaneMask::none(lanes);
        mask.set(3);
        mask.set(63);
        mask.set(64);
        mask.set(69);
        sliced.force_net_lanes(q[2], Logic::One, &mask);
        faulty.force_net(q[2], Logic::One);
        let drive = [
            [true, true, false],
            [false, true, false],
            [false, true, true],
            [false, true, false],
            [false, false, false],
            [false, true, false],
        ];
        for inputs in drive {
            sliced.step_bools(&inputs).unwrap();
            clean.step_bools(&inputs).unwrap();
            faulty.step_bools(&inputs).unwrap();
            for lane in 0..lanes {
                let want = if mask.get(lane) { &faulty } else { &clean };
                for i in 0..n.nets().len() {
                    let id = n.net_id_from_index(i);
                    assert_eq!(
                        sliced.value_lane(id, lane),
                        want.value(id),
                        "lane {lane} net {}",
                        n.net(id).name()
                    );
                }
            }
        }
    }

    /// All-lanes-forced across the word seam: with every lane masked
    /// the sliced engine must equal a scalar run with the same force,
    /// on every lane including the trailing partial word.
    #[test]
    fn all_lanes_forced_matches_scalar() {
        let (n, q, _) = ring_netlist();
        let lanes = 65;
        let mut sliced = SlicedSimulator::new(&n, lanes).unwrap();
        let mut scalar = Simulator::new(&n).unwrap();
        sliced.force_net_lanes(q[1], Logic::X, &LaneMask::all(lanes));
        scalar.force_net(q[1], Logic::X);
        for (c, inputs) in [
            [true, true, false],
            [false, true, false],
            [false, true, true],
        ]
        .iter()
        .enumerate()
        {
            sliced.step_bools(inputs).unwrap();
            scalar.step_bools(inputs).unwrap();
            for lane in 0..lanes {
                for i in 0..n.nets().len() {
                    let id = n.net_id_from_index(i);
                    assert_eq!(
                        sliced.value_lane(id, lane),
                        scalar.value(id),
                        "cycle {c} lane {lane} net {}",
                        n.net(id).name()
                    );
                }
            }
        }
        // clear_forces releases every lane.
        sliced.clear_forces();
        scalar.clear_forces();
        sliced.step_bools(&[false, true, false]).unwrap();
        scalar.step_bools(&[false, true, false]).unwrap();
        assert_eq!(sliced.value_lane(q[1], 64), scalar.value(q[1]));
    }

    /// Re-forcing a lane replaces its pinned value, as in the scalar
    /// engines.
    #[test]
    fn reforcing_a_lane_replaces_its_value() {
        let (n, q, _) = ring_netlist();
        let lanes = 2;
        let mut sliced = SlicedSimulator::new(&n, lanes).unwrap();
        sliced.force_net_lanes(q[0], Logic::Zero, &LaneMask::all(lanes));
        sliced.force_net_lanes(q[0], Logic::One, &LaneMask::single(1, lanes));
        sliced.step_bools(&[true, true, false]).unwrap();
        assert_eq!(sliced.value_lane(q[0], 0), Logic::Zero);
        assert_eq!(sliced.value_lane(q[0], 1), Logic::One);
    }

    /// Lane-masked SEUs flip only defined lanes in the mask and
    /// report exactly the flipped set.
    #[test]
    fn lane_masked_upset_flips_only_defined_masked_lanes() {
        let (n, _, ffs) = ring_netlist();
        let lanes = 66;
        let mut sliced = SlicedSimulator::new(&n, lanes).unwrap();
        let mut twin = Simulator::new(&n).unwrap(); // never upset
                                                    // Before reset every state is X: nothing can flip.
        let none = sliced.upset_flip_flop_lanes(ffs[1], &LaneMask::all(lanes));
        assert_eq!(none.count(), 0, "power-up X cannot flip");
        for inputs in [[true, true, false], [false, true, false]] {
            sliced.step_bools(&inputs).unwrap();
            twin.step_bools(&inputs).unwrap();
        }
        let mut mask = LaneMask::none(lanes);
        mask.set(0);
        mask.set(65);
        let flipped = sliced.upset_flip_flop_lanes(ffs[1], &mask);
        assert_eq!(flipped.count(), 2);
        assert!(flipped.get(0) && flipped.get(65));
        // The flip shows on Q next cycle, only on the masked lanes.
        sliced.step_bools(&[false, false, false]).unwrap();
        twin.step_bools(&[false, false, false]).unwrap();
        let q1 = n.outputs()[1];
        for lane in [0, 65] {
            assert_ne!(sliced.value_lane(q1, lane), twin.value(q1), "lane {lane}");
        }
        for lane in [1, 33, 64] {
            assert_eq!(sliced.value_lane(q1, lane), twin.value(q1), "lane {lane}");
        }
    }

    /// The shared control surface drives all three engines through
    /// one generic harness.
    #[test]
    fn sim_control_trait_is_engine_generic() {
        fn drive<S: SimControl>(mut sim: S, q: NetId, ff: InstId) -> (Vec<Logic>, bool, u64) {
            sim.force_net(q, Logic::One);
            sim.step_bools(&[true, true, false]).unwrap();
            sim.step_bools(&[false, true, false]).unwrap();
            sim.clear_forces();
            sim.step_bools(&[false, true, false]).unwrap();
            let flipped = sim.upset_flip_flop(ff);
            sim.step_bools(&[false, true, false]).unwrap();
            let mut states = sim.flip_flop_states();
            states.extend(sim.output_values());
            states.push(sim.value(q));
            (states, flipped, sim.cycle())
        }
        let (n, q, ffs) = ring_netlist();
        let lev = drive(Simulator::new(&n).unwrap(), q[2], ffs[0]);
        let evt = drive(crate::EventSimulator::new(&n).unwrap(), q[2], ffs[0]);
        let sl1 = drive(SlicedSimulator::new(&n, 1).unwrap(), q[2], ffs[0]);
        let sl65 = drive(SlicedSimulator::new(&n, 65).unwrap(), q[2], ffs[0]);
        assert_eq!(lev, evt);
        assert_eq!(lev, sl1);
        assert_eq!(lev, sl65);
    }

    /// Word-granular evaluation accounting: per step, each gate costs
    /// one evaluation per 64-lane word.
    #[test]
    fn evaluations_count_gate_words() {
        let (n, _, _) = ring_netlist();
        let comb_gates = n
            .instances()
            .iter()
            .filter(|i| !i.kind().is_sequential())
            .count() as u64;
        let ffs = n.num_flip_flops() as u64;
        for (lanes, words) in [(1usize, 1u64), (64, 1), (65, 2), (128, 2)] {
            let mut sim = SlicedSimulator::new(&n, lanes).unwrap();
            sim.step_bools(&[true, true, false]).unwrap();
            sim.step_bools(&[false, true, false]).unwrap();
            assert_eq!(sim.evaluations(), 2 * comb_gates * words, "lanes={lanes}");
            assert_eq!(
                sim.word_ops(),
                2 * (comb_gates + ffs) * words,
                "lanes={lanes}"
            );
        }
    }

    #[test]
    fn packed_value_trims_inactive_lanes() {
        let mut n = Netlist::new("tie");
        let hi = n.gate(CellKind::TieHi, &[]).unwrap();
        n.add_output(hi);
        let lanes = 70;
        let mut sim = SlicedSimulator::new(&n, lanes).unwrap();
        sim.step_bools(&[false]).unwrap();
        let (ones0, xs0) = sim.packed_value(hi, 0);
        let (ones1, xs1) = sim.packed_value(hi, 1);
        assert_eq!(ones0, !0);
        assert_eq!(xs0, 0);
        assert_eq!(ones1, (1u64 << 6) - 1, "trailing word masked to 6 lanes");
        assert_eq!(xs1, 0);
    }
}
