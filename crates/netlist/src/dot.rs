//! Graphviz DOT export for netlist inspection and debugging.

use std::fmt::Write as _;

use crate::graph::{Driver, Netlist};

/// Renders `netlist` as a Graphviz `digraph`.
///
/// Instances become boxes labelled `name\nkind`; primary inputs and
/// outputs become ellipses. Edges follow signal flow.
///
/// ```
/// use adgen_netlist::{Netlist, CellKind, dot};
/// # fn main() -> Result<(), adgen_netlist::NetlistError> {
/// let mut n = Netlist::new("t");
/// let a = n.add_input("a");
/// let y = n.gate(CellKind::Inv, &[a])?;
/// n.add_output(y);
/// let text = dot::to_dot(&n);
/// assert!(text.starts_with("digraph"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(netlist: &Netlist) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", netlist.name());
    let _ = writeln!(s, "  rankdir=LR;");
    for (i, &pi) in netlist.inputs().iter().enumerate() {
        let _ = writeln!(
            s,
            "  pi{i} [shape=ellipse,label=\"{}\"];",
            netlist.net(pi).name()
        );
    }
    for (i, &po) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(
            s,
            "  po{i} [shape=doublecircle,label=\"{}\"];",
            netlist.net(po).name()
        );
    }
    for (i, inst) in netlist.instances().iter().enumerate() {
        let shape = if inst.kind().is_sequential() {
            "box3d"
        } else {
            "box"
        };
        let _ = writeln!(
            s,
            "  i{i} [shape={shape},label=\"{}\\n{}\"];",
            inst.name(),
            inst.kind()
        );
    }
    // Edges: driver -> each load.
    for (i, inst) in netlist.instances().iter().enumerate() {
        for &input in inst.inputs() {
            match netlist.net(input).driver() {
                Some(Driver::Inst { inst: d, .. }) => {
                    let _ = writeln!(s, "  i{} -> i{i};", d.index());
                }
                Some(Driver::Input) => {
                    if let Some(pos) = netlist.inputs().iter().position(|&p| p == input) {
                        let _ = writeln!(s, "  pi{pos} -> i{i};");
                    }
                }
                None => {}
            }
        }
    }
    for (o, &po) in netlist.outputs().iter().enumerate() {
        if let Some(Driver::Inst { inst: d, .. }) = netlist.net(po).driver() {
            let _ = writeln!(s, "  i{} -> po{o};", d.index());
        } else if let Some(pos) = netlist.inputs().iter().position(|&p| p == po) {
            let _ = writeln!(s, "  pi{pos} -> po{o};");
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    #[test]
    fn dot_contains_instances_and_edges() {
        let mut n = Netlist::new("d");
        let a = n.add_input("a");
        let y = n.gate(CellKind::Inv, &[a]).unwrap();
        let z = n.gate(CellKind::Inv, &[y]).unwrap();
        n.add_output(z);
        let text = to_dot(&n);
        assert!(text.contains("digraph \"d\""));
        assert!(text.contains("inv"));
        assert!(text.contains("i0 -> i1;"));
        assert!(text.contains("-> po0;"));
    }

    #[test]
    fn passthrough_output_edge() {
        let mut n = Netlist::new("p");
        let a = n.add_input("a");
        n.add_output(a);
        let text = to_dot(&n);
        assert!(text.contains("pi1 -> po0;"));
    }
}
