//! Area accounting and cell-usage statistics.
//!
//! Area is reported in the library's *cell units*, the same unit the
//! paper's area figures use.

use std::collections::BTreeMap;
use std::fmt;

use crate::cell::{CellKind, Library};
use crate::graph::Netlist;

/// Area and composition summary of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    total: f64,
    sequential: f64,
    combinational: f64,
    by_kind: BTreeMap<CellKind, (usize, f64)>,
    num_instances: usize,
}

impl AreaReport {
    /// Computes the report for `netlist` under `library`.
    pub fn of(netlist: &Netlist, library: &Library) -> Self {
        let mut total = 0.0;
        let mut sequential = 0.0;
        let mut by_kind: BTreeMap<CellKind, (usize, f64)> = BTreeMap::new();
        for inst in netlist.instances() {
            let a = library.spec(inst.kind()).area;
            total += a;
            if inst.kind().is_sequential() {
                sequential += a;
            }
            let e = by_kind.entry(inst.kind()).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += a;
        }
        AreaReport {
            total,
            sequential,
            combinational: total - sequential,
            by_kind,
            num_instances: netlist.num_instances(),
        }
    }

    /// Total area in cell units.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Area of sequential cells in cell units.
    pub fn sequential(&self) -> f64 {
        self.sequential
    }

    /// Area of combinational cells in cell units.
    pub fn combinational(&self) -> f64 {
        self.combinational
    }

    /// Instance count.
    pub fn num_instances(&self) -> usize {
        self.num_instances
    }

    /// `(count, area)` for `kind`, `(0, 0.0)` if unused.
    pub fn by_kind(&self, kind: CellKind) -> (usize, f64) {
        self.by_kind.get(&kind).copied().unwrap_or((0, 0.0))
    }

    /// Iterates over `(kind, count, area)` for every used cell kind in
    /// a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (CellKind, usize, f64)> + '_ {
        self.by_kind.iter().map(|(&k, &(c, a))| (k, c, a))
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "area: {:.1} cell units ({} instances; seq {:.1}, comb {:.1})",
            self.total, self.num_instances, self.sequential, self.combinational
        )?;
        for (kind, count, area) in self.iter() {
            writeln!(f, "  {kind:<6} x{count:<5} {area:>9.1}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Netlist;

    #[test]
    fn empty_netlist_is_zero_area() {
        let n = Netlist::new("empty");
        let r = AreaReport::of(&n, &Library::vcl018());
        assert_eq!(r.total(), 0.0);
        assert_eq!(r.num_instances(), 0);
    }

    #[test]
    fn totals_add_up() {
        let lib = Library::vcl018();
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y0 = n.gate(CellKind::Inv, &[a]).unwrap();
        let rst = n.reset();
        let q = n.add_net("q");
        n.add_instance("ff", CellKind::Dffr, &[y0, rst], &[q])
            .unwrap();
        let r = AreaReport::of(&n, &lib);
        let expect = lib.spec(CellKind::Inv).area + lib.spec(CellKind::Dffr).area;
        assert!((r.total() - expect).abs() < 1e-9);
        assert!((r.sequential() - lib.spec(CellKind::Dffr).area).abs() < 1e-9);
        assert!((r.combinational() - lib.spec(CellKind::Inv).area).abs() < 1e-9);
        assert_eq!(r.by_kind(CellKind::Inv).0, 1);
        assert_eq!(r.by_kind(CellKind::Nand2).0, 0);
    }

    #[test]
    fn display_mentions_total_and_kinds() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.gate(CellKind::Nand2, &[a, a]).unwrap();
        n.add_output(y);
        let r = AreaReport::of(&n, &Library::vcl018());
        let s = r.to_string();
        assert!(s.contains("cell units"));
        assert!(s.contains("nand2"));
    }
}
