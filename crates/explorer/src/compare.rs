//! Head-to-head SRAG vs CntAG evaluation — the measurement kernel
//! behind paper Figures 8, 10 and Table 3.

use adgen_cntag::netlist::SELECT_LINE_LOAD_FF;
use adgen_cntag::{CntAgNetlist, CntAgSpec, ComponentNetlists};
use adgen_core::composite::Srag2d;
use adgen_core::SragError;
use adgen_netlist::{AreaReport, Library, TimingAnalysis, TimingContext};
use adgen_obs as obs;
use adgen_seq::{AddressSequence, ArrayShape, Layout};

/// One row of a comparison: both architectures implementing the same
/// address sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// SRAG critical path (whole two-hot generator), picoseconds.
    pub srag_delay_ps: f64,
    /// CntAG delay under the paper's serial accounting (counter +
    /// worst decoder), picoseconds.
    pub cntag_delay_ps: f64,
    /// SRAG total area, cell units.
    pub srag_area: f64,
    /// CntAG total area (counters + decoders), cell units.
    pub cntag_area: f64,
    /// SRAG flip-flop count.
    pub srag_flip_flops: usize,
    /// CntAG flip-flop count.
    pub cntag_flip_flops: usize,
}

impl ComparisonRow {
    /// The paper's *delay reduction factor*: CntAG delay over SRAG
    /// delay (>1 means the SRAG is faster).
    pub fn delay_reduction_factor(&self) -> f64 {
        self.cntag_delay_ps / self.srag_delay_ps
    }

    /// The paper's *area increase factor*: SRAG area over CntAG area
    /// (>1 means the SRAG is bigger).
    pub fn area_increase_factor(&self) -> f64 {
        self.srag_area / self.cntag_area
    }
}

/// Maps `sequence` onto a two-hot SRAG, elaborates both it and the
/// given counter-based program, and measures delay and area of each.
///
/// # Errors
///
/// Propagates mapping and elaboration failures (e.g. the sequence
/// violates an SRAG restriction).
pub fn compare_srag_cntag(
    sequence: &AddressSequence,
    shape: ArrayShape,
    cntag_program: &CntAgSpec,
    library: &Library,
) -> Result<ComparisonRow, SragError> {
    compare_srag_cntag_with_load(sequence, shape, cntag_program, library, SELECT_LINE_LOAD_FF)
}

/// [`compare_srag_cntag`] with an explicit select-line load on both
/// architectures' select lines — the §7 interconnect-sensitivity
/// study's knob (select lines grow with the array and drive its
/// cells, so their capacitance is the interconnect term both designs
/// must pay).
///
/// # Errors
///
/// As for [`compare_srag_cntag`].
pub fn compare_srag_cntag_with_load(
    sequence: &AddressSequence,
    shape: ArrayShape,
    cntag_program: &CntAgSpec,
    library: &Library,
    select_line_load_ff: f64,
) -> Result<ComparisonRow, SragError> {
    let _span = obs::span_arg(
        "explorer.compare",
        u64::from(shape.width()) * u64::from(shape.height()),
    );
    let srag = Srag2d::map(sequence, shape, Layout::RowMajor)?.elaborate()?;
    let srag_timing =
        TimingAnalysis::run_with_output_load(&srag.netlist, library, select_line_load_ff)?;
    let srag_area = AreaReport::of(&srag.netlist, library);

    let cntag = CntAgNetlist::elaborate(cntag_program)?;
    let cntag_components = adgen_cntag::netlist::component_delays_with_load(
        cntag_program,
        library,
        select_line_load_ff,
    )?;
    let cntag_area = AreaReport::of(&cntag.netlist, library);

    Ok(ComparisonRow {
        srag_delay_ps: srag_timing.critical_path_ps(),
        cntag_delay_ps: cntag_components.total_ps(),
        srag_area: srag_area.total(),
        cntag_area: cntag_area.total(),
        srag_flip_flops: srag.netlist.num_flip_flops(),
        cntag_flip_flops: cntag.netlist.num_flip_flops(),
    })
}

/// [`compare_srag_cntag_with_load`] swept over many select-line
/// loads, memoizing the elaborated netlists: the SRAG pair and the
/// CntAG component blocks are mapped and elaborated **once**, their
/// timing state is cached in a [`TimingContext`] /
/// [`adgen_cntag::ComponentTimer`], and only the load-dependent
/// timing sweep runs per point (fanned across `jobs` worker threads;
/// `0` means all available cores). Rows come back in `loads_ff`
/// order regardless of `jobs`.
///
/// # Errors
///
/// As for [`compare_srag_cntag`].
pub fn compare_srag_cntag_load_sweep(
    sequence: &AddressSequence,
    shape: ArrayShape,
    cntag_program: &CntAgSpec,
    library: &Library,
    loads_ff: &[f64],
    jobs: usize,
) -> Result<Vec<ComparisonRow>, SragError> {
    let srag = Srag2d::map(sequence, shape, Layout::RowMajor)?.elaborate()?;
    let srag_ctx = TimingContext::new(&srag.netlist, library)?;
    let srag_area = AreaReport::of(&srag.netlist, library).total();
    let srag_flip_flops = srag.netlist.num_flip_flops();

    let cntag = CntAgNetlist::elaborate(cntag_program)?;
    let components = ComponentNetlists::elaborate(cntag_program)?;
    let timer = components.timer(library)?;
    let cntag_area = AreaReport::of(&cntag.netlist, library).total();
    let cntag_flip_flops = cntag.netlist.num_flip_flops();

    Ok(adgen_exec::par_map(loads_ff, jobs, |_, &load_ff| {
        ComparisonRow {
            srag_delay_ps: srag_ctx.run_with_output_load(load_ff).critical_path_ps(),
            cntag_delay_ps: timer.delays_at(load_ff).total_ps(),
            srag_area,
            cntag_area,
            srag_flip_flops,
            cntag_flip_flops,
        }
    }))
}

/// Power measurements for both architectures on the same stream —
/// the study the paper's §7 defers ("we expect this decoder
/// decoupling approach to reduce power dissipation … we have not
/// carried out a rigorous study of it").
#[derive(Debug, Clone, PartialEq)]
pub struct PowerComparisonRow {
    /// SRAG power with a free-running clock.
    pub srag: adgen_netlist::PowerReport,
    /// CntAG power with a free-running clock.
    pub cntag: adgen_netlist::PowerReport,
    /// SRAG power with enable-derived clock gating — the natural
    /// low-power implementation of its enabled shift flip-flops.
    pub srag_gated: adgen_netlist::PowerReport,
    /// CntAG power under the same gating rule (its plain counter
    /// flip-flops have no enables to gate from, so this usually
    /// equals the free-running figure).
    pub cntag_gated: adgen_netlist::PowerReport,
}

impl PowerComparisonRow {
    /// CntAG total power over SRAG total power with free-running
    /// clocks (>1 means the SRAG dissipates less).
    pub fn power_reduction_factor(&self) -> f64 {
        self.cntag.total_uw() / self.srag.total_uw()
    }

    /// The same factor with enable-derived clock gating applied to
    /// both designs.
    pub fn gated_power_reduction_factor(&self) -> f64 {
        self.cntag_gated.total_uw() / self.srag_gated.total_uw()
    }
}

/// Measures activity-based dynamic power of the SRAG pair and the
/// CntAG while both stream through `cycles` consecutive accesses of
/// `sequence` at `frequency_mhz`, under both clock models.
///
/// # Errors
///
/// Propagates mapping, elaboration and simulation failures.
pub fn compare_power(
    sequence: &AddressSequence,
    shape: ArrayShape,
    cntag_program: &CntAgSpec,
    library: &Library,
    frequency_mhz: f64,
    cycles: u64,
) -> Result<PowerComparisonRow, SragError> {
    use adgen_netlist::power::{measure_power_with_clock, ClockModel};
    use adgen_netlist::Logic;
    let srag = Srag2d::map(sequence, shape, Layout::RowMajor)?.elaborate()?;
    let cntag = CntAgNetlist::elaborate(cntag_program)?;
    let streaming = |_cycle: u64| vec![Logic::Zero, Logic::One];
    let run = |n: &adgen_netlist::Netlist, model: ClockModel| {
        measure_power_with_clock(n, library, frequency_mhz, cycles, model, streaming)
            .map_err(SragError::from)
    };
    Ok(PowerComparisonRow {
        srag: run(&srag.netlist, ClockModel::FreeRunning)?,
        cntag: run(&cntag.netlist, ClockModel::FreeRunning)?,
        srag_gated: run(&srag.netlist, ClockModel::Gated)?,
        cntag_gated: run(&cntag.netlist, ClockModel::Gated)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_seq::workloads;

    #[test]
    fn motion_est_srag_is_faster_but_bigger() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(32, 32);
        let seq = workloads::motion_est_read(shape, 4, 4, 0);
        let program = CntAgSpec::motion_est(shape, 4, 4, 0);
        let row = compare_srag_cntag(&seq, shape, &program, &lib).unwrap();
        assert!(
            row.delay_reduction_factor() > 1.2,
            "SRAG should be clearly faster: factor {}",
            row.delay_reduction_factor()
        );
        assert!(
            row.area_increase_factor() > 1.5,
            "SRAG should be clearly bigger: factor {}",
            row.area_increase_factor()
        );
    }

    #[test]
    fn cntag_delay_gap_widens_with_array_size() {
        // Paper Fig. 8: the CntAG falls further behind as the array
        // grows (its decoder deepens with the address width, while
        // the SRAG's select path stays flip-flop-direct). On the FIFO
        // workload both architectures' *counters* scale identically,
        // so the robust cross-library claim is the widening absolute
        // gap.
        let lib = Library::vcl018();
        let row_at = |n: u32| {
            let shape = ArrayShape::new(n, n);
            let seq = workloads::fifo(shape);
            let program = CntAgSpec::raster(shape);
            compare_srag_cntag(&seq, shape, &program, &lib).unwrap()
        };
        let small = row_at(16);
        let large = row_at(128);
        let small_gap = small.cntag_delay_ps - small.srag_delay_ps;
        let large_gap = large.cntag_delay_ps - large.srag_delay_ps;
        assert!(small_gap > 0.0, "SRAG must already win at 16x16");
        assert!(
            large_gap > small_gap,
            "gap should widen: {small_gap} -> {large_gap}"
        );
    }

    #[test]
    fn power_study_decomposition() {
        // The §7 study the paper deferred, carried out here. Findings
        // in this model (documented in EXPERIMENTS.md): the
        // decoder-switching argument holds — the SRAG's *signal*
        // switching power is well below the CntAG's on streaming
        // patterns — but the SRAG's H+W flip-flop clock load
        // dominates its total, so the expected overall power win does
        // not materialize even with enable-derived clock gating.
        let lib = Library::vcl018();
        let shape = ArrayShape::new(64, 64);
        let seq = workloads::fifo(shape);
        let row = compare_power(&seq, shape, &CntAgSpec::raster(shape), &lib, 100.0, 256).unwrap();
        // Decoder switching saved:
        assert!(
            row.srag.dynamic_uw < row.cntag.dynamic_uw,
            "SRAG switching {} vs CntAG {}",
            row.srag.dynamic_uw,
            row.cntag.dynamic_uw
        );
        // …but paid for in clock power:
        assert!(
            row.srag.clock_uw > row.cntag.clock_uw,
            "SRAG clock {} vs CntAG {}",
            row.srag.clock_uw,
            row.cntag.clock_uw
        );
        // Gating strictly helps the SRAG side:
        assert!(row.srag_gated.total_uw() <= row.srag.total_uw());
        assert!(
            row.gated_power_reduction_factor() >= row.power_reduction_factor(),
            "gating must not hurt the SRAG: {} -> {}",
            row.power_reduction_factor(),
            row.gated_power_reduction_factor()
        );
    }

    #[test]
    fn load_sweep_matches_per_point_comparisons() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(16, 16);
        let seq = workloads::motion_est_read(shape, 2, 2, 0);
        let program = CntAgSpec::motion_est(shape, 2, 2, 0);
        let loads = [0.0, 30.0, 90.0, 240.0];
        for jobs in [1, 4] {
            let swept =
                compare_srag_cntag_load_sweep(&seq, shape, &program, &lib, &loads, jobs).unwrap();
            assert_eq!(swept.len(), loads.len());
            for (row, &load) in swept.iter().zip(&loads) {
                let fresh =
                    compare_srag_cntag_with_load(&seq, shape, &program, &lib, load).unwrap();
                assert_eq!(row, &fresh, "load {load} jobs {jobs}");
            }
        }
    }

    #[test]
    fn srag_flip_flops_scale_with_dimensions() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(16, 16);
        let seq = workloads::fifo(shape);
        let row = compare_srag_cntag(&seq, shape, &CntAgSpec::raster(shape), &lib).unwrap();
        // 16 row + 16 col shift FFs (plus a few counter bits).
        assert!(row.srag_flip_flops >= 32);
        assert!(row.cntag_flip_flops <= 10);
    }
}
