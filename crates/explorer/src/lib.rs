//! Design-space exploration over address-generator architectures.
//!
//! The paper closes with: *"Our final goal is to discover algorithms
//! and heuristics which can explore the vast design space opened up
//! by address decoder decoupling at a high level of abstraction and
//! choose the best architecture for low level circuit optimization."*
//! This crate is that layer: given an address sequence, it
//! enumerates the implementable architectures (SRAG, multi-counter
//! SRAG, counter-plus-decoder baseline, symbolic FSM), evaluates each
//! candidate's delay and area on the `vcl018` library, computes the
//! Pareto frontier and selects under constraints.
//!
//! It also hosts the SRAG-versus-CntAG comparison harness
//! ([`compare`]) that the benchmark suite uses to regenerate the
//! paper's Figures 8–10 and Table 3.

pub mod banked;
pub mod candidates;
pub mod compare;
pub mod four_way;
pub mod pareto;
pub mod report;
pub mod resilience;

pub use banked::{compare_banked, BankedComparison};
pub use candidates::{
    evaluate, evaluate_jobs, Architecture, Candidate, EvaluateOptions, Evaluation,
};
pub use compare::{
    compare_power, compare_srag_cntag, compare_srag_cntag_load_sweep, compare_srag_cntag_with_load,
    ComparisonRow, PowerComparisonRow,
};
pub use four_way::{
    agu_fault_universe, compare_four_way, verify_affine_bit_exact, FourWayComparison, FourWayRow,
};
pub use pareto::{pareto_frontier, select, Constraint};
pub use report::render_evaluation;
pub use resilience::{compare_resilience, ring_fault_universe, ResilienceRow};
