//! The four-way architecture shoot-out: symbolic FSM, SRAG, CntAG
//! and the programmable affine AGU implementing the *same* address
//! sequence, measured on the same three axes — delay, area (with the
//! affine programming-register premium split out) and fault
//! resilience over a uniform output-stuck-at + SEU universe.
//!
//! The paper's Fig. 7 compares the dedicated architectures; the
//! affine family buys runtime reprogrammability for a register-chain
//! premium, and this module prices that trade explicitly. It also
//! hosts [`verify_affine_bit_exact`], the acceptance gate that the
//! affine row actually reproduces the input — affine part replayed at
//! gate level on all three simulation engines, residual appended.

use adgen_affine::{fit_sequence, AffineAgNetlist, AffineFit};
use adgen_cntag::netlist::decoder_delay_ps;
use adgen_cntag::{component_delays, CntAgNetlist, CntAgSpec};
use adgen_core::composite::Srag2d;
use adgen_fault::{flip_flop_ids, run_campaign, sample_seus, CampaignSpec, Fault};
use adgen_netlist::{
    AreaReport, EventSimulator, Library, Netlist, SimControl, Simulator, SlicedSimulator,
    TimingAnalysis,
};
use adgen_seq::{AddressSequence, ArrayShape, Layout};
use adgen_synth::{Encoding, Fsm, OutputStyle};

use crate::candidates::Architecture;

/// One architecture's measurements in the shoot-out.
#[derive(Debug, Clone, PartialEq)]
pub struct FourWayRow {
    /// Which architecture this row measures.
    pub architecture: Architecture,
    /// Address-to-select delay, picoseconds: critical path plus the
    /// standalone decoder stage for the binary-address families (FSM,
    /// CntAG, affine); the SRAG drives its select lines directly.
    pub delay_ps: f64,
    /// Total area in cell units (affine includes the residual FSM).
    pub area: f64,
    /// Total flip-flop count.
    pub flip_flops: usize,
    /// Flip-flops spent purely on runtime programmability — the
    /// affine configuration chain. Zero for the dedicated families.
    pub program_flip_flops: usize,
    /// Fault coverage (detected / non-benign, %) over this row's
    /// universe.
    pub fault_coverage_pct: f64,
    /// Faults that corrupted state without reaching an output in the
    /// window.
    pub silent_faults: usize,
    /// Universe size this row was measured against.
    pub faults: usize,
}

/// The full shoot-out result, rows in fixed order: FSM, SRAG, CntAG,
/// affine.
#[derive(Debug, Clone, PartialEq)]
pub struct FourWayComparison {
    /// One row per architecture.
    pub rows: Vec<FourWayRow>,
    /// The affine fit the affine row was built from (spec, coverage,
    /// residual).
    pub affine_fit: AffineFit,
}

impl FourWayComparison {
    /// The row for `architecture`, if present.
    pub fn row(&self, architecture: Architecture) -> Option<&FourWayRow> {
        self.rows.iter().find(|r| r.architecture == architecture)
    }
}

/// The uniform fault universe every row is measured against:
/// stuck-at-0/1 on each primary output plus `seu_samples`
/// seed-reproducible SEUs over *all* of the design's flip-flops. The
/// same logical recipe on every architecture keeps coverage figures
/// comparable even though the concrete fault lists differ with the
/// structure (a bigger design exposes more strike targets — that is
/// part of the comparison, not a bias).
pub fn agu_fault_universe(
    netlist: &Netlist,
    cycles: u32,
    seu_samples: usize,
    seed: u64,
) -> Vec<Fault> {
    let mut faults: Vec<Fault> = netlist
        .outputs()
        .iter()
        .flat_map(|&net| {
            [
                Fault::StuckAt { net, value: false },
                Fault::StuckAt { net, value: true },
            ]
        })
        .collect();
    let ffs = flip_flop_ids(netlist);
    faults.extend(sample_seus(
        &ffs,
        cycles.saturating_sub(1).max(1),
        seu_samples,
        seed,
    ));
    faults
}

fn campaign_figures(
    netlist: &Netlist,
    cycles: u32,
    seu_samples: usize,
    seed: u64,
    jobs: usize,
) -> (f64, usize, usize) {
    let faults = agu_fault_universe(netlist, cycles, seu_samples, seed);
    let spec = CampaignSpec {
        netlist,
        cycles,
        alarm_output: None,
    };
    let report = run_campaign(&spec, &faults, jobs);
    (report.coverage_pct(), report.silent(), faults.len())
}

/// Runs the shoot-out for one sequence over a power-of-two `shape`:
/// builds all four implementations, measures delay/area/flip-flops
/// with the same accounting as [`crate::evaluate`], and runs the
/// identical fault-universe recipe on each netlist (`cycles`
/// observation window, `seu_samples` SEUs from `seed`, replays
/// fanned over `jobs` workers — results are jobs-invariant).
///
/// The affine row's campaign runs on the programmable AGU itself
/// (the architecture under comparison); its residual FSM, when one
/// exists, is priced into area/delay but not struck.
///
/// # Errors
///
/// Returns a message if the shape is not power-of-two-sided, or any
/// family fails to implement the sequence (the four-way comparison is
/// only meaningful when all four rows exist).
#[allow(clippy::too_many_arguments)]
pub fn compare_four_way(
    sequence: &AddressSequence,
    shape: ArrayShape,
    cntag_program: &CntAgSpec,
    library: &Library,
    cycles: u32,
    seu_samples: usize,
    seed: u64,
    jobs: usize,
) -> Result<FourWayComparison, String> {
    if !(shape.width().is_power_of_two() && shape.height().is_power_of_two()) {
        return Err("array dimensions are not powers of two".to_string());
    }
    let row_bits = shape.height().trailing_zeros() as usize;
    let col_bits = shape.width().trailing_zeros() as usize;
    let addr_bits = row_bits + col_bits;
    let row_dec =
        decoder_delay_ps(row_bits, shape.height() as usize, library).map_err(|e| e.to_string())?;
    let col_dec =
        decoder_delay_ps(col_bits, shape.width() as usize, library).map_err(|e| e.to_string())?;
    let dec_ps = row_dec.max(col_dec);
    let mut rows = Vec::with_capacity(4);

    // Symbolic FSM: one machine emitting the full binary address,
    // feeding the same standalone decoders as the other
    // binary-address families.
    let fsm = Fsm::cyclic_sequence(sequence.as_slice())
        .and_then(|f| {
            f.synthesize(
                Encoding::Binary,
                OutputStyle::BinaryAddress { bits: addr_bits },
            )
        })
        .map_err(|e| format!("FSM: {e}"))?;
    let fsm_t = TimingAnalysis::run(&fsm.netlist, library).map_err(|e| e.to_string())?;
    let (cov, silent, faults) = campaign_figures(&fsm.netlist, cycles, seu_samples, seed, jobs);
    rows.push(FourWayRow {
        architecture: Architecture::SymbolicFsm(Encoding::Binary),
        delay_ps: fsm_t.critical_path_ps() + dec_ps,
        area: AreaReport::of(&fsm.netlist, library).total(),
        flip_flops: fsm.netlist.num_flip_flops(),
        program_flip_flops: 0,
        fault_coverage_pct: cov,
        silent_faults: silent,
        faults,
    });

    // SRAG: the two-hot pair, select lines flip-flop-direct.
    let srag = Srag2d::map(sequence, shape, Layout::RowMajor)
        .and_then(|m| m.elaborate())
        .map_err(|e| format!("SRAG: {e}"))?;
    let srag_t = TimingAnalysis::run(&srag.netlist, library).map_err(|e| e.to_string())?;
    let (cov, silent, faults) = campaign_figures(&srag.netlist, cycles, seu_samples, seed, jobs);
    rows.push(FourWayRow {
        architecture: Architecture::Srag,
        delay_ps: srag_t.critical_path_ps(),
        area: AreaReport::of(&srag.netlist, library).total(),
        flip_flops: srag.netlist.num_flip_flops(),
        program_flip_flops: 0,
        fault_coverage_pct: cov,
        silent_faults: silent,
        faults,
    });

    // CntAG: counter cascade + decoders, the paper's serial delay
    // accounting.
    let cntag = CntAgNetlist::elaborate(cntag_program).map_err(|e| format!("CntAG: {e}"))?;
    let comps = component_delays(cntag_program, library).map_err(|e| e.to_string())?;
    let (cov, silent, faults) = campaign_figures(&cntag.netlist, cycles, seu_samples, seed, jobs);
    rows.push(FourWayRow {
        architecture: Architecture::CntAg,
        delay_ps: comps.total_ps(),
        area: AreaReport::of(&cntag.netlist, library).total(),
        flip_flops: cntag.netlist.num_flip_flops(),
        program_flip_flops: 0,
        fault_coverage_pct: cov,
        silent_faults: silent,
        faults,
    });

    // Affine: the programmable AGU plus an FSM for the residual.
    let fit = fit_sequence(sequence.as_slice()).map_err(|e| format!("affine: {e}"))?;
    let affine = AffineAgNetlist::elaborate(&fit.spec).map_err(|e| format!("affine: {e}"))?;
    let affine_t = TimingAnalysis::run(&affine.netlist, library).map_err(|e| e.to_string())?;
    let mut delay_ps = affine_t.critical_path_ps() + dec_ps;
    let mut area = AreaReport::of(&affine.netlist, library).total();
    let mut flip_flops = affine.netlist.num_flip_flops();
    if !fit.residual.is_empty() {
        let residual = Fsm::cyclic_sequence(&fit.residual)
            .and_then(|f| {
                f.synthesize(
                    Encoding::Binary,
                    OutputStyle::BinaryAddress {
                        bits: fit.spec.addr_width as usize,
                    },
                )
            })
            .map_err(|e| format!("affine residual FSM: {e}"))?;
        let rt = TimingAnalysis::run(&residual.netlist, library).map_err(|e| e.to_string())?;
        delay_ps = delay_ps.max(rt.critical_path_ps() + dec_ps);
        area += AreaReport::of(&residual.netlist, library).total();
        flip_flops += residual.netlist.num_flip_flops();
    }
    let (cov, silent, faults) = campaign_figures(&affine.netlist, cycles, seu_samples, seed, jobs);
    rows.push(FourWayRow {
        architecture: Architecture::Affine,
        delay_ps,
        area,
        flip_flops,
        program_flip_flops: affine.config_bits(),
        fault_coverage_pct: cov,
        silent_faults: silent,
        faults,
    });

    Ok(FourWayComparison {
        rows,
        affine_fit: fit,
    })
}

/// Proves the affine row reproduces `sequence` bit-exactly: fits the
/// sequence, checks the behavioural reconstruction (affine part plus
/// residual), elaborates the AGU, and replays the affine part at gate
/// level on all three simulation engines — levelized, event-driven
/// and 64-lane bit-sliced. Returns the verified fit.
///
/// # Errors
///
/// Returns a message naming the engine (or the mapper) on the first
/// divergence.
pub fn verify_affine_bit_exact(sequence: &AddressSequence) -> Result<AffineFit, String> {
    let fit = fit_sequence(sequence.as_slice()).map_err(|e| e.to_string())?;
    if fit.reconstruct() != sequence.as_slice() {
        return Err("mapper reconstruction diverged from the input".to_string());
    }
    let design = AffineAgNetlist::elaborate(&fit.spec).map_err(|e| e.to_string())?;
    let expected = &sequence.as_slice()[..fit.covered];
    let max_ticks = 2 * fit.spec.program_ticks() + 8;

    let run = |sim: &mut dyn SimControl, engine: &str| -> Result<(), String> {
        design.reset_sim(sim).map_err(|e| e.to_string())?;
        let emitted = design
            .collect_emitted(sim, fit.covered, max_ticks)
            .map_err(|e| format!("{engine}: {e}"))?;
        if emitted != expected {
            return Err(format!("{engine}: gate-level stream diverged from input"));
        }
        Ok(())
    };
    let mut lev = Simulator::new(&design.netlist).map_err(|e| e.to_string())?;
    run(&mut lev, "levelized")?;
    let mut evt = EventSimulator::new(&design.netlist).map_err(|e| e.to_string())?;
    run(&mut evt, "event-driven")?;
    let mut sliced = SlicedSimulator::new(&design.netlist, 64).map_err(|e| e.to_string())?;
    run(&mut sliced, "bit-sliced")?;
    Ok(fit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_seq::workloads;

    #[test]
    fn motion_est_four_way_has_all_rows_and_prices_the_premium() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(8, 8);
        let seq = workloads::motion_est_read(shape, 2, 2, 0);
        let program = CntAgSpec::motion_est(shape, 2, 2, 0);
        let cmp =
            compare_four_way(&seq, shape, &program, &lib, seq.len() as u32, 8, 2026, 2).unwrap();
        assert_eq!(cmp.rows.len(), 4);
        for row in &cmp.rows {
            assert!(row.delay_ps > 0.0 && row.area > 0.0, "{}", row.architecture);
            assert!(row.faults > 0, "{}", row.architecture);
        }
        // Only the affine family pays for programmability...
        let affine = cmp.row(Architecture::Affine).unwrap();
        assert!(affine.program_flip_flops > 0);
        for arch in [
            Architecture::SymbolicFsm(Encoding::Binary),
            Architecture::Srag,
            Architecture::CntAg,
        ] {
            assert_eq!(cmp.row(arch).unwrap().program_flip_flops, 0);
        }
        // ...and the Fig. 7 workload fits with no residual.
        assert!(cmp.affine_fit.is_exact());
    }

    #[test]
    fn four_way_rows_are_jobs_invariant() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(4, 4);
        let seq = workloads::motion_est_read(shape, 2, 2, 0);
        let program = CntAgSpec::motion_est(shape, 2, 2, 0);
        let a = compare_four_way(&seq, shape, &program, &lib, 16, 6, 7, 1).unwrap();
        let b = compare_four_way(&seq, shape, &program, &lib, 16, 6, 7, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn affine_is_bit_exact_on_all_three_engines() {
        let shape = ArrayShape::new(8, 8);
        for seq in [
            workloads::motion_est_read(shape, 2, 2, 0),
            workloads::raster(shape),
            workloads::transpose_scan(shape),
        ] {
            let fit = verify_affine_bit_exact(&seq).unwrap();
            assert_eq!(fit.covered + fit.residual.len(), seq.len());
        }
    }

    #[test]
    fn non_power_of_two_shape_is_rejected() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(6, 6);
        let seq = workloads::raster(shape);
        let program = CntAgSpec::raster(ArrayShape::new(8, 8));
        let err = compare_four_way(&seq, shape, &program, &lib, 8, 2, 1, 1).unwrap_err();
        assert!(err.contains("powers of two"));
    }
}
