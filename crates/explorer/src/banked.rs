//! The banked exploration axis: schedule an interleaver workload
//! across B parallel banks, gate on conflict-freedom, and — only when
//! the gate passes — price each bank's decomposed generator against a
//! monolithic per-bank FSM.
//!
//! The conflict-free-schedule gate is structural, not advisory: a
//! conflicted schedule has no well-defined per-bank stream (two lanes
//! demand the same bank in one cycle), so [`BankedComparison::plan`]
//! is `None` and only the conflict/stall accounting is reported.

use adgen_bank::{
    plan_banks, run_interleaved, window_schedule, BankError, BankMap, BankPlan, InterleavedRun,
    Interleaver, Schedule,
};
use adgen_netlist::Library;

/// Outcome of exploring one interleaver on one bank configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BankedComparison {
    /// The workload explored.
    pub interleaver: Interleaver,
    /// The bank-mapping function used.
    pub map: BankMap,
    /// Parallel consumers (one per bank in the standard setup).
    pub lanes: u32,
    /// Window schedule with conflict/stall accounting.
    pub schedule: Schedule,
    /// Cycle-level cosim over the banked ADDM (write linear, read
    /// permuted, identity payload verified).
    pub cosim: InterleavedRun,
    /// Per-bank priced factorizations — `Some` iff the schedule is
    /// conflict-free.
    pub plan: Option<BankPlan>,
}

impl BankedComparison {
    /// Whether the conflict-free gate passed.
    pub fn conflict_free(&self) -> bool {
        self.schedule.conflict_free()
    }
}

/// Explores `interleaver` over `map` with `lanes` parallel consumers:
/// schedules, cosims, and (conflict-free only) decomposes and prices
/// every bank's local stream on `jobs` workers.
///
/// # Errors
///
/// Invalid workload/map parameters, capacity mismatches, or a
/// per-bank decompose/pricing failure.
pub fn compare_banked(
    interleaver: &Interleaver,
    map: &BankMap,
    lanes: u32,
    library: &Library,
    jobs: usize,
) -> Result<BankedComparison, BankError> {
    let perm = interleaver.permutation()?;
    let schedule = window_schedule(&perm, map, lanes)?;
    let cosim = run_interleaved(interleaver, map, lanes)?;
    let plan = match schedule.bank_streams {
        Some(ref streams) => Some(plan_banks(streams, library, jobs)?),
        None => None,
    };
    Ok(BankedComparison {
        interleaver: *interleaver,
        map: *map,
        lanes,
        schedule,
        cosim,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_bank::GeneratorChoice;

    #[test]
    fn contention_free_qpp_passes_the_gate_and_decompose_wins() {
        let lib = Library::vcl018();
        let qpp = Interleaver::qpp_contention_free(64, 4).unwrap();
        let map = BankMap::HighBits {
            banks: 4,
            window: 16,
        };
        let cmp = compare_banked(&qpp, &map, 4, &lib, 1).unwrap();
        assert!(cmp.conflict_free());
        assert_eq!(cmp.cosim.verified, 64);
        let plan = cmp.plan.expect("conflict-free schedule must be priced");
        assert_eq!(plan.banks.len(), 4);
        for bank in &plan.banks {
            assert_eq!(bank.residue_bits, 0, "bank {}: {bank:?}", bank.bank);
            assert_eq!(bank.choice, GeneratorChoice::Decomposed);
            assert!(
                bank.decomposed.area < bank.monolithic.area,
                "bank {}: decomposed {} !< monolithic {}",
                bank.bank,
                bank.decomposed.area,
                bank.monolithic.area
            );
        }
        assert!(plan.win_pct() > 0.0);
    }

    #[test]
    fn conflicted_schedule_reports_but_does_not_price() {
        let lib = Library::vcl018();
        let qpp = Interleaver::qpp_contention_free(64, 4).unwrap();
        let map = BankMap::LowBits {
            banks: 4,
            window: 16,
        };
        let cmp = compare_banked(&qpp, &map, 4, &lib, 1).unwrap();
        assert!(!cmp.conflict_free());
        assert!(cmp.plan.is_none());
        assert!(cmp.schedule.stall_cycles > 0);
    }

    #[test]
    fn banked_comparison_is_jobs_invariant() {
        let lib = Library::vcl018();
        let qpp = Interleaver::qpp_contention_free(64, 4).unwrap();
        let map = BankMap::HighBits {
            banks: 4,
            window: 16,
        };
        let serial = compare_banked(&qpp, &map, 4, &lib, 1).unwrap();
        for jobs in [0, 2, 5] {
            assert_eq!(
                compare_banked(&qpp, &map, 4, &lib, jobs).unwrap(),
                serial,
                "jobs = {jobs}"
            );
        }
    }
}
