//! Pareto analysis and constraint-driven selection.

use crate::candidates::Candidate;

/// A selection constraint over the delay/area plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constraint {
    /// Fastest implementation, ties broken by area.
    MinDelay,
    /// Smallest implementation, ties broken by delay.
    MinArea,
    /// Fastest implementation whose area does not exceed the bound
    /// (cell units).
    MinDelayUnderArea(f64),
    /// Smallest implementation whose delay does not exceed the bound
    /// (picoseconds).
    MinAreaUnderDelay(f64),
}

/// The subset of `candidates` not dominated in (delay, area): a
/// candidate is dominated if another is at least as good in both
/// dimensions and strictly better in one.
pub fn pareto_frontier(candidates: &[Candidate]) -> Vec<&Candidate> {
    candidates
        .iter()
        .filter(|c| {
            !candidates.iter().any(|other| {
                (other.delay_ps < c.delay_ps && other.area <= c.area)
                    || (other.delay_ps <= c.delay_ps && other.area < c.area)
            })
        })
        .collect()
}

/// Picks the best candidate under `constraint`, or `None` when no
/// candidate satisfies it.
pub fn select(candidates: &[Candidate], constraint: Constraint) -> Option<&Candidate> {
    let by_delay = |a: &&Candidate, b: &&Candidate| {
        a.delay_ps
            .total_cmp(&b.delay_ps)
            .then(a.area.total_cmp(&b.area))
    };
    let by_area = |a: &&Candidate, b: &&Candidate| {
        a.area
            .total_cmp(&b.area)
            .then(a.delay_ps.total_cmp(&b.delay_ps))
    };
    match constraint {
        Constraint::MinDelay => candidates.iter().min_by(by_delay),
        Constraint::MinArea => candidates.iter().min_by(by_area),
        Constraint::MinDelayUnderArea(cap) => {
            candidates.iter().filter(|c| c.area <= cap).min_by(by_delay)
        }
        Constraint::MinAreaUnderDelay(cap) => candidates
            .iter()
            .filter(|c| c.delay_ps <= cap)
            .min_by(by_area),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::Architecture;

    fn c(arch: Architecture, delay: f64, area: f64) -> Candidate {
        Candidate {
            architecture: arch,
            delay_ps: delay,
            area,
            flip_flops: 0,
        }
    }

    fn samples() -> Vec<Candidate> {
        vec![
            c(Architecture::Srag, 700.0, 9000.0),
            c(Architecture::CntAg, 1500.0, 3000.0),
            c(
                Architecture::SymbolicFsm(adgen_synth::Encoding::Binary),
                1600.0,
                9500.0,
            ),
        ]
    }

    #[test]
    fn frontier_drops_dominated() {
        let cs = samples();
        let front = pareto_frontier(&cs);
        assert_eq!(front.len(), 2);
        assert!(front
            .iter()
            .all(|c| c.architecture != Architecture::SymbolicFsm(adgen_synth::Encoding::Binary)));
    }

    #[test]
    fn frontier_of_empty_is_empty() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn min_delay_and_min_area() {
        let cs = samples();
        assert_eq!(
            select(&cs, Constraint::MinDelay).unwrap().architecture,
            Architecture::Srag
        );
        assert_eq!(
            select(&cs, Constraint::MinArea).unwrap().architecture,
            Architecture::CntAg
        );
    }

    #[test]
    fn constrained_selection() {
        let cs = samples();
        // Under a 5000-unit area cap only the CntAG qualifies.
        assert_eq!(
            select(&cs, Constraint::MinDelayUnderArea(5000.0))
                .unwrap()
                .architecture,
            Architecture::CntAg
        );
        // Under an 800 ps delay cap only the SRAG qualifies.
        assert_eq!(
            select(&cs, Constraint::MinAreaUnderDelay(800.0))
                .unwrap()
                .architecture,
            Architecture::Srag
        );
        // Impossible constraint.
        assert!(select(&cs, Constraint::MinAreaUnderDelay(10.0)).is_none());
    }

    #[test]
    fn equal_candidates_both_on_frontier() {
        let cs = vec![
            c(Architecture::Srag, 500.0, 500.0),
            c(Architecture::CntAg, 500.0, 500.0),
        ];
        assert_eq!(pareto_frontier(&cs).len(), 2);
    }
}
