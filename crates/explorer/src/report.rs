//! Human-readable exploration reports.

use std::fmt::Write as _;

use adgen_seq::{AddressSequence, SequenceProfile};

use crate::candidates::Evaluation;
use crate::pareto::{pareto_frontier, select, Constraint};

/// Renders an [`Evaluation`] (plus the input's regularity profile) as
/// a plain-text report: candidate table, rejection reasons, Pareto
/// frontier and the fastest/smallest recommendations.
pub fn render_evaluation(sequence: &AddressSequence, evaluation: &Evaluation) -> String {
    let mut s = String::new();
    let profile = SequenceProfile::of(sequence);
    let _ = writeln!(
        s,
        "sequence: {} accesses, {} distinct, period {}, class {:?}",
        profile.len,
        profile.distinct,
        profile.minimal_period,
        profile.class()
    );
    if let Some(dc) = profile.uniform_run_length {
        let _ = writeln!(s, "uniform run length (dC candidate): {dc}");
    }
    let _ = writeln!(
        s,
        "{:<14} {:>9} {:>10} {:>6}",
        "architecture", "delay/ns", "area", "FFs"
    );
    for c in &evaluation.candidates {
        let _ = writeln!(
            s,
            "{:<14} {:>9.3} {:>10.0} {:>6}",
            c.architecture.to_string(),
            c.delay_ps / 1000.0,
            c.area,
            c.flip_flops
        );
    }
    for (arch, reason) in &evaluation.rejected {
        let _ = writeln!(s, "{arch:<14} rejected: {reason}");
    }
    let frontier = pareto_frontier(&evaluation.candidates);
    let _ = writeln!(
        s,
        "pareto frontier: {}",
        frontier
            .iter()
            .map(|c| c.architecture.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    if let Some(best) = select(&evaluation.candidates, Constraint::MinDelay) {
        let _ = writeln!(
            s,
            "fastest: {} ({:.3} ns)",
            best.architecture,
            best.delay_ps / 1000.0
        );
    }
    if let Some(best) = select(&evaluation.candidates, Constraint::MinArea) {
        let _ = writeln!(
            s,
            "smallest: {} ({:.0} cell units)",
            best.architecture, best.area
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{evaluate, EvaluateOptions};
    use adgen_netlist::Library;
    use adgen_seq::{workloads, ArrayShape};

    #[test]
    fn report_mentions_candidates_and_frontier() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(8, 8);
        let seq = workloads::fifo(shape);
        let options = EvaluateOptions {
            cntag_program: Some(adgen_cntag::CntAgSpec::raster(shape)),
            ..EvaluateOptions::default()
        };
        let eval = evaluate(&seq, shape, &lib, &options);
        let text = render_evaluation(&seq, &eval);
        assert!(text.contains("SRAG"));
        assert!(text.contains("CntAG"));
        assert!(text.contains("pareto frontier"));
        assert!(text.contains("fastest:"));
        assert!(text.contains("class UniformScan"));
    }

    #[test]
    fn report_shows_rejections() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(8, 8);
        let seq = workloads::serpentine(shape);
        let eval = evaluate(&seq, shape, &lib, &EvaluateOptions::default());
        let text = render_evaluation(&seq, &eval);
        assert!(text.contains("rejected:"));
    }
}
