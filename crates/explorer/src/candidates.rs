//! Candidate enumeration and evaluation for one address sequence.

use adgen_affine::{fit_sequence, AffineAgNetlist};
use adgen_bank::{price_decomposed, Decomposition};
use adgen_cntag::netlist::decoder_delay_ps;
use adgen_cntag::{
    component_delays, ArithAgNetlist, ArithAgSpec, CntAgNetlist, CntAgSpec, RomAgNetlist, RomAgSpec,
};
use adgen_core::composite::Srag2d;
use adgen_core::multi_counter::{map_sequence_relaxed, MultiCounterSragNetlist};
use adgen_netlist::{AreaReport, Library, TimingAnalysis};
use adgen_obs as obs;
use adgen_seq::{AddressSequence, ArrayShape, Layout};
use adgen_synth::{Encoding, Fsm, OutputStyle};

/// An address-generator architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Two-hot shift-register generator (the paper's contribution).
    Srag,
    /// SRAG with relaxed per-register/per-address counters (§4
    /// extension).
    MultiCounterSrag,
    /// Counter cascade + decoders (the conventional baseline).
    CntAg,
    /// Accumulator + delta-ROM arithmetic generator (the weaker
    /// conventional style the paper cites).
    ArithAg,
    /// Index counter + full address ROM: the universal table-lookup
    /// fallback.
    RomAg,
    /// Symbolic FSM synthesized with the given encoding (paper §3).
    SymbolicFsm(Encoding),
    /// Runtime-programmable 2-deep affine AGU (Versat-style); pays a
    /// programming-register premium and an FSM for any non-affine
    /// residual, but needs no resynthesis per sequence.
    Affine,
    /// Decomposed generator from the bank-layer address-map
    /// factorization: a cycle counter feeding constant/counter-bit/
    /// XOR-fold components plus a binary FSM for the residue bits.
    Decomposed,
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Architecture::Srag => write!(f, "SRAG"),
            Architecture::MultiCounterSrag => write!(f, "MC-SRAG"),
            Architecture::CntAg => write!(f, "CntAG"),
            Architecture::ArithAg => write!(f, "ArithAG"),
            Architecture::RomAg => write!(f, "RomAG"),
            Architecture::SymbolicFsm(e) => write!(f, "FSM({e:?})"),
            Architecture::Affine => write!(f, "Affine"),
            Architecture::Decomposed => write!(f, "Decomposed"),
        }
    }
}

/// A successfully evaluated implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Which architecture produced it.
    pub architecture: Architecture,
    /// Critical-path delay in picoseconds.
    pub delay_ps: f64,
    /// Area in cell units.
    pub area: f64,
    /// Number of flip-flops.
    pub flip_flops: usize,
}

/// The outcome of exploring one sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Implementable candidates with their measurements.
    pub candidates: Vec<Candidate>,
    /// Architectures that could not implement the sequence, with the
    /// reason.
    pub rejected: Vec<(Architecture, String)>,
}

impl Evaluation {
    /// The candidate for `architecture`, if it was implementable.
    pub fn candidate(&self, architecture: Architecture) -> Option<&Candidate> {
        self.candidates
            .iter()
            .find(|c| c.architecture == architecture)
    }
}

/// Knobs for [`evaluate`].
#[derive(Debug, Clone)]
pub struct EvaluateOptions {
    /// Counter-cascade program for the CntAG baseline, when one
    /// exists for the workload (arbitrary sequences have none).
    pub cntag_program: Option<CntAgSpec>,
    /// Upper bound on sequence length for attempting symbolic-FSM
    /// synthesis (logic minimization cost grows steeply; the paper
    /// reports six hours at N = 256 on its tooling).
    pub fsm_state_limit: usize,
    /// Encodings to try for the symbolic FSM.
    pub fsm_encodings: Vec<Encoding>,
}

impl Default for EvaluateOptions {
    fn default() -> Self {
        EvaluateOptions {
            cntag_program: None,
            fsm_state_limit: 64,
            fsm_encodings: vec![Encoding::Binary],
        }
    }
}

/// Evaluates every architecture family on `sequence` over a
/// `shape`-sized array (row-major layout), returning measured
/// candidates and per-architecture rejection reasons.
pub fn evaluate(
    sequence: &AddressSequence,
    shape: ArrayShape,
    library: &Library,
    options: &EvaluateOptions,
) -> Evaluation {
    evaluate_jobs(sequence, shape, library, options, 1)
}

/// [`evaluate`] with the architecture families fanned across `jobs`
/// worker threads (`0` means all available cores). The result is
/// identical to the serial evaluation: candidates and rejections both
/// come back in the fixed family order (SRAG, MC-SRAG, CntAG,
/// ArithAG, RomAG, each requested FSM encoding, Affine, then
/// Decomposed) regardless of which thread finished first.
pub fn evaluate_jobs(
    sequence: &AddressSequence,
    shape: ArrayShape,
    library: &Library,
    options: &EvaluateOptions,
    jobs: usize,
) -> Evaluation {
    let _eval_span = obs::span_arg("explorer.evaluate", sequence.len() as u64);
    let mut families = vec![
        Architecture::Srag,
        Architecture::MultiCounterSrag,
        Architecture::CntAg,
        Architecture::ArithAg,
        Architecture::RomAg,
    ];
    families.extend(
        options
            .fsm_encodings
            .iter()
            .map(|&e| Architecture::SymbolicFsm(e)),
    );
    families.push(Architecture::Affine);
    families.push(Architecture::Decomposed);

    // One span (and one counter tick) per candidate architecture
    // enumerated — not per comparison — so a trace of an exploration
    // shows where each family's evaluation time went. The span arg is
    // the family's index in the fixed enumeration order.
    let results = adgen_exec::par_map(&families, jobs, |i, &arch| {
        let _candidate_span = obs::span_arg("explorer.candidate", i as u64);
        obs::add(obs::Ctr::ExplorerCandidates, 1);
        evaluate_family(arch, sequence, shape, library, options)
    });

    let mut candidates = Vec::new();
    let mut rejected = Vec::new();
    for (arch, result) in families.into_iter().zip(results) {
        match result {
            Ok(c) => candidates.push(c),
            Err(e) => rejected.push((arch, e)),
        }
    }
    Evaluation {
        candidates,
        rejected,
    }
}

/// Evaluates one architecture family; `Err` carries the rejection
/// reason.
fn evaluate_family(
    arch: Architecture,
    sequence: &AddressSequence,
    shape: ArrayShape,
    library: &Library,
    options: &EvaluateOptions,
) -> Result<Candidate, String> {
    match arch {
        // SRAG.
        Architecture::Srag => Srag2d::map(sequence, shape, Layout::RowMajor)
            .and_then(|m| m.elaborate())
            .map_err(|e| e.to_string())
            .and_then(|design| {
                let t = TimingAnalysis::run(&design.netlist, library).map_err(|e| e.to_string())?;
                Ok(Candidate {
                    architecture: Architecture::Srag,
                    delay_ps: t.critical_path_ps(),
                    area: AreaReport::of(&design.netlist, library).total(),
                    flip_flops: design.netlist.num_flip_flops(),
                })
            }),

        // Multi-counter SRAG: evaluated on the two decomposed streams.
        Architecture::MultiCounterSrag => sequence
            .decompose(shape, Layout::RowMajor)
            .map_err(adgen_core::SragError::from)
            .and_then(|(rows, cols)| {
                let r = map_sequence_relaxed(&rows)?;
                let c = map_sequence_relaxed(&cols)?;
                let rn = MultiCounterSragNetlist::elaborate(&r)?;
                let cn = MultiCounterSragNetlist::elaborate(&c)?;
                let rt = TimingAnalysis::run(&rn.netlist, library)?;
                let ct = TimingAnalysis::run(&cn.netlist, library)?;
                Ok(Candidate {
                    architecture: Architecture::MultiCounterSrag,
                    delay_ps: rt.critical_path_ps().max(ct.critical_path_ps()),
                    area: AreaReport::of(&rn.netlist, library).total()
                        + AreaReport::of(&cn.netlist, library).total(),
                    flip_flops: rn.netlist.num_flip_flops() + cn.netlist.num_flip_flops(),
                })
            })
            .map_err(|e| e.to_string()),

        // CntAG baseline, when a counter program exists.
        Architecture::CntAg => match &options.cntag_program {
            Some(program) => CntAgNetlist::elaborate(program)
                .and_then(|design| {
                    let comps = component_delays(program, library)?;
                    Ok(Candidate {
                        architecture: Architecture::CntAg,
                        delay_ps: comps.total_ps(),
                        area: AreaReport::of(&design.netlist, library).total(),
                        flip_flops: design.netlist.num_flip_flops(),
                    })
                })
                .map_err(|e| e.to_string()),
            None => Err("no counter-cascade program known for this sequence".to_string()),
        },

        // Arithmetic generator: applicable whenever the delta stream
        // has a short period and the shape is power-of-two.
        Architecture::ArithAg => {
            if !(shape.width().is_power_of_two() && shape.height().is_power_of_two()) {
                return Err("array dimensions are not powers of two".to_string());
            }
            ArithAgSpec::from_sequence(sequence, shape)
                .and_then(|spec| ArithAgNetlist::elaborate(&spec))
                .map_err(|e| e.to_string())
                .and_then(|design| {
                    let delay = design.serial_delay_ps(library).map_err(|e| e.to_string())?;
                    Ok(Candidate {
                        architecture: Architecture::ArithAg,
                        delay_ps: delay,
                        area: AreaReport::of(&design.netlist, library).total(),
                        flip_flops: design.netlist.num_flip_flops(),
                    })
                })
        }

        // Table-lookup generator: the universal fallback.
        Architecture::RomAg => {
            if !(shape.width().is_power_of_two() && shape.height().is_power_of_two()) {
                return Err("array dimensions are not powers of two".to_string());
            }
            RomAgSpec::from_sequence(sequence, shape)
                .and_then(|spec| RomAgNetlist::elaborate(&spec))
                .map_err(|e| e.to_string())
                .and_then(|design| {
                    let delay = design.serial_delay_ps(library).map_err(|e| e.to_string())?;
                    Ok(Candidate {
                        architecture: Architecture::RomAg,
                        delay_ps: delay,
                        area: AreaReport::of(&design.netlist, library).total(),
                        flip_flops: design.netlist.num_flip_flops(),
                    })
                })
        }

        // Symbolic FSMs on the decomposed streams (one machine per
        // dimension, as in the ADDM model).
        Architecture::SymbolicFsm(encoding) => {
            if sequence.len() > options.fsm_state_limit {
                return Err(format!(
                    "sequence length {} exceeds FSM synthesis limit {}",
                    sequence.len(),
                    options.fsm_state_limit
                ));
            }
            sequence
                .decompose(shape, Layout::RowMajor)
                .map_err(|e| e.to_string())
                .and_then(|(rows, cols)| {
                    let synth_dim = |s: &AddressSequence, lines: usize| {
                        Fsm::cyclic_sequence(s.as_slice())
                            .and_then(|f| {
                                f.synthesize(
                                    encoding,
                                    OutputStyle::SelectLines { num_lines: lines },
                                )
                            })
                            .map_err(|e| e.to_string())
                    };
                    let r = synth_dim(&rows, shape.height() as usize)?;
                    let c = synth_dim(&cols, shape.width() as usize)?;
                    let rt = TimingAnalysis::run(&r.netlist, library).map_err(|e| e.to_string())?;
                    let ct = TimingAnalysis::run(&c.netlist, library).map_err(|e| e.to_string())?;
                    Ok(Candidate {
                        architecture: arch,
                        delay_ps: rt.critical_path_ps().max(ct.critical_path_ps()),
                        area: AreaReport::of(&r.netlist, library).total()
                            + AreaReport::of(&c.netlist, library).total(),
                        flip_flops: r.netlist.num_flip_flops() + c.netlist.num_flip_flops(),
                    })
                })
        }

        // Programmable affine AGU plus an FSM for any residual; its
        // binary address drives standalone row/column decoders, so the
        // shape must split on powers of two like the other
        // decoder-based families.
        Architecture::Affine => {
            if !(shape.width().is_power_of_two() && shape.height().is_power_of_two()) {
                return Err("array dimensions are not powers of two".to_string());
            }
            let fit = fit_sequence(sequence.as_slice()).map_err(|e| e.to_string())?;
            if fit.residual.len() > options.fsm_state_limit {
                return Err(format!(
                    "affine residual of {} addresses exceeds FSM synthesis limit {}",
                    fit.residual.len(),
                    options.fsm_state_limit
                ));
            }
            let design = AffineAgNetlist::elaborate(&fit.spec).map_err(|e| e.to_string())?;
            let t = TimingAnalysis::run(&design.netlist, library).map_err(|e| e.to_string())?;
            let row_bits = shape.height().trailing_zeros() as usize;
            let col_bits = shape.width().trailing_zeros() as usize;
            let row_dec = decoder_delay_ps(row_bits, shape.height() as usize, library)
                .map_err(|e| e.to_string())?;
            let col_dec = decoder_delay_ps(col_bits, shape.width() as usize, library)
                .map_err(|e| e.to_string())?;
            let mut delay_ps = t.critical_path_ps() + row_dec.max(col_dec);
            let mut area = AreaReport::of(&design.netlist, library).total();
            let mut flip_flops = design.netlist.num_flip_flops();
            if !fit.residual.is_empty() {
                let bits = fit.spec.addr_width as usize;
                let residual = Fsm::cyclic_sequence(&fit.residual)
                    .and_then(|f| {
                        f.synthesize(Encoding::Binary, OutputStyle::BinaryAddress { bits })
                    })
                    .map_err(|e| format!("residual FSM: {e}"))?;
                let rt =
                    TimingAnalysis::run(&residual.netlist, library).map_err(|e| e.to_string())?;
                delay_ps = delay_ps.max(rt.critical_path_ps() + row_dec.max(col_dec));
                area += AreaReport::of(&residual.netlist, library).total();
                flip_flops += residual.netlist.num_flip_flops();
            }
            Ok(Candidate {
                architecture: Architecture::Affine,
                delay_ps,
                area,
                flip_flops,
            })
        }

        // Decomposed generator (bank-layer factorization): like the
        // affine AGU it presents a binary address, so it pays the
        // same standalone row/column decoders.
        Architecture::Decomposed => {
            if !(shape.width().is_power_of_two() && shape.height().is_power_of_two()) {
                return Err("array dimensions are not powers of two".to_string());
            }
            let d = Decomposition::of(sequence.as_slice()).map_err(|e| e.to_string())?;
            if d.residue_states() > options.fsm_state_limit {
                return Err(format!(
                    "decompose residue of {} states exceeds FSM synthesis limit {}",
                    d.residue_states(),
                    options.fsm_state_limit
                ));
            }
            let price = price_decomposed(&d, library).map_err(|e| e.to_string())?;
            let row_bits = shape.height().trailing_zeros() as usize;
            let col_bits = shape.width().trailing_zeros() as usize;
            let row_dec = decoder_delay_ps(row_bits, shape.height() as usize, library)
                .map_err(|e| e.to_string())?;
            let col_dec = decoder_delay_ps(col_bits, shape.width() as usize, library)
                .map_err(|e| e.to_string())?;
            Ok(Candidate {
                architecture: Architecture::Decomposed,
                delay_ps: price.delay_ps + row_dec.max(col_dec),
                area: price.area,
                flip_flops: price.flip_flops,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_seq::workloads;

    #[test]
    fn motion_est_yields_full_candidate_set() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(8, 8);
        let seq = workloads::motion_est_read(shape, 2, 2, 0);
        let options = EvaluateOptions {
            cntag_program: Some(CntAgSpec::motion_est(shape, 2, 2, 0)),
            ..EvaluateOptions::default()
        };
        let eval = evaluate(&seq, shape, &lib, &options);
        assert!(eval.candidate(Architecture::Srag).is_some());
        assert!(eval.candidate(Architecture::MultiCounterSrag).is_some());
        assert!(eval.candidate(Architecture::CntAg).is_some());
        assert!(eval.candidate(Architecture::ArithAg).is_some());
        assert!(eval.candidate(Architecture::RomAg).is_some());
        assert!(eval
            .candidate(Architecture::SymbolicFsm(Encoding::Binary))
            .is_some());
        assert!(eval.candidate(Architecture::Affine).is_some());
        assert!(eval.candidate(Architecture::Decomposed).is_some());
        assert!(eval.rejected.is_empty());
    }

    #[test]
    fn affine_pays_a_programming_premium_but_fits_motion_est() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(8, 8);
        let seq = workloads::motion_est_read(shape, 2, 2, 0);
        let eval = evaluate(&seq, shape, &lib, &EvaluateOptions::default());
        let affine = eval.candidate(Architecture::Affine).expect("affine row");
        // The programming chain alone is dozens of flip-flops — more
        // state than the SRAG needs for this workload.
        let srag = eval.candidate(Architecture::Srag).expect("srag row");
        assert!(affine.flip_flops > srag.flip_flops);
        assert!(affine.area > 0.0 && affine.delay_ps > 0.0);
    }

    #[test]
    fn unmappable_sequence_rejects_srag_with_reason() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(4, 4);
        // Rows stream 0,0,1 has uneven repetition — violates DivCnt
        // for both SRAG variants.
        let seq = AddressSequence::from_vec(vec![0, 4, 5, 1, 0, 2]);
        let eval = evaluate(&seq, shape, &lib, &EvaluateOptions::default());
        let srag_rejection = eval.rejected.iter().find(|(a, _)| *a == Architecture::Srag);
        assert!(srag_rejection.is_some(), "rejected: {:?}", eval.rejected);
        // The FSM still implements it.
        assert!(eval
            .candidate(Architecture::SymbolicFsm(Encoding::Binary))
            .is_some());
    }

    #[test]
    fn fsm_limit_enforced() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(16, 16);
        let seq = workloads::fifo(shape);
        let options = EvaluateOptions {
            fsm_state_limit: 10,
            ..EvaluateOptions::default()
        };
        let eval = evaluate(&seq, shape, &lib, &options);
        assert!(eval.rejected.iter().any(
            |(a, reason)| matches!(a, Architecture::SymbolicFsm(_)) && reason.contains("limit")
        ));
    }

    #[test]
    fn non_power_of_two_arrays_reject_decoder_based_families_gracefully() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(6, 6);
        // Raster over a 6-wide array: rows repeat 6x, still
        // SRAG-mappable.
        let seq = workloads::raster(shape);
        let eval = evaluate(&seq, shape, &lib, &EvaluateOptions::default());
        assert!(eval.candidate(Architecture::Srag).is_some());
        for family in [Architecture::ArithAg, Architecture::RomAg] {
            let (_, reason) = eval
                .rejected
                .iter()
                .find(|(a, _)| *a == family)
                .unwrap_or_else(|| panic!("{family} should be rejected"));
            assert!(reason.contains("powers of two"), "{family}: {reason}");
        }
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let lib = Library::vcl018();
        let shape = ArrayShape::new(8, 8);
        let seq = workloads::motion_est_read(shape, 2, 2, 0);
        let options = EvaluateOptions {
            cntag_program: Some(CntAgSpec::motion_est(shape, 2, 2, 0)),
            fsm_encodings: vec![Encoding::Binary, Encoding::Gray],
            ..EvaluateOptions::default()
        };
        let serial = evaluate(&seq, shape, &lib, &options);
        for jobs in [0, 2, 7] {
            let parallel = evaluate_jobs(&seq, shape, &lib, &options, jobs);
            assert_eq!(parallel, serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Architecture::Srag.to_string(), "SRAG");
        assert_eq!(Architecture::CntAg.to_string(), "CntAG");
        assert!(Architecture::SymbolicFsm(Encoding::Gray)
            .to_string()
            .contains("Gray"));
    }
}
