//! The resilience axis of the design space: what a fault does to
//! each architecture, and what hardening against it costs.
//!
//! The paper trades delay against area; address decoder decoupling
//! adds a third, unstated axis. A decoder remaps *every* counter
//! state to a legal one-hot select, so a corrupted CntAG merely
//! addresses the wrong cell. A plain SRAG ring, driving the select
//! lines straight from flip-flops, can enter and circulate an
//! illegal multi-hot or all-zero state — silent data corruption in
//! an ADDM. This module quantifies both sides for one mapped
//! sequence: fault coverage of the plain and hardened (self-checking)
//! two-hot SRAG pair over the same select-ring fault universe, and
//! the area/delay premium the checker and watchdog cost.

use adgen_cntag::netlist::SELECT_LINE_LOAD_FF;
use adgen_core::composite::Srag2d;
use adgen_core::SragError;
use adgen_fault::{
    driving_flip_flops, run_campaign, sample_seus, CampaignReport, CampaignSpec, Fault,
};
use adgen_netlist::{AreaReport, Library, NetId, Netlist, TimingAnalysis};
use adgen_seq::{AddressSequence, ArrayShape, Layout};

/// Plain-versus-hardened resilience of one mapped sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceRow {
    /// Fault coverage (detected / non-benign, %) of the plain pair:
    /// faults are only ever caught downstream, by corrupted outputs.
    pub plain_coverage_pct: f64,
    /// Self-checking coverage of the plain pair — zero by
    /// construction (no alarm exists).
    pub plain_alarm_coverage_pct: f64,
    /// Plain-pair faults that corrupted state without ever reaching
    /// an output in the window: the silent-corruption exposure.
    pub plain_silent: usize,
    /// Fault coverage (%) of the hardened pair.
    pub hardened_coverage_pct: f64,
    /// Self-checking coverage (%) of the hardened pair — the share
    /// of effective faults its own alarm caught.
    pub hardened_alarm_coverage_pct: f64,
    /// Hardened-pair faults that stayed silent.
    pub hardened_silent: usize,
    /// Number of faults in the (shared) campaign universe.
    pub faults: usize,
    /// Plain pair total area, cell units.
    pub plain_area: f64,
    /// Hardened pair total area, cell units.
    pub hardened_area: f64,
    /// Plain pair critical path under select-line load, picoseconds.
    pub plain_delay_ps: f64,
    /// Hardened pair critical path under the same load, picoseconds.
    pub hardened_delay_ps: f64,
}

impl ResilienceRow {
    /// Hardened area over plain area (>1: hardening costs area).
    pub fn area_overhead_factor(&self) -> f64 {
        self.hardened_area / self.plain_area
    }

    /// Hardened delay over plain delay (>1: hardening costs speed).
    pub fn delay_overhead_factor(&self) -> f64 {
        self.hardened_delay_ps / self.plain_delay_ps
    }
}

/// The select-ring fault universe both variants are measured
/// against: stuck-at-0/1 on every select line, plus `seu_samples`
/// seed-reproducible SEUs on the flip-flops driving `ring_nets`
/// (`cycles.saturating_sub(1).max(1)` strike cycles). Using the same
/// *logical* faults on both designs (the select lines and rings
/// correspond one-to-one) keeps the two coverage figures comparable.
/// Public so benchmark drivers (`simbench`) can replay exactly the
/// universe [`compare_resilience`] uses.
pub fn ring_fault_universe(
    netlist: &Netlist,
    select_lines: &[NetId],
    ring_nets: &[NetId],
    cycles: u32,
    seu_samples: usize,
    seed: u64,
) -> Vec<Fault> {
    let mut faults: Vec<Fault> = select_lines
        .iter()
        .flat_map(|&net| {
            [
                Fault::StuckAt { net, value: false },
                Fault::StuckAt { net, value: true },
            ]
        })
        .collect();
    let ffs = driving_flip_flops(netlist, ring_nets);
    faults.extend(sample_seus(
        &ffs,
        cycles.saturating_sub(1).max(1),
        seu_samples,
        seed,
    ));
    faults
}

/// Maps `sequence` onto a two-hot SRAG pair, elaborates the plain
/// and hardened variants, runs the identical select-ring fault
/// campaign on each, and measures the hardening premium with the
/// same STA/area accounting as the delay-area comparisons.
///
/// `cycles` is the campaign observation window (one full sequence
/// period is the natural choice); `seu_samples` SEUs are drawn from
/// `seed`. `jobs` fans the fault replays out as in every other
/// engine (`0` = all cores); results are jobs-invariant.
///
/// # Errors
///
/// Propagates mapping and elaboration failures.
pub fn compare_resilience(
    sequence: &AddressSequence,
    shape: ArrayShape,
    library: &Library,
    cycles: u32,
    seu_samples: usize,
    seed: u64,
    jobs: usize,
) -> Result<(ResilienceRow, CampaignReport, CampaignReport), SragError> {
    let pair = Srag2d::map(sequence, shape, Layout::RowMajor)?;
    let plain = pair.elaborate()?;
    let hardened = pair.elaborate_hardened()?;

    let plain_ring: Vec<NetId> = plain
        .row_lines
        .iter()
        .chain(&plain.col_lines)
        .copied()
        .collect();
    let plain_faults = ring_fault_universe(
        &plain.netlist,
        &plain_ring,
        &plain_ring,
        cycles,
        seu_samples,
        seed,
    );
    let plain_spec = CampaignSpec {
        netlist: &plain.netlist,
        cycles,
        alarm_output: None,
    };
    let plain_report = run_campaign(&plain_spec, &plain_faults, jobs);

    let hard_lines: Vec<NetId> = hardened
        .row_lines
        .iter()
        .chain(&hardened.col_lines)
        .copied()
        .collect();
    let hard_ring: Vec<NetId> = hardened
        .row_ring_ffs
        .iter()
        .chain(&hardened.col_ring_ffs)
        .copied()
        .collect();
    let hard_faults = ring_fault_universe(
        &hardened.netlist,
        &hard_lines,
        &hard_ring,
        cycles,
        seu_samples,
        seed,
    );
    let hard_spec = CampaignSpec {
        netlist: &hardened.netlist,
        cycles,
        alarm_output: Some(hardened.alarm_output_index()),
    };
    let hard_report = run_campaign(&hard_spec, &hard_faults, jobs);

    let plain_timing =
        TimingAnalysis::run_with_output_load(&plain.netlist, library, SELECT_LINE_LOAD_FF)
            .map_err(SragError::from)?;
    let hard_timing =
        TimingAnalysis::run_with_output_load(&hardened.netlist, library, SELECT_LINE_LOAD_FF)
            .map_err(SragError::from)?;

    let row = ResilienceRow {
        plain_coverage_pct: plain_report.coverage_pct(),
        plain_alarm_coverage_pct: plain_report.alarm_coverage_pct(),
        plain_silent: plain_report.silent(),
        hardened_coverage_pct: hard_report.coverage_pct(),
        hardened_alarm_coverage_pct: hard_report.alarm_coverage_pct(),
        hardened_silent: hard_report.silent(),
        faults: plain_faults.len(),
        plain_area: AreaReport::of(&plain.netlist, library).total(),
        hardened_area: AreaReport::of(&hardened.netlist, library).total(),
        plain_delay_ps: plain_timing.critical_path_ps(),
        hardened_delay_ps: hard_timing.critical_path_ps(),
    };
    Ok((row, plain_report, hard_report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_seq::workloads;

    #[test]
    fn hardening_buys_alarm_coverage_for_area() {
        let shape = ArrayShape::new(4, 4);
        let seq = workloads::motion_est_read(shape, 2, 2, 0);
        let lib = Library::vcl018();
        let (row, plain, hardened) =
            compare_resilience(&seq, shape, &lib, seq.len() as u32, 12, 2026, 2).unwrap();
        // The plain pair cannot self-detect anything...
        assert_eq!(row.plain_alarm_coverage_pct, 0.0);
        assert_eq!(plain.alarmed(), 0);
        // ...the hardened pair self-detects every effective ring
        // fault in the universe...
        assert_eq!(row.hardened_alarm_coverage_pct, 100.0);
        assert_eq!(hardened.silent(), 0);
        // ...and the checker + watchdog show up in the bill.
        assert!(row.area_overhead_factor() > 1.0);
        assert!(row.hardened_delay_ps > 0.0 && row.plain_delay_ps > 0.0);
        assert_eq!(row.faults, 2 * 8 + 12);
    }

    #[test]
    fn resilience_rows_are_jobs_invariant() {
        let shape = ArrayShape::new(4, 4);
        let seq = workloads::transpose_scan(shape);
        let lib = Library::vcl018();
        let a = compare_resilience(&seq, shape, &lib, 16, 6, 7, 1).unwrap();
        let b = compare_resilience(&seq, shape, &lib, 16, 6, 7, 4).unwrap();
        assert_eq!(a, b);
    }
}
