//! The affine programming model: two chained levels, a closed-form
//! reference stream, and a behavioural simulator.
//!
//! ## Semantics
//!
//! Each level is a nested-loop slot in the Versat `xaddrgen2` mold.
//! A level with parameters `{start, iterations, period, duty, shift,
//! incr}` runs `iterations` passes of `period` clock ticks each. On
//! tick `t` of a pass (counting from level start across passes,
//! `t = pass * period + p`), the level contributes the offset
//!
//! ```text
//! off(t) = t * incr + pass * shift        (mod 2^addr_width)
//! ```
//!
//! i.e. `incr` is added every tick and `shift` is an extra correction
//! applied when a pass wraps. The tick is *emitted* (the memory is
//! enabled) only while the within-pass position `p < duty`; ticks
//! with `duty <= p < period` advance the offset silently.
//!
//! The two levels chain: the **inner** level runs through all of its
//! ticks, and each time it completes a full program (all passes) the
//! **outer** level advances by one tick. The presented address is
//!
//! ```text
//! addr = inner.start + outer.start + off_inner + off_outer
//! ```
//!
//! and the memory-enable is the AND of both levels' duty windows.
//! After the outer level completes, everything wraps and the program
//! repeats cyclically — the behaviour the rest of the workspace
//! expects from an [`AddressGenerator`].

use adgen_seq::AddressGenerator;

use crate::error::AffineError;

/// Widest supported address datapath.
pub const MAX_ADDR_WIDTH: u32 = 32;

/// Widest supported iteration/period/duty register.
pub const MAX_CNT_WIDTH: u32 = 20;

/// Upper bound on `program_ticks` a spec may describe; bounds every
/// replay loop in the mapper, the fuzz oracle and the tests.
pub const MAX_PROGRAM_TICKS: u64 = 1 << 22;

/// One affine loop level.
///
/// `start`, `incr` and `shift` are `addr_width`-bit two's-complement
/// values stored as raw masked `u32`s (a negative increment `d` is
/// stored as `(2^addr_width + d) mod 2^addr_width`); `iterations`,
/// `period` and `duty` are unsigned counts held in `cnt_width`-bit
/// registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AffineLevel {
    /// Base address contribution (the two levels' starts are summed).
    pub start: u32,
    /// Number of passes.
    pub iterations: u32,
    /// Clock ticks per pass.
    pub period: u32,
    /// Emitted ticks per pass; `1 <= duty <= period`.
    pub duty: u32,
    /// Extra offset applied when a pass wraps.
    pub shift: u32,
    /// Offset added every tick.
    pub incr: u32,
}

impl AffineLevel {
    /// A level that holds one value forever: one pass, one tick.
    pub fn unit() -> Self {
        AffineLevel {
            start: 0,
            iterations: 1,
            period: 1,
            duty: 1,
            shift: 0,
            incr: 0,
        }
    }

    /// Clock ticks this level runs for (`iterations * period`).
    pub fn ticks(&self) -> u64 {
        u64::from(self.iterations) * u64::from(self.period)
    }

    /// Emitted (duty-window) ticks (`iterations * duty`).
    pub fn emitted(&self) -> u64 {
        u64::from(self.iterations) * u64::from(self.duty)
    }
}

/// A complete two-level affine program plus its register widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AffineSpec {
    /// Datapath width; addresses and offsets are mod `2^addr_width`.
    pub addr_width: u32,
    /// Width of the iteration/period/duty registers.
    pub cnt_width: u32,
    /// The inner (fast) level.
    pub inner: AffineLevel,
    /// The outer (slow) level; ticks once per completed inner program.
    pub outer: AffineLevel,
}

impl AffineSpec {
    /// The do-nothing program: both levels unit, presenting address 0
    /// forever. Used as the neutral reset default when a circuit is
    /// meant to be programmed over the chain.
    pub fn trivial(addr_width: u32, cnt_width: u32) -> Self {
        AffineSpec {
            addr_width,
            cnt_width,
            inner: AffineLevel::unit(),
            outer: AffineLevel::unit(),
        }
    }

    /// The value mask for this spec's datapath.
    pub fn mask(&self) -> u32 {
        if self.addr_width >= 32 {
            u32::MAX
        } else {
            (1u32 << self.addr_width) - 1
        }
    }

    fn cnt_limit(&self) -> u32 {
        if self.cnt_width >= 32 {
            u32::MAX
        } else {
            (1u32 << self.cnt_width) - 1
        }
    }

    /// Checks every structural constraint the hardware bakes in.
    ///
    /// # Errors
    ///
    /// Returns [`AffineError::InvalidSpec`] naming the violated
    /// constraint.
    pub fn validate(&self) -> Result<(), AffineError> {
        let fail = |why: String| Err(AffineError::InvalidSpec(why));
        if self.addr_width == 0 || self.addr_width > MAX_ADDR_WIDTH {
            return fail(format!(
                "addr_width {} outside 1..={MAX_ADDR_WIDTH}",
                self.addr_width
            ));
        }
        if self.cnt_width == 0 || self.cnt_width > MAX_CNT_WIDTH {
            return fail(format!(
                "cnt_width {} outside 1..={MAX_CNT_WIDTH}",
                self.cnt_width
            ));
        }
        let mask = self.mask();
        let cnt_limit = self.cnt_limit();
        for (tag, level) in [("inner", &self.inner), ("outer", &self.outer)] {
            if level.iterations == 0 {
                return fail(format!("{tag}.iterations must be >= 1"));
            }
            if level.period == 0 {
                return fail(format!("{tag}.period must be >= 1"));
            }
            if level.duty == 0 || level.duty > level.period {
                return fail(format!(
                    "{tag}.duty {} outside 1..=period ({})",
                    level.duty, level.period
                ));
            }
            if level.iterations > cnt_limit || level.period > cnt_limit {
                return fail(format!(
                    "{tag} counts exceed the {}-bit count registers",
                    self.cnt_width
                ));
            }
            for (field, value) in [
                ("start", level.start),
                ("incr", level.incr),
                ("shift", level.shift),
            ] {
                if value & !mask != 0 {
                    return fail(format!(
                        "{tag}.{field} {value:#x} exceeds the {}-bit datapath",
                        self.addr_width
                    ));
                }
            }
        }
        if self.program_ticks() > MAX_PROGRAM_TICKS {
            return fail(format!(
                "program of {} ticks exceeds the {MAX_PROGRAM_TICKS}-tick cap",
                self.program_ticks()
            ));
        }
        Ok(())
    }

    /// Clock ticks in one full program (before it wraps).
    pub fn program_ticks(&self) -> u64 {
        self.inner.ticks() * self.outer.ticks()
    }

    /// Addresses emitted in one full program.
    pub fn emitted_len(&self) -> usize {
        (self.inner.emitted() * self.outer.emitted()) as usize
    }

    /// The closed-form reference stream: every emitted address of one
    /// program, in order. This is the specification the behavioural
    /// simulator, the gate-level circuit and the mapper are all
    /// checked against.
    pub fn emitted_stream(&self) -> Vec<u32> {
        let mask = self.mask();
        let base = self.inner.start.wrapping_add(self.outer.start) & mask;
        let mut out = Vec::with_capacity(self.emitted_len());
        for itb in 0..self.outer.iterations {
            for pb in 0..self.outer.period {
                if pb >= self.outer.duty {
                    continue;
                }
                let tb = itb * self.outer.period + pb;
                let off_b = tb
                    .wrapping_mul(self.outer.incr)
                    .wrapping_add(itb.wrapping_mul(self.outer.shift));
                for ita in 0..self.inner.iterations {
                    for pa in 0..self.inner.period {
                        if pa >= self.inner.duty {
                            continue;
                        }
                        let ta = ita * self.inner.period + pa;
                        let off_a = ta
                            .wrapping_mul(self.inner.incr)
                            .wrapping_add(ita.wrapping_mul(self.inner.shift));
                        out.push(base.wrapping_add(off_b).wrapping_add(off_a) & mask);
                    }
                }
            }
        }
        out
    }
}

/// Cycle-accurate behavioural model of the affine AGU — the same
/// state machine the gate-level elaboration implements, expressed
/// over integers. Implements [`AddressGenerator`] by skipping
/// non-emitted (duty-masked) ticks, so `collect_sequence` returns the
/// emitted stream cyclically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineSimulator {
    spec: AffineSpec,
    /// Within-pass position of the inner level.
    pa: u32,
    /// Inner pass index.
    ita: u32,
    /// Within-pass position of the outer level.
    pb: u32,
    /// Outer pass index.
    itb: u32,
    /// Accumulated inner offset.
    acc_a: u32,
    /// Accumulated outer offset.
    acc_b: u32,
}

impl AffineSimulator {
    /// A simulator at reset for `spec`.
    ///
    /// # Errors
    ///
    /// Rejects invalid specs (see [`AffineSpec::validate`]).
    pub fn new(spec: AffineSpec) -> Result<Self, AffineError> {
        spec.validate()?;
        Ok(AffineSimulator {
            spec,
            pa: 0,
            ita: 0,
            pb: 0,
            itb: 0,
            acc_a: 0,
            acc_b: 0,
        })
    }

    /// The program being run.
    pub fn spec(&self) -> &AffineSpec {
        &self.spec
    }

    /// Whether the current tick is inside both duty windows (the
    /// `mem_en` output of the circuit).
    pub fn mem_en(&self) -> bool {
        self.pa < self.spec.inner.duty && self.pb < self.spec.outer.duty
    }

    /// Whether the current tick is the last of the whole program (the
    /// `done` output of the circuit).
    pub fn done(&self) -> bool {
        self.last_inner() && self.pass_end() && self.last_outer_period() && self.last_outer_pass()
    }

    /// The address presented this tick.
    pub fn addr(&self) -> u32 {
        let s = &self.spec;
        s.inner
            .start
            .wrapping_add(s.outer.start)
            .wrapping_add(self.acc_a)
            .wrapping_add(self.acc_b)
            & s.mask()
    }

    fn last_inner(&self) -> bool {
        self.pa + 1 == self.spec.inner.period
    }

    fn pass_end(&self) -> bool {
        self.last_inner() && self.ita + 1 == self.spec.inner.iterations
    }

    fn last_outer_period(&self) -> bool {
        self.pb + 1 == self.spec.outer.period
    }

    fn last_outer_pass(&self) -> bool {
        self.itb + 1 == self.spec.outer.iterations
    }

    /// Advances one clock tick (one `next` pulse at gate level),
    /// whether or not the tick was emitted.
    pub fn tick(&mut self) {
        let s = self.spec;
        let mask = s.mask();
        let last_a = self.last_inner();
        let pass_end = self.pass_end();
        let last_b = self.last_outer_period();
        let prog_end = pass_end && last_b && self.last_outer_pass();

        let mut delta_a = s.inner.incr;
        if last_a {
            delta_a = delta_a.wrapping_add(s.inner.shift);
        }
        self.acc_a = if pass_end {
            0
        } else {
            self.acc_a.wrapping_add(delta_a) & mask
        };

        if pass_end {
            let mut delta_b = s.outer.incr;
            if last_b {
                delta_b = delta_b.wrapping_add(s.outer.shift);
            }
            self.acc_b = if prog_end {
                0
            } else {
                self.acc_b.wrapping_add(delta_b) & mask
            };
            if last_b {
                self.pb = 0;
                self.itb = if self.last_outer_pass() {
                    0
                } else {
                    self.itb + 1
                };
            } else {
                self.pb += 1;
            }
        }

        if last_a {
            self.pa = 0;
            self.ita = if self.ita + 1 == s.inner.iterations {
                0
            } else {
                self.ita + 1
            };
        } else {
            self.pa += 1;
        }
    }
}

impl AddressGenerator for AffineSimulator {
    fn reset(&mut self) {
        self.pa = 0;
        self.ita = 0;
        self.pb = 0;
        self.itb = 0;
        self.acc_a = 0;
        self.acc_b = 0;
    }

    fn advance(&mut self) {
        // At least one tick per program is emitted (duty >= 1 and
        // position (0, 0) is inside both windows), so this loop is
        // bounded by `program_ticks`, which `validate` caps.
        self.tick();
        while !self.mem_en() {
            self.tick();
        }
    }

    fn current(&self) -> u32 {
        self.addr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raster_spec() -> AffineSpec {
        // An 8-address ramp: one level, eight emitted ticks, +1 each.
        AffineSpec {
            addr_width: 3,
            cnt_width: 4,
            inner: AffineLevel {
                start: 0,
                iterations: 1,
                period: 8,
                duty: 8,
                shift: 0,
                incr: 1,
            },
            outer: AffineLevel::unit(),
        }
    }

    #[test]
    fn ramp_emits_incrementing_addresses() {
        assert_eq!(raster_spec().emitted_stream(), (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn simulator_matches_closed_form_and_wraps() {
        let spec = AffineSpec {
            addr_width: 6,
            cnt_width: 4,
            inner: AffineLevel {
                start: 3,
                iterations: 3,
                period: 4,
                duty: 2,
                shift: 5,
                incr: 1,
            },
            outer: AffineLevel {
                start: 1,
                iterations: 2,
                period: 3,
                duty: 2,
                shift: 60, // -4 mod 64
                incr: 8,
            },
        };
        let stream = spec.emitted_stream();
        assert_eq!(stream.len(), spec.emitted_len());
        let mut sim = AffineSimulator::new(spec).unwrap();
        let twice = sim.collect_sequence(stream.len() * 2);
        assert_eq!(&twice.as_slice()[..stream.len()], &stream[..]);
        assert_eq!(
            &twice.as_slice()[stream.len()..],
            &stream[..],
            "program wraps cyclically"
        );
    }

    #[test]
    fn duty_windows_mask_emission() {
        // period 4 / duty 2: offsets still advance during the masked
        // half, so emitted addresses jump by 3 across the gap.
        let spec = AffineSpec {
            addr_width: 5,
            cnt_width: 3,
            inner: AffineLevel {
                start: 0,
                iterations: 2,
                period: 4,
                duty: 2,
                shift: 0,
                incr: 1,
            },
            outer: AffineLevel::unit(),
        };
        assert_eq!(spec.emitted_stream(), vec![0, 1, 4, 5]);
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let mut s = raster_spec();
        s.inner.duty = 9;
        assert!(matches!(s.validate(), Err(AffineError::InvalidSpec(_))));
        let mut s = raster_spec();
        s.inner.period = 0;
        assert!(s.validate().is_err());
        let mut s = raster_spec();
        s.inner.start = 8; // 3-bit datapath
        assert!(s.validate().is_err());
        let mut s = raster_spec();
        s.cnt_width = 3;
        s.inner.period = 8; // needs 4 bits
        assert!(s.validate().is_err());
        assert!(raster_spec().validate().is_ok());
    }

    #[test]
    fn done_marks_the_last_program_tick() {
        let spec = raster_spec();
        let mut sim = AffineSimulator::new(spec).unwrap();
        for t in 0..16 {
            assert_eq!(sim.done(), t % 8 == 7, "tick {t}");
            sim.tick();
        }
    }
}
