//! Fitting arbitrary 1-D address sequences into affine parameters —
//! the automatic replacement for the paper §5 hand-mapping step, for
//! the programmable family.
//!
//! [`fit_sequence`] first searches for an **exact** two-level fit: it
//! tries every divisor `n` of the sequence length as the inner-level
//! emitted count (smallest first, so single-level programs win when
//! they exist), fits the within-pass difference pattern and the
//! pass-start difference pattern independently, and accepts a
//! candidate only after replaying its closed-form stream against the
//! input. If no divisor fits, it falls back to the longest affine
//! **prefix** it can verify and returns the rest as the *residual* —
//! the subsequence a hybrid generator must still produce with an FSM.
//!
//! Either way the invariant `affine part ++ residual == input` holds
//! by construction: nothing unverified is ever returned.

use crate::error::AffineError;
use crate::spec::{AffineLevel, AffineSpec, MAX_CNT_WIDTH};

/// Mapper input cap; keeps the divisor search and verification
/// replays bounded.
pub const MAX_MAP_LEN: usize = 1 << 16;

/// The result of fitting a sequence: a verified spec, how much of the
/// input it covers, and the residual tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineFit {
    /// The fitted program. Its emitted stream reproduces
    /// `input[..covered]` exactly.
    pub spec: AffineSpec,
    /// Number of input addresses the affine part covers (`>= 1`).
    pub covered: usize,
    /// `input[covered..]` — what still needs an FSM. Empty iff the
    /// fit is exact.
    pub residual: Vec<u32>,
}

impl AffineFit {
    /// Whether the whole input was captured affinely.
    pub fn is_exact(&self) -> bool {
        self.residual.is_empty()
    }

    /// Replays the fit: affine stream truncated to `covered`, then
    /// the residual. Equal to the mapper's input by construction.
    pub fn reconstruct(&self) -> Vec<u32> {
        let mut out = self.spec.emitted_stream();
        out.truncate(self.covered);
        out.extend_from_slice(&self.residual);
        out
    }
}

/// Shape of one fitted level, before widths are chosen.
#[derive(Debug, Clone, Copy)]
struct LevelShape {
    iterations: u32,
    period: u32,
    duty: u32,
    incr: u32,
    shift: u32,
}

impl LevelShape {
    fn unit() -> Self {
        LevelShape {
            iterations: 1,
            period: 1,
            duty: 1,
            incr: 0,
            shift: 0,
        }
    }

    fn into_level(self, start: u32) -> AffineLevel {
        AffineLevel {
            start,
            iterations: self.iterations,
            period: self.period,
            duty: self.duty,
            shift: self.shift,
            incr: self.incr,
        }
    }
}

fn bits_for(v: u32) -> u32 {
    (32 - v.leading_zeros()).max(1)
}

fn mask_for(width: u32) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

/// Fits `m` consecutive values whose successive differences are
/// `diffs` (so `diffs.len() == m - 1`) into one level emitting `m`
/// addresses. The recognized patterns are: a single value, a constant
/// ramp, and a two-valued periodic ramp (constant `incr` with a
/// `shift` correction every `period` values).
fn fit_level(diffs: &[u32], m: usize, mask: u32) -> Option<LevelShape> {
    debug_assert_eq!(diffs.len() + 1, m);
    if m == 1 {
        return Some(LevelShape::unit());
    }
    let x = diffs[0];
    match diffs.iter().position(|&d| d != x) {
        None => Some(LevelShape {
            iterations: 1,
            period: m as u32,
            duty: m as u32,
            incr: x,
            shift: 0,
        }),
        Some(j) => {
            // First irregular diff at index j: candidate period j+1,
            // boundary value y at every (i + 1) % period == 0.
            let period = j + 1;
            if period < 2 || !m.is_multiple_of(period) {
                return None;
            }
            let y = diffs[period - 1];
            for (i, &d) in diffs.iter().enumerate() {
                let expected = if (i + 1) % period == 0 { y } else { x };
                if d != expected {
                    return None;
                }
            }
            Some(LevelShape {
                iterations: (m / period) as u32,
                period: period as u32,
                duty: period as u32,
                incr: x,
                shift: y.wrapping_sub(x) & mask,
            })
        }
    }
}

fn is_unit(shape: &LevelShape) -> bool {
    shape.iterations == 1 && shape.period == 1
}

/// Assembles a candidate spec from two fitted level shapes, sizing
/// the registers to fit. Returns `None` when the counts need more
/// than [`MAX_CNT_WIDTH`] bits. A program whose inner level is idle
/// is normalized so the work sits on the inner (fast) level.
fn assemble(
    start: u32,
    mut inner: LevelShape,
    mut outer: LevelShape,
    addr_width: u32,
) -> Option<AffineSpec> {
    if is_unit(&inner) && !is_unit(&outer) {
        std::mem::swap(&mut inner, &mut outer);
    }
    let max_count = inner
        .iterations
        .max(inner.period)
        .max(outer.iterations)
        .max(outer.period);
    let cnt_width = bits_for(max_count);
    if cnt_width > MAX_CNT_WIDTH {
        return None;
    }
    let spec = AffineSpec {
        addr_width,
        cnt_width,
        inner: inner.into_level(start),
        outer: outer.into_level(0),
    };
    spec.validate().ok()?;
    Some(spec)
}

/// Replay-verifies that `spec` reproduces `prefix` exactly.
fn verifies(spec: &AffineSpec, prefix: &[u32]) -> bool {
    let stream = spec.emitted_stream();
    stream.len() >= prefix.len() && stream[..prefix.len()] == *prefix
}

/// Fits `seq` into a two-level affine program, exactly when a
/// verified exact fit exists, otherwise as the longest verified
/// prefix plus the residual tail.
///
/// # Errors
///
/// Returns [`AffineError::EmptySequence`] on an empty input and
/// [`AffineError::SequenceTooLong`] above [`MAX_MAP_LEN`].
pub fn fit_sequence(seq: &[u32]) -> Result<AffineFit, AffineError> {
    if seq.is_empty() {
        return Err(AffineError::EmptySequence);
    }
    if seq.len() > MAX_MAP_LEN {
        return Err(AffineError::SequenceTooLong {
            len: seq.len(),
            max: MAX_MAP_LEN,
        });
    }
    let max_addr = seq.iter().copied().max().unwrap_or(0);
    let addr_width = bits_for(max_addr);
    let mask = mask_for(addr_width);
    let len = seq.len();

    if len == 1 {
        let spec = assemble(seq[0], LevelShape::unit(), LevelShape::unit(), addr_width)
            .expect("unit spec always assembles");
        return Ok(AffineFit {
            spec,
            covered: 1,
            residual: Vec::new(),
        });
    }

    let diffs: Vec<u32> = seq
        .windows(2)
        .map(|w| w[1].wrapping_sub(w[0]) & mask)
        .collect();

    // Exact fit: inner emitted count n must divide the length; the
    // within-pass diff pattern must repeat across all passes; the
    // pass-start diffs must fit a level of their own.
    for n in 1..=len {
        if !len.is_multiple_of(n) {
            continue;
        }
        let passes = len / n;
        let inner_pattern = &diffs[..n - 1];
        let pattern_repeats =
            (1..passes).all(|k| (0..n - 1).all(|j| diffs[k * n + j] == inner_pattern[j]));
        if !pattern_repeats {
            continue;
        }
        let Some(inner) = fit_level(inner_pattern, n, mask) else {
            continue;
        };
        let starts: Vec<u32> = (0..passes).map(|k| seq[k * n]).collect();
        let start_diffs: Vec<u32> = starts
            .windows(2)
            .map(|w| w[1].wrapping_sub(w[0]) & mask)
            .collect();
        let Some(outer) = fit_level(&start_diffs, passes, mask) else {
            continue;
        };
        let Some(spec) = assemble(seq[0], inner, outer, addr_width) else {
            continue;
        };
        if verifies(&spec, seq) {
            return Ok(AffineFit {
                spec,
                covered: len,
                residual: Vec::new(),
            });
        }
    }

    // Prefix fit: take the run up to the first diff irregularity as
    // the pass shape, extend across as many pattern-identical passes
    // as the pass-start diffs allow, verify, and return the rest as
    // residual.
    let first_irregular = diffs
        .iter()
        .position(|&d| d != diffs[0])
        .expect("an all-regular diff sequence is caught by the n=1 exact fit");
    let n0 = first_irregular + 1;
    let inner_pattern = &diffs[..n0 - 1];
    let mut passes = 1;
    while (passes + 1) * n0 <= len
        && (0..n0 - 1).all(|j| diffs[passes * n0 + j] == inner_pattern[j])
    {
        passes += 1;
    }
    let inner =
        fit_level(inner_pattern, n0, mask).expect("a constant-diff run always fits one level");
    let starts: Vec<u32> = (0..passes).map(|k| seq[k * n0]).collect();
    for c in (1..=passes).rev() {
        let start_diffs: Vec<u32> = starts[..c]
            .windows(2)
            .map(|w| w[1].wrapping_sub(w[0]) & mask)
            .collect();
        let Some(outer) = fit_level(&start_diffs, c, mask) else {
            continue;
        };
        let Some(spec) = assemble(seq[0], inner, outer, addr_width) else {
            continue;
        };
        let covered = c * n0;
        if verifies(&spec, &seq[..covered]) {
            return Ok(AffineFit {
                spec,
                covered,
                residual: seq[covered..].to_vec(),
            });
        }
    }

    // Last resort: cover the first address alone. Always verifies.
    let spec = assemble(seq[0], LevelShape::unit(), LevelShape::unit(), addr_width)
        .expect("unit spec always assembles");
    Ok(AffineFit {
        spec,
        covered: 1,
        residual: seq[1..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_exec::Prng;
    use adgen_seq::{workloads, ArrayShape};

    fn assert_exact(seq: &[u32]) -> AffineFit {
        let fit = fit_sequence(seq).expect("fit");
        assert!(
            fit.is_exact(),
            "expected exact fit, covered {}/{} (spec {:?})",
            fit.covered,
            seq.len(),
            fit.spec
        );
        assert_eq!(fit.reconstruct(), seq, "reconstruction");
        fit
    }

    #[test]
    fn raster_fits_as_a_single_ramp() {
        let seq = workloads::raster(ArrayShape::new(8, 8));
        let fit = assert_exact(seq.as_slice());
        assert_eq!(fit.spec.inner.incr, 1);
        assert_eq!(fit.spec.outer, AffineLevel::unit());
    }

    #[test]
    fn transpose_fits_two_levels() {
        // 0 4 8 12 1 5 9 13 ... : inner stride 4, outer correction.
        let seq = workloads::transpose_scan(ArrayShape::new(4, 4));
        let fit = assert_exact(seq.as_slice());
        assert!(fit.spec.inner.period > 1 || fit.spec.outer.period > 1);
    }

    #[test]
    fn motion_estimation_read_fits_exactly() {
        // The paper's Fig. 7 motion-estimation workload; the
        // acceptance bar for this family.
        let seq = workloads::motion_est_read(ArrayShape::new(8, 8), 2, 2, 0);
        assert_exact(seq.as_slice());
    }

    #[test]
    fn block_scan_fits_exactly() {
        let seq = workloads::block_scan(ArrayShape::new(8, 8), 4, 4);
        let fit = fit_sequence(seq.as_slice()).expect("fit");
        assert_eq!(fit.reconstruct(), seq.as_slice());
    }

    #[test]
    fn noise_tail_lands_in_the_residual() {
        let mut seq = workloads::raster(ArrayShape::new(4, 4)).as_slice().to_vec();
        seq.extend_from_slice(&[3, 17, 2]);
        let fit = fit_sequence(&seq).expect("fit");
        assert!(!fit.is_exact());
        assert!(fit.covered >= 16, "the ramp prefix stays affine");
        assert_eq!(fit.reconstruct(), seq);
    }

    #[test]
    fn single_address_fits_trivially() {
        let fit = fit_sequence(&[13]).expect("fit");
        assert!(fit.is_exact());
        assert_eq!(fit.spec.emitted_stream(), vec![13]);
    }

    #[test]
    fn empty_and_oversized_inputs_are_rejected() {
        assert_eq!(fit_sequence(&[]), Err(AffineError::EmptySequence));
        let long = vec![0u32; MAX_MAP_LEN + 1];
        assert!(matches!(
            fit_sequence(&long),
            Err(AffineError::SequenceTooLong { .. })
        ));
    }

    /// The roundtrip property: for random valid specs, fitting the
    /// emitted stream reconstructs it exactly — and fitting arbitrary
    /// random sequences reconstructs them too (via the residual).
    #[test]
    fn property_fit_reconstructs_random_spec_streams() {
        let mut rng = Prng::for_stream(0xaff1_4e57, 0);
        for case in 0..60 {
            let level = |rng: &mut Prng, mask: u32| AffineLevel {
                start: (rng.next_u64() as u32) & mask,
                iterations: 1 + (rng.next_u64() % 4) as u32,
                period: 1 + (rng.next_u64() % 4) as u32,
                duty: 0, // fixed below
                shift: (rng.next_u64() as u32) & mask & 7,
                incr: (rng.next_u64() as u32) & mask & 7,
            };
            let addr_width = 4 + (rng.next_u64() % 5) as u32;
            let mask = mask_for(addr_width);
            let mut inner = level(&mut rng, mask);
            inner.duty = 1 + (rng.next_u64() % u64::from(inner.period)) as u32;
            let mut outer = level(&mut rng, mask);
            outer.duty = 1 + (rng.next_u64() % u64::from(outer.period)) as u32;
            let spec = AffineSpec {
                addr_width,
                cnt_width: 4,
                inner,
                outer,
            };
            spec.validate()
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
            let stream = spec.emitted_stream();
            let fit = fit_sequence(&stream).expect("fit");
            assert_eq!(fit.reconstruct(), stream, "case {case}: spec {spec:?}");
        }
    }

    #[test]
    fn property_fit_reconstructs_arbitrary_sequences() {
        let mut rng = Prng::for_stream(0xaff1_4e58, 0);
        for case in 0..80 {
            let len = 1 + (rng.next_u64() % 40) as usize;
            let seq: Vec<u32> = (0..len).map(|_| (rng.next_u64() % 97) as u32).collect();
            let fit = fit_sequence(&seq).expect("fit");
            assert!(fit.covered >= 1);
            assert_eq!(fit.covered + fit.residual.len(), seq.len());
            assert_eq!(fit.reconstruct(), seq, "case {case}");
        }
    }

    #[test]
    fn fit_is_deterministic() {
        let seq = workloads::motion_est_read(ArrayShape::new(8, 8), 2, 2, 0);
        assert_eq!(fit_sequence(seq.as_slice()), fit_sequence(seq.as_slice()));
    }
}
