//! Error type shared by the affine spec, mapper and elaborator.

use adgen_netlist::NetlistError;
use adgen_synth::SynthError;

/// Everything that can go wrong while specifying, fitting or
/// elaborating an affine address generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AffineError {
    /// The spec violates a structural constraint (zero period, duty
    /// above period, a field wider than its register, …).
    InvalidSpec(String),
    /// The mapper was handed an empty sequence.
    EmptySequence,
    /// The mapper was handed a sequence longer than [`MAX_MAP_LEN`]
    /// (the bound keeps divisor search and verification replay
    /// linear-ish).
    ///
    /// [`MAX_MAP_LEN`]: crate::mapper::MAX_MAP_LEN
    SequenceTooLong { len: usize, max: usize },
    /// Netlist construction failed.
    Netlist(NetlistError),
    /// A structural building block (counter, adder, comparator)
    /// rejected its parameters.
    Synth(SynthError),
}

impl std::fmt::Display for AffineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AffineError::InvalidSpec(why) => write!(f, "invalid affine spec: {why}"),
            AffineError::EmptySequence => write!(f, "cannot fit an empty sequence"),
            AffineError::SequenceTooLong { len, max } => {
                write!(
                    f,
                    "sequence of {len} addresses exceeds the mapper cap {max}"
                )
            }
            AffineError::Netlist(e) => write!(f, "netlist error: {e}"),
            AffineError::Synth(e) => write!(f, "synthesis error: {e}"),
        }
    }
}

impl std::error::Error for AffineError {}

impl From<NetlistError> for AffineError {
    fn from(e: NetlistError) -> Self {
        AffineError::Netlist(e)
    }
}

impl From<SynthError> for AffineError {
    fn from(e: SynthError) -> Self {
        AffineError::Synth(e)
    }
}
