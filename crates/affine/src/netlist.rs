//! Structural elaboration of the programmable affine AGU.
//!
//! ## Interface
//!
//! Inputs, in declaration order: `reset` (the IR's implicit global
//! reset at index 0), `next` (advance one tick), `prog_en` (serial
//! programming enable; freezes the datapath), `prog_bit` (serial
//! programming data). Outputs: the `addr_width` address bits LSB
//! first, then `mem_en` (this tick is inside both duty windows),
//! `done` (this tick is the last of the program) and `ready`
//! (`!prog_en` — the handshake bit a consumer polls).
//!
//! ## Programming registers with baked-in defaults
//!
//! The twelve parameter fields sit on one serial shift chain clocked
//! by `prog_en`. Each chain flip-flop stores its logical value XOR
//! the corresponding bit of the *default program* the circuit was
//! elaborated with: a plain reset-to-0 `Dffr` then makes `reset`
//! restore the default program with no set-input cells, and the
//! XOR is free — reads go through an inverter exactly where the
//! default bit is 1, and chain links invert exactly where adjacent
//! default bits differ. The same netlist therefore works both ways:
//! freshly reset inside a fault campaign (whose stimulus never
//! raises `prog_en`) it runs the default program; driven over the
//! chain it runs whatever was shifted in.
//!
//! ## Datapath
//!
//! Two levels, each a pair of programmable-modulus counters
//! (within-pass position and pass index; wrap detection compares the
//! incremented value against the period/iterations registers) and a
//! per-level offset accumulator that adds `incr` each tick — plus
//! `shift` on pass-wrap ticks — and clears when its level's program
//! completes. The outer level is enabled once per completed inner
//! program, and the presented address is the four-term sum
//! `inner.start + outer.start + acc_inner + acc_outer`.

use adgen_netlist::{CellKind, Logic, NetId, Netlist, SimControl};
use adgen_synth::fsm::MAX_FANOUT;
use adgen_synth::mapgen::{build_adder, build_mux_word};
use adgen_synth::techmap::{and_tree, insert_fanout_buffers};

use crate::error::AffineError;
use crate::spec::AffineSpec;

/// Decoded primary outputs of the AGU at one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineOutputs {
    /// The presented address.
    pub addr: u32,
    /// Inside both duty windows — the memory would be enabled.
    pub mem_en: bool,
    /// Last tick of the whole program.
    pub done: bool,
    /// Not being programmed.
    pub ready: bool,
}

/// The elaborated gate-level AGU.
#[derive(Debug, Clone)]
pub struct AffineAgNetlist {
    /// The netlist; drive it with any of the three simulation
    /// engines, STA, or the Verilog/VCD emitters.
    pub netlist: Netlist,
    /// The default (reset) program baked into the chain.
    pub spec: AffineSpec,
    /// Address output nets, LSB first.
    pub addr_bits: Vec<NetId>,
    /// `mem_en` output net.
    pub mem_en: NetId,
    /// `done` output net.
    pub done: NetId,
    /// `ready` output net.
    pub ready: NetId,
    /// Programming-chain flip-flop outputs, chain order. Their count
    /// is the programming-register area premium in flip-flops.
    pub config_nets: Vec<NetId>,
    /// Datapath state (counter and accumulator) flip-flop outputs —
    /// the SEU target pool for resilience campaigns.
    pub state_nets: Vec<NetId>,
}

/// Serializes a spec into chain order: per level (inner first)
/// `start`, `incr`, `shift` at `addr_width` bits then `iterations`,
/// `period`, `duty` at `cnt_width` bits, each field LSB first.
fn serialize(spec: &AffineSpec) -> Vec<bool> {
    let mut bits = Vec::with_capacity(chain_len(spec.addr_width, spec.cnt_width));
    let mut push = |value: u32, width: u32| {
        for i in 0..width {
            bits.push(value >> i & 1 == 1);
        }
    };
    for level in [&spec.inner, &spec.outer] {
        push(level.start, spec.addr_width);
        push(level.incr, spec.addr_width);
        push(level.shift, spec.addr_width);
        push(level.iterations, spec.cnt_width);
        push(level.period, spec.cnt_width);
        push(level.duty, spec.cnt_width);
    }
    bits
}

/// Length of the programming chain for the given register widths.
pub fn chain_len(addr_width: u32, cnt_width: u32) -> usize {
    (2 * (3 * addr_width + 3 * cnt_width)) as usize
}

/// The stimulus vector for one reset cycle.
pub fn reset_inputs() -> Vec<bool> {
    vec![true, false, false, false]
}

/// The stimulus vector for one running tick (`next` high).
pub fn tick_inputs() -> Vec<bool> {
    vec![false, true, false, false]
}

/// The stimulus vector for one programming shift of `bit`.
pub fn program_inputs(bit: bool) -> Vec<bool> {
    vec![false, false, true, bit]
}

/// One programmable register word under construction: logical-value
/// read nets, LSB first.
struct Words {
    start: Vec<NetId>,
    incr: Vec<NetId>,
    shift: Vec<NetId>,
    iterations: Vec<NetId>,
    period: Vec<NetId>,
    duty: Vec<NetId>,
}

impl AffineAgNetlist {
    /// Elaborates the AGU with `spec` baked in as the reset-default
    /// program.
    ///
    /// # Errors
    ///
    /// Rejects invalid specs and propagates netlist construction
    /// failures.
    pub fn elaborate(spec: &AffineSpec) -> Result<Self, AffineError> {
        spec.validate()?;
        let w = spec.addr_width as usize;
        let cw = spec.cnt_width as usize;
        let mut n = Netlist::new("affine_ag");
        let rst = n.inputs()[0];
        let next = n.add_input("next");
        let prog_en = n.add_input("prog_en");
        let prog_bit = n.add_input("prog_bit");

        // --- programming chain -------------------------------------
        let defaults = serialize(spec);
        let mut config_nets = Vec::with_capacity(defaults.len());
        let mut reads = Vec::with_capacity(defaults.len());
        let mut prev: Option<(NetId, bool)> = None;
        for (i, &default_bit) in defaults.iter().enumerate() {
            let (link_raw, link_default) = match prev {
                None => (prog_bit, false),
                Some((q, d)) => (q, d),
            };
            // The stored value is logical XOR default, so the chain
            // link re-encodes between adjacent defaults and the read
            // decodes back to the logical value.
            let chain_in = if link_default != default_bit {
                n.gate(CellKind::Inv, &[link_raw])?
            } else {
                link_raw
            };
            let q = n.add_net(format!("cfg_q{i}"));
            let d = n.gate(CellKind::Mux2, &[q, chain_in, prog_en])?;
            n.add_instance(format!("u_cfg{i}"), CellKind::Dffr, &[d, rst], &[q])?;
            let read = if default_bit {
                n.gate(CellKind::Inv, &[q])?
            } else {
                q
            };
            config_nets.push(q);
            reads.push(read);
            prev = Some((q, default_bit));
        }
        let mut cursor = reads.into_iter();
        let mut take = |count: usize| -> Vec<NetId> { cursor.by_ref().take(count).collect() };
        let mut level_words = || -> Words {
            Words {
                start: take(w),
                incr: take(w),
                shift: take(w),
                iterations: take(cw),
                period: take(cw),
                duty: take(cw),
            }
        };
        let inner = level_words();
        let outer = level_words();

        // --- enables and counters ----------------------------------
        let mut state_nets = Vec::new();
        let not_prog = n.gate(CellKind::Inv, &[prog_en])?;
        let tick = n.gate(CellKind::And2, &[next, not_prog])?;

        let (pa_q, last_a) =
            mod_counter(&mut n, cw, tick, &inner.period, rst, "pa", &mut state_nets)?;
        let tick_last_a = n.gate(CellKind::And2, &[tick, last_a])?;
        let (_ita_q, last_iter_a) = mod_counter(
            &mut n,
            cw,
            tick_last_a,
            &inner.iterations,
            rst,
            "ita",
            &mut state_nets,
        )?;
        let pass_a_end = n.gate(CellKind::And2, &[last_a, last_iter_a])?;
        let tick_pass_a = n.gate(CellKind::And2, &[tick, pass_a_end])?;
        let (pb_q, last_b) = mod_counter(
            &mut n,
            cw,
            tick_pass_a,
            &outer.period,
            rst,
            "pb",
            &mut state_nets,
        )?;
        let tick_last_b = n.gate(CellKind::And2, &[tick_pass_a, last_b])?;
        let (_itb_q, last_iter_b) = mod_counter(
            &mut n,
            cw,
            tick_last_b,
            &outer.iterations,
            rst,
            "itb",
            &mut state_nets,
        )?;
        let prog_end = n.gate(CellKind::And3, &[pass_a_end, last_b, last_iter_b])?;

        // --- offset accumulators -----------------------------------
        let sum_as = build_adder(&mut n, &inner.incr, &inner.shift)?;
        let delta_a = build_mux_word(&mut n, &inner.incr, &sum_as, last_a)?;
        let acc_a = accumulator(
            &mut n,
            tick,
            &delta_a,
            pass_a_end,
            rst,
            "acca",
            &mut state_nets,
        )?;
        let sum_bs = build_adder(&mut n, &outer.incr, &outer.shift)?;
        let delta_b = build_mux_word(&mut n, &outer.incr, &sum_bs, last_b)?;
        let acc_b = accumulator(
            &mut n,
            tick_pass_a,
            &delta_b,
            prog_end,
            rst,
            "accb",
            &mut state_nets,
        )?;

        // --- address and handshake ---------------------------------
        let base = build_adder(&mut n, &inner.start, &outer.start)?;
        let off = build_adder(&mut n, &acc_a, &acc_b)?;
        let addr_bits = build_adder(&mut n, &base, &off)?;
        let in_duty_a = less_than(&mut n, &pa_q, &inner.duty)?;
        let in_duty_b = less_than(&mut n, &pb_q, &outer.duty)?;
        let mem_en = n.gate(CellKind::And2, &[in_duty_a, in_duty_b])?;
        let ready = n.gate(CellKind::Inv, &[prog_en])?;

        for &bit in &addr_bits {
            n.add_output(bit);
        }
        n.add_output(mem_en);
        n.add_output(prog_end);
        n.add_output(ready);

        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate()?;
        Ok(AffineAgNetlist {
            netlist: n,
            spec: *spec,
            addr_bits,
            mem_en,
            done: prog_end,
            ready,
            config_nets,
            state_nets,
        })
    }

    /// Flip-flops spent on the programming chain — the area premium
    /// the sequence-specialized generators do not pay.
    pub fn config_bits(&self) -> usize {
        self.config_nets.len()
    }

    /// The serial stream that programs `spec` into this circuit, in
    /// presentation order (first element goes on `prog_bit` first).
    ///
    /// # Errors
    ///
    /// `spec` must validate and use this circuit's register widths.
    pub fn program_bits(&self, spec: &AffineSpec) -> Result<Vec<bool>, AffineError> {
        spec.validate()?;
        if spec.addr_width != self.spec.addr_width || spec.cnt_width != self.spec.cnt_width {
            return Err(AffineError::InvalidSpec(format!(
                "program widths {}x{} do not match the circuit's {}x{}",
                spec.addr_width, spec.cnt_width, self.spec.addr_width, self.spec.cnt_width
            )));
        }
        // chain[0] is fed directly by prog_bit, so the bit destined
        // for the far end of the chain must be presented first.
        let mut bits = serialize(spec);
        bits.reverse();
        Ok(bits)
    }

    /// Applies one reset cycle (restores the default program and
    /// zeroes the datapath).
    ///
    /// # Errors
    ///
    /// Propagates simulator stimulus errors.
    pub fn reset_sim<S: SimControl + ?Sized>(&self, sim: &mut S) -> Result<(), AffineError> {
        sim.step_bools(&reset_inputs())?;
        Ok(())
    }

    /// Shifts `spec` in over the programming chain. The datapath is
    /// frozen while `prog_en` is high, so run this right after
    /// [`reset_sim`](Self::reset_sim).
    ///
    /// # Errors
    ///
    /// Propagates width mismatches and stimulus errors.
    pub fn program<S: SimControl + ?Sized>(
        &self,
        sim: &mut S,
        spec: &AffineSpec,
    ) -> Result<(), AffineError> {
        for bit in self.program_bits(spec)? {
            sim.step_bools(&program_inputs(bit))?;
        }
        Ok(())
    }

    /// Decodes the primary outputs (as returned by
    /// `SimControl::output_values`); any `X` bit reads as 0.
    pub fn read_outputs(&self, values: &[Logic]) -> AffineOutputs {
        let w = self.spec.addr_width as usize;
        let bit = |v: Logic| v == Logic::One;
        let mut addr = 0u32;
        for (i, &v) in values.iter().enumerate().take(w) {
            if bit(v) {
                addr |= 1 << i;
            }
        }
        AffineOutputs {
            addr,
            mem_en: bit(values[w]),
            done: bit(values[w + 1]),
            ready: bit(values[w + 2]),
        }
    }

    /// Runs the circuit and collects the next `count` *emitted*
    /// addresses (ticks with `mem_en` high). Follows the engines'
    /// read-after-step convention: outputs observed after a step show
    /// the state *entering* that step, so the first tick after a
    /// reset (or after programming) presents the program's first
    /// position. Gives up after `max_ticks` clock ticks.
    ///
    /// # Errors
    ///
    /// Propagates stimulus errors; returns `InvalidSpec` if the
    /// tick budget runs out (a circuit whose program never opens its
    /// duty window).
    pub fn collect_emitted<S: SimControl + ?Sized>(
        &self,
        sim: &mut S,
        count: usize,
        max_ticks: u64,
    ) -> Result<Vec<u32>, AffineError> {
        let mut out = Vec::with_capacity(count);
        let mut ticks = 0u64;
        while out.len() < count {
            if ticks >= max_ticks {
                return Err(AffineError::InvalidSpec(format!(
                    "collected only {} of {count} addresses in {max_ticks} ticks",
                    out.len()
                )));
            }
            sim.step_bools(&tick_inputs())?;
            ticks += 1;
            let view = self.read_outputs(&sim.output_values());
            if view.mem_en {
                out.push(view.addr);
            }
        }
        Ok(out)
    }
}

/// A `width`-bit counter that steps on `en` and wraps to zero when
/// the incremented value equals the programmable `limit` word.
/// Returns the count word and the combinational wrap predicate
/// (`count + 1 == limit`, valid regardless of `en`).
fn mod_counter(
    n: &mut Netlist,
    width: usize,
    en: NetId,
    limit: &[NetId],
    rst: NetId,
    prefix: &str,
    state_nets: &mut Vec<NetId>,
) -> Result<(Vec<NetId>, NetId), AffineError> {
    let q: Vec<NetId> = (0..width)
        .map(|i| n.add_net(format!("{prefix}_q{i}")))
        .collect();
    // Incrementer: inc = q + 1 with a ripple carry.
    let mut inc = Vec::with_capacity(width);
    let mut carry: Option<NetId> = None;
    for &bit in &q {
        match carry {
            None => {
                inc.push(n.gate(CellKind::Inv, &[bit])?);
                carry = Some(bit);
            }
            Some(c) => {
                inc.push(n.gate(CellKind::Xor2, &[bit, c])?);
                carry = Some(n.gate(CellKind::And2, &[bit, c])?);
            }
        }
    }
    let last = equality(n, &inc, limit)?;
    let not_last = n.gate(CellKind::Inv, &[last])?;
    for (i, (&qb, &ib)) in q.iter().zip(&inc).enumerate() {
        let d = n.gate(CellKind::And2, &[ib, not_last])?;
        n.add_instance(
            format!("u_{prefix}{i}"),
            CellKind::Dffre,
            &[d, en, rst],
            &[qb],
        )?;
    }
    state_nets.extend_from_slice(&q);
    Ok((q, last))
}

/// A `delta.len()`-bit accumulator: on `en`, loads `acc + delta`, or
/// zero when `clear` is high.
fn accumulator(
    n: &mut Netlist,
    en: NetId,
    delta: &[NetId],
    clear: NetId,
    rst: NetId,
    prefix: &str,
    state_nets: &mut Vec<NetId>,
) -> Result<Vec<NetId>, AffineError> {
    let q: Vec<NetId> = (0..delta.len())
        .map(|i| n.add_net(format!("{prefix}_q{i}")))
        .collect();
    let sum = build_adder(n, &q, delta)?;
    let not_clear = n.gate(CellKind::Inv, &[clear])?;
    for (i, (&qb, &sb)) in q.iter().zip(&sum).enumerate() {
        let d = n.gate(CellKind::And2, &[sb, not_clear])?;
        n.add_instance(
            format!("u_{prefix}{i}"),
            CellKind::Dffre,
            &[d, en, rst],
            &[qb],
        )?;
    }
    state_nets.extend_from_slice(&q);
    Ok(q)
}

/// Net-against-net equality: XNOR each bit pair, AND the column.
fn equality(n: &mut Netlist, a: &[NetId], b: &[NetId]) -> Result<NetId, AffineError> {
    debug_assert_eq!(a.len(), b.len());
    let mut bits = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        bits.push(n.gate(CellKind::Xnor2, &[x, y])?);
    }
    Ok(and_tree(n, &bits)?)
}

/// Unsigned `a < b` via the ripple borrow of `a - b`.
fn less_than(n: &mut Netlist, a: &[NetId], b: &[NetId]) -> Result<NetId, AffineError> {
    debug_assert_eq!(a.len(), b.len());
    let mut borrow: Option<NetId> = None;
    for (&x, &y) in a.iter().zip(b) {
        let nx = n.gate(CellKind::Inv, &[x])?;
        let gen = n.gate(CellKind::And2, &[nx, y])?;
        borrow = Some(match borrow {
            None => gen,
            Some(bin) => {
                let prop = n.gate(CellKind::Or2, &[nx, y])?;
                let chain = n.gate(CellKind::And2, &[prop, bin])?;
                n.gate(CellKind::Or2, &[gen, chain])?
            }
        });
    }
    Ok(borrow.expect("nonempty comparator"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AffineLevel, AffineSimulator};
    use adgen_netlist::{
        AreaReport, EventSimulator, Library, Simulator, SlicedSimulator, TimingAnalysis,
    };
    use adgen_seq::AddressGenerator;

    fn demo_spec() -> AffineSpec {
        AffineSpec {
            addr_width: 5,
            cnt_width: 3,
            inner: AffineLevel {
                start: 2,
                iterations: 3,
                period: 2,
                duty: 2,
                shift: 3,
                incr: 1,
            },
            outer: AffineLevel {
                start: 0,
                iterations: 2,
                period: 2,
                duty: 1,
                shift: 30, // -2 mod 32
                incr: 4,
            },
        }
    }

    #[test]
    fn default_program_replays_the_reference_stream() {
        let spec = demo_spec();
        let design = AffineAgNetlist::elaborate(&spec).expect("elaborate");
        let expected = spec.emitted_stream();
        let mut sim = Simulator::new(&design.netlist).expect("sim");
        design.reset_sim(&mut sim).unwrap();
        let got = design
            .collect_emitted(&mut sim, expected.len() * 2, spec.program_ticks() * 2 + 4)
            .expect("collect");
        assert_eq!(&got[..expected.len()], &expected[..]);
        assert_eq!(&got[expected.len()..], &expected[..], "wraps cyclically");
    }

    #[test]
    fn all_three_engines_agree_with_the_behavioural_model() {
        let spec = demo_spec();
        let design = AffineAgNetlist::elaborate(&spec).expect("elaborate");
        let mut reference = AffineSimulator::new(spec).unwrap();
        let expected = reference.collect_sequence(spec.emitted_len() + 3);

        let mut lev = Simulator::new(&design.netlist).unwrap();
        let mut evt = EventSimulator::new(&design.netlist).unwrap();
        let mut sliced = SlicedSimulator::new(&design.netlist, 64).unwrap();
        for sim in [
            &mut lev as &mut dyn SimControl,
            &mut evt as &mut dyn SimControl,
            &mut sliced as &mut dyn SimControl,
        ] {
            design.reset_sim(sim).unwrap();
            let got = design
                .collect_emitted(sim, expected.len(), spec.program_ticks() * 4)
                .unwrap();
            assert_eq!(got, expected.as_slice());
        }
    }

    #[test]
    fn reprogramming_over_the_chain_replaces_the_default() {
        // Elaborate with the neutral program, shift in the demo
        // program, and expect the demo stream.
        let neutral = AffineSpec::trivial(5, 3);
        let design = AffineAgNetlist::elaborate(&neutral).expect("elaborate");
        let target = demo_spec();
        let expected = target.emitted_stream();
        let mut sim = Simulator::new(&design.netlist).expect("sim");
        design.reset_sim(&mut sim).unwrap();
        design.program(&mut sim, &target).unwrap();
        let got = design
            .collect_emitted(&mut sim, expected.len(), target.program_ticks() * 2 + 4)
            .expect("collect");
        assert_eq!(got, expected);

        // A reset afterwards restores the neutral default program.
        design.reset_sim(&mut sim).unwrap();
        let back = design.collect_emitted(&mut sim, 3, 8).unwrap();
        assert_eq!(back, vec![0, 0, 0]);
    }

    #[test]
    fn done_and_ready_handshake() {
        let spec = demo_spec();
        let design = AffineAgNetlist::elaborate(&spec).expect("elaborate");
        let mut sim = Simulator::new(&design.netlist).unwrap();
        design.reset_sim(&mut sim).unwrap();
        let total = spec.program_ticks();
        for t in 0..total {
            sim.step_bools(&tick_inputs()).unwrap();
            let view = design.read_outputs(&sim.output_values());
            assert!(view.ready, "running: ready high");
            assert_eq!(view.done, t == total - 1, "tick {t}");
        }
        // ready drops while programming.
        sim.step_bools(&program_inputs(false)).unwrap();
        let view = design.read_outputs(&sim.output_values());
        assert!(!view.ready);
    }

    #[test]
    fn sta_and_area_see_the_programming_premium() {
        let spec = demo_spec();
        let design = AffineAgNetlist::elaborate(&spec).expect("elaborate");
        let lib = Library::vcl018();
        let timing = TimingAnalysis::run(&design.netlist, &lib).expect("sta");
        assert!(timing.critical_path_ns() > 0.0);
        let area = AreaReport::of(&design.netlist, &lib);
        assert!(area.total() > 0.0);
        assert_eq!(
            design.config_bits(),
            chain_len(spec.addr_width, spec.cnt_width)
        );
        assert!(
            design.netlist.num_flip_flops() >= design.config_bits(),
            "the chain is part of the circuit"
        );
    }

    #[test]
    fn program_bits_round_trip_the_serialization() {
        let design = AffineAgNetlist::elaborate(&AffineSpec::trivial(5, 3)).unwrap();
        let bits = design.program_bits(&demo_spec()).unwrap();
        assert_eq!(bits.len(), chain_len(5, 3));
        // Mismatched widths are rejected.
        assert!(design.program_bits(&AffineSpec::trivial(6, 3)).is_err());
    }
}
