//! Runtime-programmable affine address generation (the fourth
//! generator family).
//!
//! The paper's three generators — FSM, SRAG, CntAG — are all
//! *sequence-specialized*: change the access pattern and you
//! resynthesize the circuit. Production reconfigurable fabrics take
//! the opposite trade: a fixed, runtime-programmable nested-loop
//! address generator in the style of IObundle Versat's
//! `xaddrgen`/`xaddrgen2`. This crate supplies that family:
//!
//! * [`spec`] — the programming model: two chained affine levels,
//!   each with `start`/`iterations`/`period`/`duty`/`shift`/`incr`
//!   parameters, a closed-form reference stream, and a behavioural
//!   [`AffineSimulator`] implementing the workspace-wide
//!   `AddressGenerator` trait.
//! * [`mapper`] — [`fit_sequence`]: fits an arbitrary 1-D address
//!   sequence into affine parameters exactly when possible, otherwise
//!   returns the longest affine prefix plus the *residual*
//!   subsequence that still needs an FSM (the hybrid affine+FSM
//!   generator). Every fit is verified by replay before it is
//!   returned, so `affine part + residual == input` holds by
//!   construction.
//! * [`netlist`] — [`AffineAgNetlist::elaborate`]: a structural
//!   gate-level AGU through the shared netlist IR. The programming
//!   registers sit on a serial `prog_en`/`prog_bit` shift chain and
//!   reset to a baked-in default program (XOR-default storage), so
//!   the same circuit works both freshly reset inside a fault
//!   campaign and reprogrammed over the chain.
//!
//! The three simulation engines (levelized, event-driven, bit-sliced)
//! and the STA/area reports all drive the emitted netlist unchanged.

pub mod error;
pub mod mapper;
pub mod netlist;
pub mod spec;

pub use error::AffineError;
pub use mapper::{fit_sequence, AffineFit, MAX_MAP_LEN};
pub use netlist::{AffineAgNetlist, AffineOutputs};
pub use spec::{AffineLevel, AffineSimulator, AffineSpec, MAX_ADDR_WIDTH, MAX_CNT_WIDTH};
