//! End-to-end schema check of the `repro` observability flags: the
//! real binary, run with `--jobs 2 --trace t.json`, must produce a
//! Chrome trace-event file the in-tree validator accepts, and its
//! `OBS_REDACT=1 --metrics` profile must be byte-identical across
//! worker counts (the jobs-invariance acceptance criterion at the
//! binary level).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use adgen_obs::json::validate_chrome_trace;

/// A scratch directory for the spawned binary's artefacts
/// (`BENCH_repro.json`, `results/`), so test runs leave the checkout
/// clean.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adgen-trace-schema-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_repro(dir: &Path, args: &[&str], redact: bool) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(args).current_dir(dir);
    if redact {
        cmd.env("OBS_REDACT", "1");
    }
    let output = cmd.output().expect("repro spawns");
    assert!(
        output.status.success(),
        "repro {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

#[test]
fn repro_trace_file_passes_schema_check() {
    let dir = scratch_dir("trace");
    let trace_path = dir.join("t.json");
    run_repro(
        &dir,
        &[
            "--jobs",
            "2",
            "--trace",
            trace_path.to_str().unwrap(),
            "fig3",
        ],
        false,
    );

    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    validate_chrome_trace(&text).expect("repro trace passes the schema check");
    // The span hierarchy made it into the file: the experiment root,
    // the fan-out, and the per-item instrumentation beneath it.
    for name in ["bench.fig3_4", "par_map", "par_map.item", "sta.run"] {
        assert!(
            text.contains(&format!("\"name\":\"{name}\"")),
            "trace is missing span {name}"
        );
    }
    // The bench record rides along, with the metrics block absent
    // (no --metrics flag) but the file still valid.
    let bench = std::fs::read_to_string(dir.join("BENCH_repro.json")).expect("bench record");
    adgen_obs::json::parse(&bench).expect("BENCH_repro.json parses");
}

#[test]
fn redacted_profile_is_jobs_invariant_end_to_end() {
    let profile_of = |jobs: &str, tag: &str| -> String {
        let dir = scratch_dir(tag);
        let out = run_repro(&dir, &["--jobs", jobs, "--metrics", "fig3"], true);
        let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
        let start = stdout
            .find("# obs profile")
            .expect("profile report printed under --metrics");
        stdout[start..].to_string()
    };
    assert_eq!(
        profile_of("1", "j1"),
        profile_of("4", "j4"),
        "OBS_REDACT=1 profile must be byte-identical across --jobs"
    );
}
