//! The parallel experiment engine must be a pure speedup: for every
//! sweep, the rows computed with `jobs > 1` (or `0` = all cores) must
//! compare exactly equal — bit-identical floats, same order — to the
//! serial `jobs = 1` rows.

use adgen_bench::experiments::{
    ablation, fig3_4, fig8_9_10, interconnect, power_study, sharing, table3,
};

#[test]
fn fig3_4_rows_are_jobs_invariant() {
    let serial = fig3_4(&[8, 16, 32], 1);
    for jobs in [0, 2, 5] {
        assert_eq!(fig3_4(&[8, 16, 32], jobs), serial, "jobs = {jobs}");
    }
}

#[test]
fn fig8_9_10_rows_are_jobs_invariant() {
    let serial = fig8_9_10(&[16, 32], 1);
    for jobs in [0, 3] {
        assert_eq!(fig8_9_10(&[16, 32], jobs), serial, "jobs = {jobs}");
    }
}

#[test]
fn table3_rows_are_jobs_invariant() {
    let serial = table3(&[16, 32], 1);
    assert_eq!(table3(&[16, 32], 4), serial);
}

#[test]
fn power_rows_are_jobs_invariant() {
    let serial = power_study(&[16], 1);
    assert_eq!(power_study(&[16], 3), serial);
}

#[test]
fn ablation_rows_are_jobs_invariant() {
    let serial = ablation(&[16], 1);
    assert_eq!(ablation(&[16], 2), serial);
}

#[test]
fn sharing_rows_are_jobs_invariant() {
    let serial = sharing(&[16, 32], 1);
    assert_eq!(sharing(&[16, 32], 2), serial);
}

#[test]
fn interconnect_rows_are_jobs_invariant() {
    let loads = [0.0, 30.0, 120.0];
    let serial = interconnect(&loads, 1);
    assert_eq!(interconnect(&loads, 3), serial);
}
