//! Measurement kernels regenerating every table and figure of the
//! paper's evaluation. The `repro` binary prints them; the std-only
//! `benches/` programs time them; `EXPERIMENTS.md` records
//! paper-vs-measured.

pub mod experiments;
pub mod obs_cli;
pub mod recipe;
pub mod report;
pub mod stopwatch;

pub use recipe::Fig7Recipe;

pub use experiments::{
    ablation, fig3_4, fig8_9_10, interconnect, power_study, sharing, synth_time, table3,
    AblationRow, Fig34Row, Fig8910Row, InterconnectRow, PowerRow, SharingRow, SynthTimeRow,
    Table3Row,
};
