//! `faultcamp` — gate-level fault-injection campaign on the paper's
//! Fig. 7 motion-estimation workload.
//!
//! Three variants of the same address stream are put under the same
//! select-ring fault universe (stuck-at-0/1 on every select line plus
//! seed-reproducible SEUs on the state flip-flops):
//!
//! * `srag-plain`    — the paper's SRAG pair: select lines straight
//!   from flip-flops, no protection;
//! * `srag-hardened` — the self-checking variant: one-hot checker,
//!   `alarm` output, watchdog resync;
//! * `cntag`         — the counter-plus-decoder baseline, whose
//!   decoder structurally remaps every fault to *some* legal select;
//! * `affine`        — the programmable affine AGU fitted to the same
//!   stream, under stuck-ats on its primary outputs plus SEUs over
//!   every flip-flop (datapath *and* configuration chain).
//!
//! ```text
//! cargo run --release -p adgen-bench --bin faultcamp              # 8x8 array
//! cargo run --release -p adgen-bench --bin faultcamp -- --smoke   # 4x4, CI-sized
//! cargo run --release -p adgen-bench --bin faultcamp -- --jobs 4 --seed 7
//! cargo run --release -p adgen-bench --bin faultcamp -- --fault seu@i3#c9
//! ```
//!
//! `--fault TOKEN` replays a single fault against the hardened pair
//! and prints its classification plus the reproduction line — the
//! fuzz-style `SEED=… FAULT=…` repro loop.
//!
//! Campaign runs write `BENCH_fault.json` with per-variant coverage
//! and the area/delay price of hardening. The process exits nonzero
//! if the hardened pair fails to self-detect every effective fault in
//! the universe (its design contract).
//!
//! Observability (see `DESIGN.md` §9): `--trace FILE` writes a Chrome
//! trace-event JSON, `--metrics` prints the deterministic profile and
//! appends a `"metrics"` block to `BENCH_fault.json`. The JSON goes
//! through a drop guard, so a campaign that panics mid-run still
//! flushes the variants that completed, marked `"truncated": true`.

use std::fmt::Write as _;
use std::process::ExitCode;

use adgen_bench::obs_cli::{take_obs_args, ObsJsonSink, RunMeta};
use adgen_bench::Fig7Recipe;

use adgen_affine::{fit_sequence, AffineAgNetlist};
use adgen_bank::netlist::{reset_inputs, tick_inputs};
use adgen_bank::{window_schedule, BankMap, Decomposition, FoldAgNetlist, Interleaver};
use adgen_cntag::netlist::SELECT_LINE_LOAD_FF;
use adgen_cntag::CntAgNetlist;
use adgen_core::composite::Srag2d;
use adgen_exec::Prng;
use adgen_explorer::{agu_fault_universe, compare_resilience};
use adgen_fault::{
    classify, flip_flop_ids, replay, repro_line, run_campaign, sample_seus, CampaignReport,
    CampaignSpec, Classification, Fault,
};
use adgen_netlist::{AreaReport, Library, NetId, Netlist, Simulator, TimingAnalysis};
use adgen_seq::{ArrayShape, Layout};

/// One row of the JSON report.
struct VariantResult {
    name: &'static str,
    report: CampaignReport,
    area: f64,
    delay_ps: f64,
}

/// Single-bank SEU containment tally over the banked generator fleet.
struct BankedContainment {
    n: u32,
    banks: u32,
    window: u32,
    trials: usize,
    /// Trials where the upset bank's address stream diverged.
    disturbed: usize,
    /// Trials where every *other* bank stayed bit-exact to golden.
    contained: usize,
    /// Trials where a non-upset bank diverged — the gate failure.
    breached: usize,
}

/// Everything `BENCH_fault.json` reports, accumulated per variant so
/// a panicking campaign still flushes the finished ones.
struct FaultState {
    shape: ArrayShape,
    cycles: u32,
    seed: u64,
    seu_samples: usize,
    variants: Vec<VariantResult>,
    row: Option<adgen_explorer::ResilienceRow>,
    banked: Option<BankedContainment>,
}

fn main() -> ExitCode {
    let mut jobs = 0usize;
    let mut seed = 2026u64;
    let mut smoke = false;
    let mut fault_token: Option<String> = None;
    let (raw, obs_args) = take_obs_args(std::env::args().skip(1).collect());
    let mut args = raw.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--jobs" | "-j" => jobs = parse_or_die(&mut args, &a),
            "--seed" => seed = parse_or_die(&mut args, &a),
            "--fault" => {
                fault_token = Some(args.next().unwrap_or_else(|| {
                    eprintln!("error: --fault needs a token (e.g. sa0@n12, seu@i3#c9)");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!(
                    "usage: faultcamp [--smoke] [--jobs N] [--seed N] [--fault TOKEN] \
                     [--trace FILE] [--metrics]"
                );
                std::process::exit(2);
            }
        }
    }

    // Fig. 7 configuration: block-matching motion estimation, 2x2
    // macroblocks. The smoke size keeps the full select-line
    // stuck-at list but on the 4x4 array.
    let recipe = Fig7Recipe::new(smoke);
    let shape = recipe.shape;
    let seq = recipe.sequence();
    let cycles = recipe.cycles();
    let seu_samples = recipe.seu_samples;
    let lib = Library::vcl018();

    if let Some(token) = fault_token {
        return replay_single(&seq, shape, &token, cycles, seed);
    }

    println!(
        "faultcamp: motion_est {}x{} mb=2, {} cycles, {} SEU samples, seed {}",
        shape.width(),
        shape.height(),
        cycles,
        seu_samples,
        seed
    );

    // Accumulates per-variant results and owns the obs session;
    // flushes BENCH_fault.json on finish or panic.
    let mut sink = ObsJsonSink::new(
        "BENCH_fault.json",
        obs_args,
        FaultState {
            shape,
            cycles,
            seed,
            seu_samples,
            variants: Vec::new(),
            row: None,
            banked: None,
        },
        render_fault_json,
    );

    let (row, plain_report, hard_report) =
        compare_resilience(&seq, shape, &lib, cycles, seu_samples, seed, jobs)
            .expect("paper workload maps and elaborates");
    sink.state().variants.push(VariantResult {
        name: "srag-plain",
        report: plain_report,
        area: row.plain_area,
        delay_ps: row.plain_delay_ps,
    });
    sink.state().variants.push(VariantResult {
        name: "srag-hardened",
        report: hard_report,
        area: row.hardened_area,
        delay_ps: row.hardened_delay_ps,
    });
    sink.state().row = Some(row.clone());

    let cntag = CntAgNetlist::elaborate(&recipe.cntag_program())
        .expect("paper workload elaborates as CntAG");
    let cnt_lines: Vec<NetId> = cntag
        .row_lines
        .iter()
        .chain(&cntag.col_lines)
        .copied()
        .collect();
    let cnt_report = cntag_campaign(&cntag.netlist, &cnt_lines, cycles, seu_samples, seed, jobs);
    let cnt_timing =
        TimingAnalysis::run_with_output_load(&cntag.netlist, &lib, SELECT_LINE_LOAD_FF)
            .expect("CntAG times");
    sink.state().variants.push(VariantResult {
        name: "cntag",
        report: cnt_report,
        area: AreaReport::of(&cntag.netlist, &lib).total(),
        delay_ps: cnt_timing.critical_path_ps(),
    });

    // The programmable family, fitted to the same stream. Its
    // universe adds the configuration chain to the SEU target list —
    // the resilience price of programmability is part of the result.
    let fit = fit_sequence(seq.as_slice()).expect("paper workload fits affinely");
    assert!(
        fit.is_exact(),
        "motion-est stream must fit without residual"
    );
    let affine = AffineAgNetlist::elaborate(&fit.spec).expect("fitted spec elaborates");
    let aff_faults = agu_fault_universe(&affine.netlist, cycles, seu_samples, seed);
    let aff_spec = CampaignSpec {
        netlist: &affine.netlist,
        cycles,
        alarm_output: None,
    };
    let aff_report = run_campaign(&aff_spec, &aff_faults, jobs);
    // Classification is a pure function of the fault universe: any
    // divergence across worker counts is a scheduling bug, not a
    // hardware property. Cheap to re-check here, where it guards the
    // published JSON.
    assert_eq!(
        aff_report,
        run_campaign(&aff_spec, &aff_faults, if jobs == 1 { 2 } else { 1 }),
        "affine campaign classification must be jobs-invariant"
    );
    let aff_timing = TimingAnalysis::run(&affine.netlist, &lib).expect("affine AGU times");
    sink.state().variants.push(VariantResult {
        name: "affine",
        report: aff_report,
        area: AreaReport::of(&affine.netlist, &lib).total(),
        delay_ps: aff_timing.critical_path_ps(),
    });

    // The banked fleet: one decomposed generator per bank of the
    // contention-free QPP configuration. Each trial upsets one
    // flip-flop of bank 0 mid-replay; the other banks' generators
    // must stay bit-exact — a single-bank SEU is contained by
    // construction, and this campaign pins that down at gate level.
    let banked = banked_containment(recipe.smoke, seu_samples, seed);
    println!(
        "\n  banked ({} banks x window {}): {} single-bank SEU trials, \
         {} disturbed bank 0, {} contained, {} breached",
        banked.banks,
        banked.window,
        banked.trials,
        banked.disturbed,
        banked.contained,
        banked.breached
    );
    let banked_breached = banked.breached;
    sink.state().banked = Some(banked);

    println!();
    for v in &sink.state().variants {
        println!("  {:<14} {}", v.name, v.report.summary());
        println!(
            "  {:<14} area {:.1}, critical path {:.1} ps",
            "", v.area, v.delay_ps
        );
    }
    println!(
        "\n  hardening premium: {:.2}x area, {:.2}x delay",
        row.area_overhead_factor(),
        row.delay_overhead_factor()
    );

    // Design contract of the hardened pair: every effective fault in
    // the select-ring universe is self-detected; none stays silent.
    let hardened_summary = {
        let hardened = &sink.state().variants[1].report;
        (hardened.alarm_coverage_pct() < 100.0 || hardened.silent() > 0).then(|| hardened.summary())
    };
    sink.finish();
    if let Some(summary) = hardened_summary {
        eprintln!("FAIL: hardened SRAG self-detection incomplete: {summary}");
        return ExitCode::FAILURE;
    }
    if banked_breached > 0 {
        eprintln!("FAIL: {banked_breached} single-bank SEU trials leaked into another bank");
        return ExitCode::FAILURE;
    }
    println!("  hardened self-detection: complete");
    println!("  banked SEU containment: complete");
    ExitCode::SUCCESS
}

/// Runs the single-bank SEU containment campaign on the
/// contention-free QPP fleet (sized to match `bankcamp`): elaborates
/// one decomposed fold generator per bank, replays all banks in
/// lockstep, and for each trial upsets one sampled flip-flop of
/// bank 0 at one sampled cycle.
fn banked_containment(smoke: bool, trials: usize, seed: u64) -> BankedContainment {
    let (n, banks) = if smoke { (64, 4) } else { (256, 8) };
    let window = n / banks;
    let map = BankMap::HighBits { banks, window };
    let qpp = Interleaver::qpp_contention_free(n, banks).expect("bankcamp-sized QPP is valid");
    let perm = qpp.permutation().expect("QPP permutes");
    let schedule = window_schedule(&perm, &map, banks).expect("QPP schedules");
    let streams = schedule
        .bank_streams()
        .expect("contention-free QPP is conflict-free");
    let folds: Vec<FoldAgNetlist> = streams
        .iter()
        .map(|s| {
            let d = Decomposition::of(s).expect("QPP local stream decomposes");
            FoldAgNetlist::elaborate(&d).expect("QPP local stream is fully linear")
        })
        .collect();

    // Golden replay, one stream per bank.
    let golden: Vec<Vec<u32>> = folds
        .iter()
        .map(|f| {
            let mut sim = Simulator::new(&f.netlist).expect("fold netlist simulates");
            f.collect(&mut sim, window as usize).expect("golden replay")
        })
        .collect();

    let ffs = flip_flop_ids(&folds[0].netlist);
    let mut rng = Prng::for_stream(seed, 0xbac0);
    let mut disturbed = 0usize;
    let mut contained = 0usize;
    let mut breached = 0usize;
    for _ in 0..trials {
        let ff = ffs[rng.next_range(ffs.len() as u64) as usize];
        let upset_cycle = rng.next_range(u64::from(window)) as usize;
        let mut bank0_diverged = false;
        let mut others_diverged = false;
        for (b, fold) in folds.iter().enumerate() {
            let mut sim = Simulator::new(&fold.netlist).expect("fold netlist simulates");
            sim.step_bools(&reset_inputs()).expect("reset");
            for (cycle, want) in golden[b].iter().enumerate() {
                if b == 0 && cycle == upset_cycle {
                    sim.upset_flip_flop(ff);
                }
                sim.step_bools(&tick_inputs()).expect("tick");
                if fold.read_addr(&sim.output_values()) != *want {
                    if b == 0 {
                        bank0_diverged = true;
                    } else {
                        others_diverged = true;
                    }
                }
            }
        }
        if bank0_diverged {
            disturbed += 1;
        }
        if others_diverged {
            breached += 1;
        } else {
            contained += 1;
        }
    }
    BankedContainment {
        n,
        banks,
        window,
        trials,
        disturbed,
        contained,
        breached,
    }
}

/// The CntAG side of the comparison, under the analogous universe:
/// stuck-ats on every select line plus SEUs sampled over the counter
/// flip-flops. No alarm output exists — detection means a corrupted
/// primary output.
fn cntag_campaign(
    netlist: &Netlist,
    select_lines: &[NetId],
    cycles: u32,
    seu_samples: usize,
    seed: u64,
    jobs: usize,
) -> CampaignReport {
    let mut faults: Vec<Fault> = select_lines
        .iter()
        .flat_map(|&net| {
            [
                Fault::StuckAt { net, value: false },
                Fault::StuckAt { net, value: true },
            ]
        })
        .collect();
    let ffs = flip_flop_ids(netlist);
    faults.extend(sample_seus(
        &ffs,
        cycles.saturating_sub(1).max(1),
        seu_samples,
        seed,
    ));
    let spec = CampaignSpec {
        netlist,
        cycles,
        alarm_output: None,
    };
    run_campaign(&spec, &faults, jobs)
}

/// `--fault TOKEN`: replays one fault against the hardened pair and
/// prints the classification and the reproduction line.
fn replay_single(
    seq: &adgen_seq::AddressSequence,
    shape: ArrayShape,
    token: &str,
    cycles: u32,
    seed: u64,
) -> ExitCode {
    let hardened = Srag2d::map(seq, shape, Layout::RowMajor)
        .expect("paper workload maps")
        .elaborate_hardened()
        .expect("paper workload elaborates");
    let Some(fault) = Fault::parse(token, &hardened.netlist) else {
        eprintln!("error: `{token}` is not a valid fault for this netlist");
        eprintln!("       (forms: sa0@nN, sa1@nN, seu@iN#cC with in-range indices)");
        return ExitCode::from(2);
    };
    let spec = CampaignSpec {
        netlist: &hardened.netlist,
        cycles,
        alarm_output: Some(hardened.alarm_output_index()),
    };
    let golden = replay(&spec, None);
    let faulty = replay(&spec, Some(fault));
    let class = classify(&golden, &faulty, spec.alarm_output);
    println!(
        "fault {} — {}",
        fault.id(),
        fault.describe(&hardened.netlist)
    );
    match class {
        Classification::Detected { cycle, alarm } => println!(
            "  detected at cycle {cycle} ({})",
            if alarm {
                "by alarm"
            } else {
                "output corruption"
            }
        ),
        Classification::Silent => println!("  silent state corruption (latent)"),
        Classification::Benign => println!("  benign: indistinguishable from golden run"),
    }
    println!("  {}", repro_line(seed, &fault));
    ExitCode::SUCCESS
}

fn parse_or_die<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let v = args.next().unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid {flag} value `{v}`");
        std::process::exit(2);
    })
}

/// Hand-rolled machine-readable record, mirroring `BENCH_repro.json`.
/// With `--metrics` a jobs-invariant counter block is appended; a
/// panic mid-run flushes the completed variants with
/// `"truncated": true`.
fn render_fault_json(state: &FaultState, meta: &RunMeta) -> String {
    let FaultState {
        shape,
        cycles,
        seed,
        seu_samples,
        variants,
        row,
        banked,
    } = state;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"workload\": \"motion_est {}x{} mb=2 m=0\",",
        shape.width(),
        shape.height()
    );
    let _ = writeln!(s, "  \"cycles\": {cycles},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"seu_samples\": {seu_samples},");
    if meta.truncated {
        let _ = writeln!(s, "  \"truncated\": true,");
    }
    let _ = writeln!(s, "  \"variants\": [");
    for (i, v) in variants.iter().enumerate() {
        let comma = if i + 1 < variants.len() { "," } else { "" };
        let r = &v.report;
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"faults\": {}, \"detected\": {}, \"alarmed\": {}, \
             \"silent\": {}, \"benign\": {}, \"coverage_pct\": {:.2}, \
             \"alarm_coverage_pct\": {:.2}, \"area\": {:.2}, \"delay_ps\": {:.2}}}{comma}",
            v.name,
            r.outcomes.len(),
            r.detected(),
            r.alarmed(),
            r.silent(),
            r.benign(),
            r.coverage_pct(),
            r.alarm_coverage_pct(),
            v.area,
            v.delay_ps
        );
    }
    let _ = writeln!(s, "  ],");
    match banked {
        Some(b) => {
            let _ = writeln!(
                s,
                "  \"banked\": {{\"n\": {}, \"banks\": {}, \"window\": {}, \"trials\": {}, \
                 \"disturbed\": {}, \"contained\": {}, \"breached\": {}}},",
                b.n, b.banks, b.window, b.trials, b.disturbed, b.contained, b.breached
            );
        }
        // Truncated before the banked campaign finished.
        None => {
            let _ = writeln!(s, "  \"banked\": null,");
        }
    }
    match row {
        Some(row) => {
            let _ = writeln!(
                s,
                "  \"hardening_overhead\": {{\"area_factor\": {:.4}, \"delay_factor\": {:.4}}}{}",
                row.area_overhead_factor(),
                row.delay_overhead_factor(),
                if meta.metrics.is_some() { "," } else { "" }
            );
        }
        // Truncated before the SRAG pair finished.
        None => {
            let _ = writeln!(
                s,
                "  \"hardening_overhead\": null{}",
                if meta.metrics.is_some() { "," } else { "" }
            );
        }
    }
    if let Some(metrics) = &meta.metrics {
        let _ = writeln!(s, "  \"metrics\": {metrics}");
    }
    let _ = writeln!(s, "}}");
    s
}
