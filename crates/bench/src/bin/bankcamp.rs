//! `bankcamp` — the banked-ADDM interleaver campaign: schedule the
//! interleaver workload family across B parallel banks, gate on the
//! contention-free QPP configuration, and price each bank's
//! decompose-picked generator against a monolithic per-bank FSM.
//!
//! Three interleavers run under the high-bits bank map:
//!
//! * `qpp` — [`Interleaver::qpp_contention_free`], the gated
//!   configuration. It must schedule conflict-free, cosim must verify
//!   every payload, and every bank's decomposed generator must be
//!   *strictly* cheaper (area) than the monolithic FSM over the same
//!   local stream. Any miss fails the run.
//! * `block` and `random` — conflict-rate context: the row-column
//!   interleaver collides on every cycle under this map and the
//!   pseudo-random permutation collides on most, which is exactly why
//!   the QPP family earns its place.
//!
//! ```text
//! cargo run --release -p adgen-bench --bin bankcamp              # n=256, 8 banks
//! cargo run --release -p adgen-bench --bin bankcamp -- --smoke   # n=64, 4 banks
//! cargo run --release -p adgen-bench --bin bankcamp -- --jobs 4 --seed 7
//! ```
//!
//! Campaign runs write `BENCH_bank.json`. Observability: `--trace
//! FILE` and `--metrics` behave as in the other campaign bins
//! (`DESIGN.md` §9).

use std::fmt::Write as _;
use std::process::ExitCode;

use adgen_bench::obs_cli::{take_obs_args, ObsJsonSink, RunMeta};

use adgen_bank::{BankMap, GeneratorChoice, Interleaver};
use adgen_explorer::{compare_banked, BankedComparison};
use adgen_netlist::Library;

/// Schedule/cosim accounting for one interleaver.
struct ContextRow {
    name: &'static str,
    conflict_cycles: usize,
    stall_cycles: usize,
    conflict_rate: f64,
    conflict_free: bool,
    verified: usize,
}

/// Everything `BENCH_bank.json` reports.
struct BankState {
    n: u32,
    banks: u32,
    window: u32,
    seed: u64,
    contexts: Vec<ContextRow>,
    qpp: Option<BankedComparison>,
}

fn main() -> ExitCode {
    let mut jobs = 0usize;
    let mut seed = 2026u64;
    let mut smoke = false;
    let (raw, obs_args) = take_obs_args(std::env::args().skip(1).collect());
    let mut args = raw.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--jobs" | "-j" => jobs = parse_or_die(&mut args, &a),
            "--seed" => seed = parse_or_die(&mut args, &a),
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!(
                    "usage: bankcamp [--smoke] [--jobs N] [--seed N] [--trace FILE] [--metrics]"
                );
                std::process::exit(2);
            }
        }
    }

    // Smoke keeps the full four-bank parallelism but on a 64-entry
    // stream; the full run is the paper-scale 256-entry, 8-bank
    // configuration.
    let (n, banks) = if smoke { (64, 4) } else { (256, 8) };
    let window = n / banks;
    let map = BankMap::HighBits { banks, window };
    let lib = Library::vcl018();

    println!("bankcamp: n={n}, {banks} banks x window {window}, high-bits map, seed {seed}");

    let mut sink = ObsJsonSink::new(
        "BENCH_bank.json",
        obs_args,
        BankState {
            n,
            banks,
            window,
            seed,
            contexts: Vec::new(),
            qpp: None,
        },
        render_bank_json,
    );

    let qpp = Interleaver::qpp_contention_free(n, banks)
        .unwrap_or_else(|e| panic!("qpp parameters rejected: {e}"));
    let cases = [
        qpp,
        Interleaver::Block {
            rows: banks,
            cols: window,
        },
        Interleaver::Random { n, seed },
    ];

    let mut qpp_cmp = None;
    for il in &cases {
        let cmp = compare_banked(il, &map, banks, &lib, jobs)
            .unwrap_or_else(|e| panic!("{}: banked comparison failed: {e}", il.label()));
        println!(
            "  {:<7} conflicts {:>3}/{} cycles ({:>5.1}%), {:>3} stalls, verified {:>3}/{}  {}",
            il.label(),
            cmp.schedule.conflict_cycles,
            cmp.schedule.window,
            cmp.schedule.conflict_rate() * 100.0,
            cmp.schedule.stall_cycles,
            cmp.cosim.verified,
            n,
            if cmp.conflict_free() {
                "conflict-free"
            } else {
                "conflicted"
            }
        );
        sink.state().contexts.push(ContextRow {
            name: il.label(),
            conflict_cycles: cmp.schedule.conflict_cycles,
            stall_cycles: cmp.schedule.stall_cycles,
            conflict_rate: cmp.schedule.conflict_rate(),
            conflict_free: cmp.conflict_free(),
            verified: cmp.cosim.verified,
        });
        if il.label() == "qpp" {
            // The priced plan must not depend on worker count.
            let alternate = compare_banked(il, &map, banks, &lib, if jobs == 1 { 2 } else { 1 })
                .expect("alternate-jobs comparison failed");
            assert_eq!(cmp, alternate, "banked comparison is jobs-dependent");
            qpp_cmp = Some(cmp);
        }
    }

    let qpp_cmp = qpp_cmp.expect("qpp case must have run");
    let mut gate_failed = false;
    if !qpp_cmp.conflict_free() {
        eprintln!("  FAIL: contention-free QPP scheduled with conflicts");
        gate_failed = true;
    }
    if qpp_cmp.cosim.verified != n as usize {
        eprintln!(
            "  FAIL: cosim verified {}/{} payloads",
            qpp_cmp.cosim.verified, n
        );
        gate_failed = true;
    }
    match &qpp_cmp.plan {
        None => {
            eprintln!("  FAIL: conflict-free schedule produced no priced plan");
            gate_failed = true;
        }
        Some(plan) => {
            println!("\n  per-bank pricing (qpp):");
            for b in &plan.banks {
                println!(
                    "    bank {}: {} linear + {} residue bits, \
                     decomposed {:>7.1} vs monolithic {:>7.1} area, {} ffs, {}",
                    b.bank,
                    b.linear_bits,
                    b.residue_bits,
                    b.decomposed.area,
                    b.monolithic.area,
                    b.decomposed.flip_flops,
                    choice_str(b.choice)
                );
                if b.choice != GeneratorChoice::Decomposed || b.decomposed.area >= b.monolithic.area
                {
                    eprintln!(
                        "  FAIL: bank {} decomposed generator is not strictly cheaper \
                         ({} vs {})",
                        b.bank, b.decomposed.area, b.monolithic.area
                    );
                    gate_failed = true;
                }
            }
            println!(
                "  decomposed {:.1} vs monolithic {:.1} total area: {:.1}% win",
                plan.decomposed_area,
                plan.monolithic_area,
                plan.win_pct()
            );
        }
    }
    sink.state().qpp = Some(qpp_cmp);

    sink.finish();
    if gate_failed {
        eprintln!("FAIL: banked-ADDM gate did not hold");
        return ExitCode::FAILURE;
    }
    println!("\n  banked gate: conflict-free schedule, decompose wins every bank");
    ExitCode::SUCCESS
}

fn parse_or_die<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let v = args.next().unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid {flag} value `{v}`");
        std::process::exit(2);
    })
}

fn choice_str(c: GeneratorChoice) -> &'static str {
    match c {
        GeneratorChoice::Decomposed => "decomposed",
        GeneratorChoice::MonolithicFsm => "monolithic_fsm",
    }
}

/// Hand-rolled machine-readable record mirroring the other
/// `BENCH_*.json` conventions (drop-guard flush, `"truncated"`
/// marker, optional `"metrics"` tail).
fn render_bank_json(state: &BankState, meta: &RunMeta) -> String {
    let BankState {
        n,
        banks,
        window,
        seed,
        contexts,
        qpp,
    } = state;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"n\": {n},");
    let _ = writeln!(s, "  \"banks\": {banks},");
    let _ = writeln!(s, "  \"window\": {window},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    if meta.truncated {
        let _ = writeln!(s, "  \"truncated\": true,");
    }
    let _ = writeln!(s, "  \"interleavers\": [");
    for (i, c) in contexts.iter().enumerate() {
        let comma = if i + 1 < contexts.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"conflict_free\": {}, \"conflict_cycles\": {}, \
             \"stall_cycles\": {}, \"conflict_rate\": {:.4}, \"verified\": {}}}{comma}",
            c.name, c.conflict_free, c.conflict_cycles, c.stall_cycles, c.conflict_rate, c.verified
        );
    }
    let _ = writeln!(s, "  ],");
    match qpp {
        None => {
            let _ = writeln!(s, "  \"conflict_free\": false,");
            let _ = writeln!(s, "  \"conflict_rate\": null,");
            let _ = writeln!(s, "  \"stall_cycles\": null,");
            let _ = write!(s, "  \"decompose_win_pct\": null");
        }
        Some(cmp) => {
            let _ = writeln!(s, "  \"conflict_free\": {},", cmp.conflict_free());
            let _ = writeln!(
                s,
                "  \"conflict_rate\": {:.4},",
                cmp.schedule.conflict_rate()
            );
            let _ = writeln!(s, "  \"stall_cycles\": {},", cmp.schedule.stall_cycles);
            match &cmp.plan {
                None => {
                    let _ = writeln!(s, "  \"bank_rows\": [],");
                    let _ = write!(s, "  \"decompose_win_pct\": null");
                }
                Some(plan) => {
                    let _ = writeln!(s, "  \"bank_rows\": [");
                    for (i, b) in plan.banks.iter().enumerate() {
                        let comma = if i + 1 < plan.banks.len() { "," } else { "" };
                        let _ = writeln!(
                            s,
                            "    {{\"bank\": {}, \"linear_bits\": {}, \"residue_bits\": {}, \
                             \"residue_states\": {}, \"decomposed_area\": {:.2}, \
                             \"monolithic_area\": {:.2}, \"delay_ps\": {:.2}, \
                             \"flip_flops\": {}, \"choice\": \"{}\"}}{comma}",
                            b.bank,
                            b.linear_bits,
                            b.residue_bits,
                            b.residue_states,
                            b.decomposed.area,
                            b.monolithic.area,
                            b.decomposed.delay_ps,
                            b.decomposed.flip_flops,
                            choice_str(b.choice)
                        );
                    }
                    let _ = writeln!(s, "  ],");
                    let _ = writeln!(s, "  \"decomposed_area\": {:.2},", plan.decomposed_area);
                    let _ = writeln!(s, "  \"monolithic_area\": {:.2},", plan.monolithic_area);
                    let _ = write!(s, "  \"decompose_win_pct\": {:.2}", plan.win_pct());
                }
            }
        }
    }
    let _ = writeln!(s, "{}", if meta.metrics.is_some() { "," } else { "" });
    if let Some(metrics) = &meta.metrics {
        let _ = writeln!(s, "  \"metrics\": {metrics}");
    }
    let _ = writeln!(s, "}}");
    s
}
