//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p adgen-bench --bin repro              # everything, all cores
//! cargo run --release -p adgen-bench --bin repro -- fig3      # one artefact
//! cargo run --release -p adgen-bench --bin repro -- --jobs 4  # pin the worker count
//! ```
//!
//! Artefacts: `table1 table2 fig3 fig4 synthtime fig8 fig9 fig10 power ablation sharing interconnect
//! table3`. Results are printed and, for the sweeps, also written as
//! CSV under `results/`. Each run also emits `BENCH_repro.json` with
//! the worker count and per-experiment wall-clock seconds.
//!
//! Observability (see `DESIGN.md` §9): `--trace FILE` writes a Chrome
//! trace-event JSON of the whole run, `--metrics` prints the
//! deterministic self/total profile and appends a `"metrics"` block
//! to `BENCH_repro.json`. The JSON is flushed through a drop guard,
//! so a panicking experiment still leaves a valid record of the rows
//! that completed, marked `"truncated": true`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use adgen_bench::experiments::{
    ablation, fig3_4, fig8_9_10, interconnect, power_study, sharing, synth_time, table3,
    SynthTimeRow, PAPER_ARRAY_SIZES, PAPER_SEQUENCE_LENGTHS,
};
use adgen_bench::obs_cli::{take_obs_args, ObsJsonSink, RunMeta};
use adgen_bench::report;
use adgen_core::mapper::map_sequence;
use adgen_seq::{workloads, ArrayShape, Layout};

const ARTEFACTS: [&str; 14] = [
    "all",
    "table1",
    "table2",
    "fig3",
    "fig4",
    "synthtime",
    "fig8",
    "fig9",
    "fig10",
    "table3",
    "power",
    "ablation",
    "sharing",
    "interconnect",
];

/// Everything `BENCH_repro.json` reports, accumulated as the run
/// progresses so the drop guard can flush a truncated record on
/// panic.
struct ReproState {
    jobs: usize,
    timings: Vec<(&'static str, f64)>,
    synthtime: Vec<SynthTimeRow>,
}

fn main() {
    let mut jobs = 0usize; // 0 = all available cores
    let mut what: Vec<String> = Vec::new();
    let (raw, obs_args) = take_obs_args(std::env::args().skip(1).collect());
    let mut args = raw.into_iter();
    while let Some(a) = args.next() {
        if a == "--jobs" || a == "-j" {
            let v = args.next().unwrap_or_else(|| {
                eprintln!("error: {a} needs a value");
                std::process::exit(2);
            });
            jobs = parse_jobs(&v);
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = parse_jobs(v);
        } else {
            what.push(a);
        }
    }
    if what.is_empty() {
        what.push("all".to_string());
    }
    for a in &what {
        if !ARTEFACTS.contains(&a.as_str()) {
            eprintln!(
                "warning: unknown artefact `{a}` (known: {})",
                ARTEFACTS.join(" ")
            );
        }
    }
    let run = |name: &str| what.iter().any(|a| a == name || a == "all");
    let results_dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&results_dir);

    let effective_jobs = adgen_exec::resolve_jobs(jobs);
    println!("repro: {effective_jobs} worker(s)\n");

    // Accumulates (experiment, wall-clock seconds) in execution order
    // and owns the obs session; flushes BENCH_repro.json on finish or
    // panic.
    let mut sink = ObsJsonSink::new(
        "BENCH_repro.json",
        obs_args,
        ReproState {
            jobs: effective_jobs,
            timings: Vec::new(),
            synthtime: Vec::new(),
        },
        render_repro_json,
    );

    if run("table1") {
        print_table1();
    }
    if run("table2") {
        print_table2();
    }
    if run("fig3") || run("fig4") {
        let started = Instant::now();
        let rows = fig3_4(&PAPER_SEQUENCE_LENGTHS, jobs);
        sink.state()
            .timings
            .push(("fig3_4", started.elapsed().as_secs_f64()));
        println!("{}", report::render_fig3_4(&rows));
        if report::write_fig3_4_csv(&rows, &results_dir.join("fig3_4.csv")).is_ok() {
            println!("(written to results/fig3_4.csv)\n");
        }
    }
    if run("synthtime") {
        // Serial on purpose: the per-point wall-clocks are the
        // artefact, and concurrent points would perturb them.
        let started = Instant::now();
        let rows = synth_time(&PAPER_SEQUENCE_LENGTHS, 1);
        sink.state()
            .timings
            .push(("synthtime", started.elapsed().as_secs_f64()));
        println!("{}", report::render_synth_time(&rows));
        sink.state().synthtime = rows;
    }
    if run("fig8") || run("fig9") || run("fig10") {
        let started = Instant::now();
        let rows = fig8_9_10(&PAPER_ARRAY_SIZES, jobs);
        sink.state()
            .timings
            .push(("fig8_9_10", started.elapsed().as_secs_f64()));
        if run("fig8") {
            println!("{}", report::render_fig8(&rows));
        }
        if run("fig9") {
            println!("{}", report::render_fig9(&rows));
        }
        if run("fig10") {
            println!("{}", report::render_fig10(&rows));
        }
        if report::write_fig8_10_csv(&rows, &results_dir.join("fig8_10.csv")).is_ok() {
            println!("(written to results/fig8_10.csv)\n");
        }
    }
    if run("table3") {
        let started = Instant::now();
        let rows = table3(&[16, 32, 64], jobs);
        sink.state()
            .timings
            .push(("table3", started.elapsed().as_secs_f64()));
        println!("{}", report::render_table3(&rows));
    }
    if run("power") {
        let started = Instant::now();
        let rows = power_study(&[16, 64], jobs);
        sink.state()
            .timings
            .push(("power", started.elapsed().as_secs_f64()));
        println!("{}", report::render_power(&rows));
    }
    if run("ablation") {
        let started = Instant::now();
        let rows = ablation(&[16, 64], jobs);
        sink.state()
            .timings
            .push(("ablation", started.elapsed().as_secs_f64()));
        println!("{}", report::render_ablation(&rows));
    }
    if run("sharing") {
        let started = Instant::now();
        let rows = sharing(&[16, 64, 256], jobs);
        sink.state()
            .timings
            .push(("sharing", started.elapsed().as_secs_f64()));
        println!("{}", report::render_sharing(&rows));
    }
    if run("interconnect") {
        let started = Instant::now();
        let rows = interconnect(&[0.0, 30.0, 60.0, 120.0, 240.0], jobs);
        sink.state()
            .timings
            .push(("interconnect", started.elapsed().as_secs_f64()));
        println!("{}", report::render_interconnect(&rows));
    }

    sink.finish();
}

fn parse_jobs(v: &str) -> usize {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid --jobs value `{v}`");
        std::process::exit(2);
    })
}

/// Renders the machine-readable benchmark record: worker count,
/// per-experiment wall-clock, and (when the synthtime artefact ran)
/// the per-N synthesis times that carry the packed-kernel speedup.
/// With `--metrics` a jobs-invariant counter block is appended; a
/// panic mid-run flushes the completed rows with `"truncated": true`.
fn render_repro_json(state: &ReproState, meta: &RunMeta) -> String {
    let ReproState {
        jobs,
        timings,
        synthtime,
    } = state;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"jobs\": {jobs},");
    if meta.truncated {
        let _ = writeln!(s, "  \"truncated\": true,");
    }
    let _ = writeln!(s, "  \"experiments\": [");
    for (i, (name, secs)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{name}\", \"wall_clock_s\": {secs:.6}}}{comma}"
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"synthtime\": [");
    for (i, r) in synthtime.iter().enumerate() {
        let comma = if i + 1 < synthtime.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"n\": {}, \"fsm_s\": {:.6}, \"shift_register_s\": {:.6}}}{comma}",
            r.n, r.fsm_seconds, r.shift_register_seconds
        );
    }
    if let Some(metrics) = &meta.metrics {
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"metrics\": {metrics}");
    } else {
        let _ = writeln!(s, "  ]");
    }
    let _ = writeln!(s, "}}");
    s
}

fn print_table1() {
    let shape = ArrayShape::new(4, 4);
    let lin = workloads::motion_est_read(shape, 2, 2, 0);
    let (rows, cols) = lin.decompose(shape, Layout::RowMajor).expect("in range");
    println!("Table 1: address sequences (img 4x4, mb 2x2, m=0)");
    println!("  LinAS = {lin}");
    println!("  RowAS = {rows}");
    println!("  ColAS = {cols}\n");
}

fn print_table2() {
    let shape = ArrayShape::new(4, 4);
    let lin = workloads::motion_est_read(shape, 2, 2, 0);
    let (rows, _) = lin.decompose(shape, Layout::RowMajor).expect("in range");
    let m = map_sequence(&rows).expect("paper example maps");
    println!("Table 2: mapping parameters for the row address sequence");
    println!("  I  = {rows}");
    println!("  D  = {:?}", m.division_counts);
    println!("  R  = {}", m.reduced);
    println!("  U  = {:?}", m.unique);
    println!("  O  = {:?}", m.occurrences);
    println!("  Z  = {:?}", m.first_positions);
    println!(
        "  S  = {:?}",
        m.spec
            .registers
            .iter()
            .map(|r| r.lines().to_vec())
            .collect::<Vec<_>>()
    );
    println!("  P  = {:?}", m.pass_counts);
    println!("  dC = {}", m.spec.div_count);
    println!("  pC = {}\n", m.spec.pass_count);
}
