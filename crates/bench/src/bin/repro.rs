//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p adgen-bench --bin repro            # everything
//! cargo run -p adgen-bench --bin repro -- fig3    # one artefact
//! ```
//!
//! Artefacts: `table1 table2 fig3 fig4 synthtime fig8 fig9 fig10 power ablation sharing interconnect
//! table3`. Results are printed and, for the sweeps, also written as
//! CSV under `results/`.

use std::path::PathBuf;

use adgen_bench::experiments::{
    ablation, fig3_4, fig8_9_10, interconnect, power_study, sharing, synth_time, table3,
    PAPER_ARRAY_SIZES, PAPER_SEQUENCE_LENGTHS,
};
use adgen_bench::report;
use adgen_core::mapper::map_sequence;
use adgen_seq::{workloads, ArrayShape, Layout};

const ARTEFACTS: [&str; 14] = [
    "all",
    "table1",
    "table2",
    "fig3",
    "fig4",
    "synthtime",
    "fig8",
    "fig9",
    "fig10",
    "table3",
    "power",
    "ablation",
    "sharing",
    "interconnect",
];

fn main() {
    let what: Vec<String> = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.is_empty() {
            vec!["all".to_string()]
        } else {
            args
        }
    };
    for a in &what {
        if !ARTEFACTS.contains(&a.as_str()) {
            eprintln!(
                "warning: unknown artefact `{a}` (known: {})",
                ARTEFACTS.join(" ")
            );
        }
    }
    let run = |name: &str| what.iter().any(|a| a == name || a == "all");
    let results_dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&results_dir);

    if run("table1") {
        print_table1();
    }
    if run("table2") {
        print_table2();
    }
    if run("fig3") || run("fig4") {
        let rows = fig3_4(&PAPER_SEQUENCE_LENGTHS);
        println!("{}", report::render_fig3_4(&rows));
        if report::write_fig3_4_csv(&rows, &results_dir.join("fig3_4.csv")).is_ok() {
            println!("(written to results/fig3_4.csv)\n");
        }
    }
    if run("synthtime") {
        let rows = synth_time(&PAPER_SEQUENCE_LENGTHS);
        println!("{}", report::render_synth_time(&rows));
    }
    if run("fig8") || run("fig9") || run("fig10") {
        let rows = fig8_9_10(&PAPER_ARRAY_SIZES);
        if run("fig8") {
            println!("{}", report::render_fig8(&rows));
        }
        if run("fig9") {
            println!("{}", report::render_fig9(&rows));
        }
        if run("fig10") {
            println!("{}", report::render_fig10(&rows));
        }
        if report::write_fig8_10_csv(&rows, &results_dir.join("fig8_10.csv")).is_ok() {
            println!("(written to results/fig8_10.csv)\n");
        }
    }
    if run("table3") {
        let rows = table3(&[16, 32, 64]);
        println!("{}", report::render_table3(&rows));
    }
    if run("power") {
        let rows = power_study(&[16, 64]);
        println!("{}", report::render_power(&rows));
    }
    if run("ablation") {
        let rows = ablation(&[16, 64]);
        println!("{}", report::render_ablation(&rows));
    }
    if run("sharing") {
        let rows = sharing(&[16, 64, 256]);
        println!("{}", report::render_sharing(&rows));
    }
    if run("interconnect") {
        let rows = interconnect(&[0.0, 30.0, 60.0, 120.0, 240.0]);
        println!("{}", report::render_interconnect(&rows));
    }
}

fn print_table1() {
    let shape = ArrayShape::new(4, 4);
    let lin = workloads::motion_est_read(shape, 2, 2, 0);
    let (rows, cols) = lin.decompose(shape, Layout::RowMajor).expect("in range");
    println!("Table 1: address sequences (img 4x4, mb 2x2, m=0)");
    println!("  LinAS = {lin}");
    println!("  RowAS = {rows}");
    println!("  ColAS = {cols}\n");
}

fn print_table2() {
    let shape = ArrayShape::new(4, 4);
    let lin = workloads::motion_est_read(shape, 2, 2, 0);
    let (rows, _) = lin.decompose(shape, Layout::RowMajor).expect("in range");
    let m = map_sequence(&rows).expect("paper example maps");
    println!("Table 2: mapping parameters for the row address sequence");
    println!("  I  = {rows}");
    println!("  D  = {:?}", m.division_counts);
    println!("  R  = {}", m.reduced);
    println!("  U  = {:?}", m.unique);
    println!("  O  = {:?}", m.occurrences);
    println!("  Z  = {:?}", m.first_positions);
    println!(
        "  S  = {:?}",
        m.spec
            .registers
            .iter()
            .map(|r| r.lines().to_vec())
            .collect::<Vec<_>>()
    );
    println!("  P  = {:?}", m.pass_counts);
    println!("  dC = {}", m.spec.div_count);
    println!("  pC = {}\n", m.spec.pass_count);
}
