//! `explore4` — the four-way generator shoot-out on the paper's
//! workloads: specialized FSM vs SRAG vs CntAG vs the programmable
//! affine AGU, priced under one cell library and one fault-universe
//! recipe.
//!
//! For each workload the run produces one [`FourWayRow`] per
//! architecture (delay, area, flip-flops, programming premium, fault
//! coverage) and then gates on the affine family's correctness
//! contract: [`verify_affine_bit_exact`] must reproduce the input
//! stream bit-exactly — affine prefix plus residual — on all three
//! simulation engines. A workload that fails the gate fails the run.
//!
//! ```text
//! cargo run --release -p adgen-bench --bin explore4              # 8x8 workloads
//! cargo run --release -p adgen-bench --bin explore4 -- --smoke   # 4x4, CI-sized
//! cargo run --release -p adgen-bench --bin explore4 -- --jobs 4 --seed 7
//! ```
//!
//! Campaign runs write `BENCH_explore.json` with one block per
//! workload. Observability: `--trace FILE` and `--metrics` behave as
//! in the other campaign bins (`DESIGN.md` §9).

use std::fmt::Write as _;
use std::process::ExitCode;

use adgen_bench::obs_cli::{take_obs_args, ObsJsonSink, RunMeta};
use adgen_bench::Fig7Recipe;

use adgen_explorer::{compare_four_way, verify_affine_bit_exact, FourWayComparison};
use adgen_netlist::Library;
use adgen_seq::ArrayShape;

/// One workload's comparison plus the bit-exactness gate result.
struct WorkloadResult {
    name: &'static str,
    comparison: FourWayComparison,
    bit_exact: bool,
}

struct ExploreState {
    shape: ArrayShape,
    seed: u64,
    seu_samples: usize,
    workloads: Vec<WorkloadResult>,
}

fn main() -> ExitCode {
    let mut jobs = 0usize;
    let mut seed = 2026u64;
    let mut smoke = false;
    let (raw, obs_args) = take_obs_args(std::env::args().skip(1).collect());
    let mut args = raw.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--jobs" | "-j" => jobs = parse_or_die(&mut args, &a),
            "--seed" => seed = parse_or_die(&mut args, &a),
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!(
                    "usage: explore4 [--smoke] [--jobs N] [--seed N] [--trace FILE] [--metrics]"
                );
                std::process::exit(2);
            }
        }
    }

    let recipe = Fig7Recipe::new(smoke);
    let shape = recipe.shape;
    let seu_samples = recipe.explore_seu_samples();
    let lib = Library::vcl018();

    // Fig. 7's motion-estimation kernel plus the two scan patterns
    // the paper prices in Figs. 8–10.
    let cases = recipe.explore_cases();

    println!(
        "explore4: {}x{} workloads, {} SEU samples, seed {}",
        shape.width(),
        shape.height(),
        seu_samples,
        seed
    );

    let mut sink = ObsJsonSink::new(
        "BENCH_explore.json",
        obs_args,
        ExploreState {
            shape,
            seed,
            seu_samples,
            workloads: Vec::new(),
        },
        render_explore_json,
    );

    let mut gate_failed = false;
    for (name, seq, program) in &cases {
        let cycles = seq.len() as u32;
        let comparison =
            compare_four_way(seq, shape, program, &lib, cycles, seu_samples, seed, jobs)
                .unwrap_or_else(|e| panic!("{name}: four-way comparison failed: {e}"));
        let bit_exact = match verify_affine_bit_exact(seq) {
            Ok(fit) => {
                println!(
                    "\n  {name}: affine fit covers {}/{} addresses ({} residual), \
                     bit-exact on all three engines",
                    fit.covered,
                    seq.len(),
                    fit.residual.len()
                );
                true
            }
            Err(e) => {
                eprintln!("\n  {name}: AFFINE BIT-EXACTNESS GATE FAILED: {e}");
                gate_failed = true;
                false
            }
        };
        for row in &comparison.rows {
            println!(
                "    {:<14} delay {:>8.1} ps  area {:>8.1}  ffs {:>3} (+{} prog)  \
                 coverage {:>5.1}% ({} faults, {} silent)",
                row.architecture.to_string(),
                row.delay_ps,
                row.area,
                row.flip_flops,
                row.program_flip_flops,
                row.fault_coverage_pct,
                row.faults,
                row.silent_faults
            );
        }
        sink.state().workloads.push(WorkloadResult {
            name,
            comparison,
            bit_exact,
        });
    }

    sink.finish();
    if gate_failed {
        eprintln!("FAIL: affine row is not bit-exact on every workload");
        return ExitCode::FAILURE;
    }
    println!("\n  affine bit-exactness gate: passed on every workload");
    ExitCode::SUCCESS
}

fn parse_or_die<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let v = args.next().unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid {flag} value `{v}`");
        std::process::exit(2);
    })
}

/// Hand-rolled machine-readable record, one block per workload,
/// mirroring `BENCH_fault.json`'s conventions (drop-guard flush,
/// `"truncated"` marker, optional `"metrics"` tail).
fn render_explore_json(state: &ExploreState, meta: &RunMeta) -> String {
    let ExploreState {
        shape,
        seed,
        seu_samples,
        workloads,
    } = state;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"shape\": \"{}x{}\",", shape.width(), shape.height());
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"seu_samples\": {seu_samples},");
    if meta.truncated {
        let _ = writeln!(s, "  \"truncated\": true,");
    }
    let _ = writeln!(s, "  \"workloads\": [");
    for (i, w) in workloads.iter().enumerate() {
        let comma = if i + 1 < workloads.len() { "," } else { "" };
        let fit = &w.comparison.affine_fit;
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(
            s,
            "      \"affine_fit\": {{\"covered\": {}, \"residual\": {}, \"exact\": {}, \
             \"bit_exact_three_engines\": {}}},",
            fit.covered,
            fit.residual.len(),
            fit.is_exact(),
            w.bit_exact
        );
        let _ = writeln!(s, "      \"rows\": [");
        let rows = &w.comparison.rows;
        for (j, r) in rows.iter().enumerate() {
            let rcomma = if j + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        {{\"architecture\": \"{}\", \"delay_ps\": {:.2}, \"area\": {:.2}, \
                 \"flip_flops\": {}, \"program_flip_flops\": {}, \"fault_coverage_pct\": {:.2}, \
                 \"silent_faults\": {}, \"faults\": {}}}{rcomma}",
                r.architecture,
                r.delay_ps,
                r.area,
                r.flip_flops,
                r.program_flip_flops,
                r.fault_coverage_pct,
                r.silent_faults,
                r.faults
            );
        }
        let _ = writeln!(s, "      ]");
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]{}", if meta.metrics.is_some() { "," } else { "" });
    if let Some(metrics) = &meta.metrics {
        let _ = writeln!(s, "  \"metrics\": {metrics}");
    }
    let _ = writeln!(s, "}}");
    s
}
