//! `chaoscamp` — crash/corruption campaign against the serving tier.
//!
//! Where `loadgen` proves the server fast and `faultcamp` proves the
//! *hardware* fault-tolerant, `chaoscamp` proves the serving tier's
//! disk cache safe against the failure modes disks and crashes
//! actually produce:
//!
//! * **kill scenarios** — the server is spawned with a deterministic
//!   fault plan (`kill@disk.put.<site>#1`) that calls `abort()` at a
//!   named point inside the disk-cache write path, mid-entry. The
//!   harness drives requests until the process dies, restarts it on
//!   the same cache directory, and asserts the invariants below.
//! * **corruption scenarios** — a warm cache directory is mutated
//!   offline (payload bit flip, truncation, zero-length file) before
//!   a restart, modelling bit rot and torn writes that `kill` alone
//!   cannot place precisely.
//!
//! Invariants, asserted per scenario and fatal on violation:
//!
//! 1. **no corrupt bytes served** — every post-restart response is
//!    byte-identical to a baseline recorded from a pristine server;
//! 2. **the disk bound holds after restart** — live payload bytes on
//!    disk stay within `--disk-cap` (quarantined entries excluded);
//! 3. **the warm path recovers** — a second pass over the workload is
//!    served entirely from cache.
//!
//! Each scenario is classified by the fate of the entry that was
//! being written when the failure hit: `detected` (the damaged entry
//! was quarantined — `serve.cache.corrupt` advanced), `degraded` (the
//! entry was lost and transparently recomputed) or `benign` (the
//! entry was already durable and served as a hit). The campaign
//! writes `BENCH_chaos.json` and exits nonzero if any invariant
//! fails.
//!
//! ```text
//! cargo run --release -p adgen-bench --bin chaoscamp              # full campaign
//! cargo run --release -p adgen-bench --bin chaoscamp -- --smoke   # CI-sized
//! chaoscamp --reactor threaded --serve-bin target/release/adgen-serve
//! ```

use std::fmt::Write as _;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, ExitCode, Stdio};
use std::time::Duration;

use adgen_bench::obs_cli::{take_obs_args, ObsJsonSink, RunMeta};
use adgen_serve::{Client, Generator, Request, Response, StatsSnapshot};
use adgen_synth::Encoding;

/// Disk-cache byte bound every spawned server runs under.
const DISK_CAP: u64 = 1 << 20;

/// Bytes the entry frame header occupies on disk (kept in sync with
/// the serve crate's framing; only used for the cap accounting here).
const ENTRY_HEADER_LEN: u64 = 32;

/// Per-call read timeout: turns a hung server into a visible failure.
const CALL_TIMEOUT: Duration = Duration::from_secs(30);

/// How a corruption scenario damages a warm cache entry offline.
#[derive(Clone, Copy)]
enum Mutation {
    /// Flip one payload bit — caught by the digest check on read.
    BitFlip,
    /// Chop bytes off the end — caught by the length check at rescan.
    Truncate,
    /// Leave a zero-length file — caught by the header check at rescan.
    ZeroLength,
}

impl Mutation {
    fn name(self) -> &'static str {
        match self {
            Mutation::BitFlip => "corrupt-bitflip",
            Mutation::Truncate => "corrupt-truncate",
            Mutation::ZeroLength => "corrupt-zero-length",
        }
    }
}

/// One campaign scenario.
enum Scenario {
    /// `kill@disk.put.<site>#1` mid-write, then restart.
    Kill { site: &'static str },
    /// Warm the cache cleanly, mutate one entry, then restart.
    Corrupt { mutation: Mutation },
}

impl Scenario {
    fn name(&self) -> String {
        match self {
            Scenario::Kill { site } => format!("kill@{site}"),
            Scenario::Corrupt { mutation } => mutation.name().to_string(),
        }
    }
}

/// One row of `BENCH_chaos.json`.
struct ScenarioRow {
    name: String,
    classification: &'static str,
    corrupt_quarantined: u64,
    disk_write_errors: u64,
    round1_hits: u64,
    round1_misses: u64,
    round2_hits: u64,
    bytes_ok: bool,
    cap_ok: bool,
    recovered: bool,
    failures: Vec<String>,
}

/// Everything the JSON report carries.
struct ChaosState {
    reactor: String,
    smoke: bool,
    requests: usize,
    rows: Vec<ScenarioRow>,
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut reactor = "auto".to_string();
    let mut serve_bin: Option<PathBuf> = None;
    let (raw, obs_args) = take_obs_args(std::env::args().skip(1).collect());
    let mut args = raw.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--reactor" => reactor = require(&mut args, &a),
            "--serve-bin" => serve_bin = Some(PathBuf::from(require::<String>(&mut args, &a))),
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!(
                    "usage: chaoscamp [--smoke] [--reactor auto|epoll|threaded] \
                     [--serve-bin PATH] [--trace FILE] [--metrics]"
                );
                std::process::exit(2);
            }
        }
    }
    let serve_bin = serve_bin.unwrap_or_else(default_serve_bin);
    if !serve_bin.exists() {
        eprintln!(
            "error: server binary {} not found (build adgen-serve, or pass --serve-bin)",
            serve_bin.display()
        );
        std::process::exit(2);
    }

    let scenarios: Vec<Scenario> = if smoke {
        vec![
            Scenario::Kill {
                site: "disk.put.write",
            },
            Scenario::Kill {
                site: "disk.put.post_rename",
            },
            Scenario::Corrupt {
                mutation: Mutation::BitFlip,
            },
            Scenario::Corrupt {
                mutation: Mutation::Truncate,
            },
        ]
    } else {
        vec![
            Scenario::Kill {
                site: "disk.put.create",
            },
            Scenario::Kill {
                site: "disk.put.write",
            },
            Scenario::Kill {
                site: "disk.put.sync",
            },
            Scenario::Kill {
                site: "disk.put.pre_rename",
            },
            Scenario::Kill {
                site: "disk.put.post_rename",
            },
            Scenario::Corrupt {
                mutation: Mutation::BitFlip,
            },
            Scenario::Corrupt {
                mutation: Mutation::Truncate,
            },
            Scenario::Corrupt {
                mutation: Mutation::ZeroLength,
            },
        ]
    };

    let mix = workload(if smoke { 4 } else { 6 });
    println!(
        "chaoscamp: {} scenario(s), {} request(s), reactor {}, server {}",
        scenarios.len(),
        mix.len(),
        reactor,
        serve_bin.display()
    );

    let mut sink = ObsJsonSink::new(
        "BENCH_chaos.json",
        obs_args,
        ChaosState {
            reactor: reactor.clone(),
            smoke,
            requests: mix.len(),
            rows: Vec::new(),
        },
        render_chaos_json,
    );

    // Baseline: pristine server, fresh directory — the byte-level
    // reference every post-crash response must match.
    let base_dir = scratch_dir("baseline");
    let baseline = match record_baseline(&serve_bin, &reactor, &base_dir, &mix) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("FAIL: baseline run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = std::fs::remove_dir_all(&base_dir);

    let mut total_failures = 0usize;
    for (i, scenario) in scenarios.iter().enumerate() {
        let dir = scratch_dir(&format!("s{i}"));
        let row = run_scenario(&serve_bin, &reactor, &dir, scenario, &mix, &baseline);
        let _ = std::fs::remove_dir_all(&dir);
        println!(
            "  {:<28} {:<9} corrupt {}, round1 {}h/{}m, round2 {}h{}",
            row.name,
            row.classification,
            row.corrupt_quarantined,
            row.round1_hits,
            row.round1_misses,
            row.round2_hits,
            if row.failures.is_empty() {
                String::new()
            } else {
                format!(" — {} FAILURE(S)", row.failures.len())
            }
        );
        for f in &row.failures {
            eprintln!("FAIL: {}: {f}", row.name);
        }
        total_failures += row.failures.len();
        sink.state().rows.push(row);
    }

    sink.finish();
    if total_failures > 0 {
        eprintln!("FAIL: {total_failures} chaos invariant violation(s)");
        return ExitCode::FAILURE;
    }
    println!("chaoscamp: all scenarios clean");
    ExitCode::SUCCESS
}

/// Deterministic cacheable compute mix: distinct rotations of one
/// cyclic sequence, so every request owns a distinct cache entry.
fn workload(n: usize) -> Vec<Request> {
    (0..n as u32)
        .map(|i| Request::Synthesize {
            sequence: (0..8u32).map(|j| (j + i) % 8).collect(),
            encoding: Encoding::Binary,
            num_lines: 8,
            effort_steps: 0,
            generator: Generator::Fsm,
        })
        .collect()
}

/// Runs one scenario end to end and returns its report row.
fn run_scenario(
    serve_bin: &Path,
    reactor: &str,
    dir: &Path,
    scenario: &Scenario,
    mix: &[Request],
    baseline: &[Vec<u8>],
) -> ScenarioRow {
    let mut row = ScenarioRow {
        name: scenario.name(),
        classification: "benign",
        corrupt_quarantined: 0,
        disk_write_errors: 0,
        round1_hits: 0,
        round1_misses: 0,
        round2_hits: 0,
        bytes_ok: true,
        cap_ok: true,
        recovered: false,
        failures: Vec::new(),
    };

    // Phase A: produce the damaged directory.
    match scenario {
        Scenario::Kill { site } => {
            let faults = format!("kill@{site}#1");
            let mut server = match ServerProc::spawn(serve_bin, reactor, dir, Some(&faults)) {
                Ok(s) => s,
                Err(e) => {
                    row.failures.push(format!("faulted spawn: {e}"));
                    return row;
                }
            };
            // Drive until the plan aborts the server — the in-flight
            // call dies with the connection.
            if let Ok(mut client) = connect(&server.addr) {
                for req in mix {
                    if client.call_raw(req, 0).is_err() {
                        break;
                    }
                }
            }
            if !server.wait_for_exit(Duration::from_secs(10)) {
                row.failures
                    .push("fault plan never killed the server".to_string());
                server.kill();
            }
        }
        Scenario::Corrupt { mutation } => {
            // Warm the cache cleanly, then damage it offline.
            let mut server = match ServerProc::spawn(serve_bin, reactor, dir, None) {
                Ok(s) => s,
                Err(e) => {
                    row.failures.push(format!("warmup spawn: {e}"));
                    return row;
                }
            };
            if let Err(e) = drive(&server.addr, mix, None) {
                row.failures.push(format!("warmup: {e}"));
            }
            if let Err(e) = server.shutdown() {
                row.failures.push(format!("warmup shutdown: {e}"));
            }
            if let Err(e) = mutate_one_entry(dir, *mutation) {
                row.failures.push(format!("mutation: {e}"));
                return row;
            }
        }
    }

    // Phase B: restart clean on the damaged directory and assert.
    let mut server = match ServerProc::spawn(serve_bin, reactor, dir, None) {
        Ok(s) => s,
        Err(e) => {
            row.failures.push(format!("restart: {e}"));
            return row;
        }
    };
    let mut first_hit = false;
    let outcome = (|| -> Result<(), String> {
        let mut client = connect(&server.addr)?;
        let s0 = stats(&mut client)?;

        // Round 1: every payload must match the pristine baseline —
        // a quarantined or lost entry is recomputed, never served
        // damaged.
        for (i, req) in mix.iter().enumerate() {
            let payload = client
                .call_raw(req, 0)
                .map_err(|e| format!("round 1 request {i}: {e}"))?;
            if payload != baseline[i] {
                row.bytes_ok = false;
                row.failures.push(format!(
                    "round 1 request {i}: payload differs from baseline"
                ));
            }
            if i == 0 {
                // The first request is the one whose entry was being
                // written when a kill scenario struck — its fate
                // (durable hit vs recomputed miss) is what the
                // scenario classification keys on.
                let s = stats(&mut client)?;
                first_hit =
                    s.cache_hit_mem + s.cache_hit_disk > s0.cache_hit_mem + s0.cache_hit_disk;
            }
        }
        let s1 = stats(&mut client)?;

        // Round 2: the warm path must have recovered completely.
        for (i, req) in mix.iter().enumerate() {
            let payload = client
                .call_raw(req, 0)
                .map_err(|e| format!("round 2 request {i}: {e}"))?;
            if payload != baseline[i] {
                row.bytes_ok = false;
                row.failures.push(format!(
                    "round 2 request {i}: payload differs from baseline"
                ));
            }
        }
        let s2 = stats(&mut client)?;

        row.corrupt_quarantined = s2.cache_corrupt;
        row.disk_write_errors = s2.disk_write_errors;
        row.round1_hits = (s1.cache_hit_mem + s1.cache_hit_disk)
            .saturating_sub(s0.cache_hit_mem + s0.cache_hit_disk);
        row.round1_misses = s1.cache_miss.saturating_sub(s0.cache_miss);
        row.round2_hits = (s2.cache_hit_mem + s2.cache_hit_disk)
            .saturating_sub(s1.cache_hit_mem + s1.cache_hit_disk);
        row.recovered = row.round2_hits == mix.len() as u64;
        if !row.recovered {
            row.failures.push(format!(
                "warm pass not fully cached after restart: {} of {} hits",
                row.round2_hits,
                mix.len()
            ));
        }
        Ok(())
    })();
    if let Err(e) = outcome {
        row.failures.push(e);
    }
    if let Err(e) = server.shutdown() {
        row.failures.push(format!("restart shutdown: {e}"));
    }

    row.cap_ok = match live_payload_bytes(dir) {
        Ok(bytes) if bytes <= DISK_CAP => true,
        Ok(bytes) => {
            row.failures.push(format!(
                "disk bound violated after restart: {bytes} live payload bytes > cap {DISK_CAP}"
            ));
            false
        }
        Err(e) => {
            row.failures.push(format!("cap walk: {e}"));
            false
        }
    };

    row.classification = if row.corrupt_quarantined > 0 {
        "detected"
    } else if first_hit {
        "benign"
    } else {
        "degraded"
    };
    if matches!(scenario, Scenario::Corrupt { .. }) && row.corrupt_quarantined == 0 {
        row.failures
            .push("mutated entry was never quarantined".to_string());
    }
    row
}

/// Records the pristine-server reference payloads for `mix`.
fn record_baseline(
    serve_bin: &Path,
    reactor: &str,
    dir: &Path,
    mix: &[Request],
) -> Result<Vec<Vec<u8>>, String> {
    let mut server = ServerProc::spawn(serve_bin, reactor, dir, None)?;
    let payloads = drive(&server.addr, mix, None)?;
    server.shutdown()?;
    Ok(payloads)
}

/// Sends every request once, optionally comparing against expected
/// payloads, and returns what came back.
fn drive(addr: &str, mix: &[Request], expect: Option<&[Vec<u8>]>) -> Result<Vec<Vec<u8>>, String> {
    let mut client = connect(addr)?;
    let mut payloads = Vec::with_capacity(mix.len());
    for (i, req) in mix.iter().enumerate() {
        let payload = client
            .call_raw(req, 0)
            .map_err(|e| format!("request {i}: {e}"))?;
        if let Some(expected) = expect {
            if payload != expected[i] {
                return Err(format!("request {i}: payload differs from baseline"));
            }
        }
        payloads.push(payload);
    }
    Ok(payloads)
}

fn connect(addr: &str) -> Result<Client, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client
        .set_read_timeout(Some(CALL_TIMEOUT))
        .map_err(|e| format!("read timeout: {e}"))?;
    Ok(client)
}

fn stats(client: &mut Client) -> Result<StatsSnapshot, String> {
    match client.call(&Request::Stats, 0) {
        Ok(Response::Stats(s)) => Ok(s),
        Ok(other) => Err(format!("stats probe answered {other:?}")),
        Err(e) => Err(format!("stats probe: {e}")),
    }
}

/// Damages one warm cache entry file in `dir` (deterministically the
/// lexicographically first), modelling offline corruption.
fn mutate_one_entry(dir: &Path, mutation: Mutation) -> Result<(), String> {
    let mut entries = Vec::new();
    collect_entries(dir, &mut entries).map_err(|e| format!("walk {}: {e}", dir.display()))?;
    entries.sort();
    let victim = entries
        .first()
        .ok_or_else(|| "no cache entries to corrupt".to_string())?;
    let bytes = std::fs::read(victim).map_err(|e| e.to_string())?;
    match mutation {
        Mutation::BitFlip => {
            let mut damaged = bytes;
            let idx = ENTRY_HEADER_LEN as usize + 2;
            if damaged.len() <= idx {
                return Err("entry too short to bit-flip".to_string());
            }
            damaged[idx] ^= 0x40;
            std::fs::write(victim, damaged).map_err(|e| e.to_string())?;
        }
        Mutation::Truncate => {
            let keep = bytes.len().saturating_sub(7);
            std::fs::write(victim, &bytes[..keep]).map_err(|e| e.to_string())?;
        }
        Mutation::ZeroLength => {
            std::fs::write(victim, []).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Sums the live (non-quarantined, non-temporary) payload bytes under
/// the cache directory — the quantity the disk bound governs.
fn live_payload_bytes(dir: &Path) -> Result<u64, String> {
    let mut entries = Vec::new();
    collect_entries(dir, &mut entries).map_err(|e| e.to_string())?;
    let mut total = 0u64;
    for path in entries {
        let len = std::fs::metadata(&path).map_err(|e| e.to_string())?.len();
        total += len.saturating_sub(ENTRY_HEADER_LEN);
    }
    Ok(total)
}

/// Collects committed entry files under the two-level shard layout,
/// skipping the quarantine directory and `.tmp` leftovers.
fn collect_entries(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    for shard1 in std::fs::read_dir(dir)? {
        let shard1 = shard1?.path();
        if !shard1.is_dir() || shard1.file_name().is_some_and(|n| n == "quarantine") {
            continue;
        }
        for shard2 in std::fs::read_dir(&shard1)? {
            let shard2 = shard2?.path();
            if !shard2.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(&shard2)? {
                let path = entry?.path();
                if path.is_file() && path.extension().is_none_or(|e| e != "tmp") {
                    out.push(path);
                }
            }
        }
    }
    Ok(())
}

/// A spawned `adgen-serve` child plus its readiness-line address.
struct ServerProc {
    child: Child,
    stdout: std::io::BufReader<ChildStdout>,
    addr: String,
}

impl ServerProc {
    fn spawn(
        serve_bin: &Path,
        reactor: &str,
        dir: &Path,
        faults: Option<&str>,
    ) -> Result<ServerProc, String> {
        let mut cmd = Command::new(serve_bin);
        cmd.arg("--cache-dir")
            .arg(dir)
            .arg("--disk-cap")
            .arg(DISK_CAP.to_string())
            .arg("--reactor")
            .arg(reactor)
            .stdout(Stdio::piped())
            .stdin(Stdio::null());
        if let Some(spec) = faults {
            cmd.arg("--faults").arg(spec);
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", serve_bin.display()))?;
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = std::io::BufReader::new(stdout);
        let addr;
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
            if n == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err("server exited before reporting readiness".to_string());
            }
            if let Some(rest) = line.trim_end().strip_prefix("adgen-serve listening on ") {
                addr = rest.to_string();
                break;
            }
        }
        Ok(ServerProc {
            child,
            stdout: reader,
            addr,
        })
    }

    /// Sends `Shutdown`, drains stdout to EOF and reaps the child,
    /// asserting a clean exit with the shutdown summary line.
    fn shutdown(&mut self) -> Result<(), String> {
        let mut client = connect(&self.addr)?;
        match client.call(&Request::Shutdown, 0) {
            Ok(Response::ShuttingDown) => {}
            Ok(other) => return Err(format!("shutdown answered {other:?}")),
            Err(e) => return Err(format!("shutdown: {e}")),
        }
        let mut rest = String::new();
        let _ = std::io::Read::read_to_string(&mut self.stdout, &mut rest);
        let status = self.child.wait().map_err(|e| e.to_string())?;
        if !status.success() {
            return Err(format!("server exited with {status}"));
        }
        if !rest.contains("adgen-serve shut down:") {
            return Err("server exited without its shutdown summary".to_string());
        }
        Ok(())
    }

    /// Waits up to `timeout` for the child to exit on its own (the
    /// fault plan's abort). Returns whether it did.
    fn wait_for_exit(&mut self, timeout: Duration) -> bool {
        let step = Duration::from_millis(50);
        let mut waited = Duration::ZERO;
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return true,
                Ok(None) if waited < timeout => {
                    std::thread::sleep(step);
                    waited += step;
                }
                _ => return false,
            }
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        // Never leak a server past a panicking scenario.
        if let Ok(None) = self.child.try_wait() {
            self.kill();
        }
    }
}

/// A unique scratch directory for one scenario's cache.
fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chaoscamp_{}_{tag}", std::process::id()))
}

/// `target/<profile>/adgen-serve`, next to this binary.
fn default_serve_bin() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("adgen-serve")))
        .unwrap_or_else(|| PathBuf::from("adgen-serve"))
}

fn require<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let v = args.next().unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid {flag} value `{v}`");
        std::process::exit(2);
    })
}

/// Hand-rolled machine-readable record, mirroring the other
/// `BENCH_*.json` documents.
fn render_chaos_json(state: &ChaosState, meta: &RunMeta) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"reactor\": \"{}\",", state.reactor);
    let _ = writeln!(s, "  \"smoke\": {},", state.smoke);
    let _ = writeln!(s, "  \"requests\": {},", state.requests);
    if meta.truncated {
        let _ = writeln!(s, "  \"truncated\": true,");
    }
    let _ = writeln!(s, "  \"scenarios\": [");
    for (i, r) in state.rows.iter().enumerate() {
        let comma = if i + 1 < state.rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"classification\": \"{}\", \
             \"corrupt_quarantined\": {}, \"disk_write_errors\": {}, \
             \"round1_hits\": {}, \"round1_misses\": {}, \"round2_hits\": {}, \
             \"bytes_ok\": {}, \"cap_ok\": {}, \"recovered\": {}, \
             \"failures\": {}}}{comma}",
            r.name,
            r.classification,
            r.corrupt_quarantined,
            r.disk_write_errors,
            r.round1_hits,
            r.round1_misses,
            r.round2_hits,
            r.bytes_ok,
            r.cap_ok,
            r.recovered,
            r.failures.len()
        );
    }
    let _ = writeln!(s, "  ],");
    let total: usize = state.rows.iter().map(|r| r.failures.len()).sum();
    let _ = writeln!(
        s,
        "  \"failures\": {total}{}",
        if meta.metrics.is_some() { "," } else { "" }
    );
    if let Some(metrics) = &meta.metrics {
        let _ = writeln!(s, "  \"metrics\": {metrics}");
    }
    let _ = writeln!(s, "}}");
    s
}
