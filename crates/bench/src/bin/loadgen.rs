//! `loadgen` — load generator and benchmark for `adgen-serve`.
//!
//! ```text
//! cargo run --release -p adgen-bench --bin loadgen               # spawn + drive a server
//! cargo run --release -p adgen-bench --bin loadgen -- --smoke    # small CI preset
//! cargo run --release -p adgen-bench --bin loadgen -- --addr HOST:PORT
//! ```
//!
//! By default the generator spawns an in-process server on an
//! ephemeral loopback port, drives it with a seed-deterministic
//! request mix for `--passes` passes (same requests every pass, so
//! pass 2 onward measures the warm cache), and writes
//! `BENCH_serve.json` with per-pass throughput, latency percentiles
//! and cache hit rates. With `--addr` it drives an external server
//! instead, metering hit rates via `Stats` snapshot deltas;
//! `--shutdown` then also sends `Shutdown` when done (the CI smoke
//! stage uses this for its clean-exit assertion).
//!
//! The generator is also a correctness harness: it remembers every
//! cold-pass response payload and byte-compares the warm passes
//! against it, and it exits nonzero when the warm hit rate falls
//! below 90% — the property the CI smoke stage relies on.
//!
//! Observability: `--trace FILE` / `--metrics` as in `repro`; the
//! server's dispatcher recording (spans, serve counters) is spliced
//! into the generator's session so one trace shows both sides.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

use adgen_bench::obs_cli::{take_obs_args, ObsJsonSink, RunMeta};
use adgen_exec::Prng;
use adgen_serve::{serve, Client, Request, Response, ServeConfig, ServerHandle, StatsSnapshot};
use adgen_synth::Encoding;

/// One pass's measurements, as reported in `BENCH_serve.json`.
struct PassRow {
    pass: usize,
    requests: usize,
    wall_s: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    hit_mem: u64,
    hit_disk: u64,
    miss: u64,
    hit_rate: f64,
}

struct LoadgenState {
    jobs: usize,
    seed: u64,
    passes: Vec<PassRow>,
}

struct Options {
    addr: Option<String>,
    requests: usize,
    passes: usize,
    seed: u64,
    jobs: usize,
    cache_dir: Option<PathBuf>,
    smoke: bool,
    shutdown: bool,
}

fn main() {
    let (raw, obs_args) = take_obs_args(std::env::args().skip(1).collect());
    let mut opt = Options {
        addr: None,
        requests: 48,
        passes: 2,
        seed: 0xADE5,
        jobs: 0,
        cache_dir: None,
        smoke: false,
        shutdown: false,
    };
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => opt.addr = Some(expect(&a, it.next())),
            "--requests" => opt.requests = parse(&a, it.next()),
            "--passes" => opt.passes = parse(&a, it.next()),
            "--seed" => opt.seed = parse(&a, it.next()),
            "--jobs" | "-j" => opt.jobs = parse(&a, it.next()),
            "--cache-dir" => opt.cache_dir = Some(PathBuf::from(expect(&a, it.next()))),
            "--smoke" => opt.smoke = true,
            "--shutdown" => opt.shutdown = true,
            other => {
                eprintln!(
                    "error: unknown argument `{other}` \
                     (known: --addr --requests --passes --seed --jobs --cache-dir \
                     --smoke --shutdown --trace --metrics)"
                );
                std::process::exit(2);
            }
        }
    }
    if opt.smoke {
        opt.requests = opt.requests.min(12);
    }
    if opt.passes == 0 {
        opt.passes = 1;
    }

    let recording = obs_args.recording();
    let mut sink = ObsJsonSink::new(
        "BENCH_serve.json",
        obs_args,
        LoadgenState {
            jobs: adgen_exec::resolve_jobs(opt.jobs),
            seed: opt.seed,
            passes: Vec::new(),
        },
        render_serve_json,
    );

    // Spawn an in-process server unless pointed at an external one.
    let (addr, handle) = match &opt.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let config = ServeConfig {
                jobs: opt.jobs,
                cache_dir: opt.cache_dir.clone(),
                observe: recording,
                ..ServeConfig::default()
            };
            let handle = match serve(config) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("error: could not start server: {e}");
                    std::process::exit(1);
                }
            };
            (handle.local_addr().to_string(), Some(handle))
        }
    };
    println!(
        "loadgen: {} requests x {} passes against {addr} (seed {:#x})",
        opt.requests, opt.passes, opt.seed
    );

    let mix = request_mix(opt.requests, opt.seed, opt.smoke);
    let mut failures = 0usize;
    // Cold-pass payloads by canonical request bytes: warm passes must
    // return byte-identical responses.
    let mut expected: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();

    for pass in 0..opt.passes {
        let mut client = match Client::connect(&addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: pass {pass}: {e}");
                std::process::exit(1);
            }
        };
        let before = stats_of(&mut client);

        // Same requests each pass, pass-dependent order: warm passes
        // prove the cache is order-insensitive.
        let mut order: Vec<usize> = (0..mix.len()).collect();
        Prng::for_stream(opt.seed, pass as u64 + 1).shuffle(&mut order);

        let mut latencies_ns: Vec<u64> = Vec::with_capacity(mix.len());
        let started = Instant::now();
        for &i in &order {
            let req = &mix[i];
            let t0 = Instant::now();
            let payload = match client.call_raw(req, 0) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: request failed: {e}");
                    std::process::exit(1);
                }
            };
            latencies_ns.push(t0.elapsed().as_nanos() as u64);
            if let Ok(Response::Error(e)) = Response::decode(&payload) {
                eprintln!("FAIL: server error for {req:?}: {e}");
                failures += 1;
            }
            match expected.entry(req.encode()) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(payload);
                }
                std::collections::hash_map::Entry::Occupied(o) => {
                    if *o.get() != payload {
                        eprintln!("FAIL: warm response differs from cold for {req:?}");
                        failures += 1;
                    }
                }
            }
        }
        let wall_s = started.elapsed().as_secs_f64();
        let after = stats_of(&mut client);

        let hit_mem = after.cache_hit_mem - before.cache_hit_mem;
        let hit_disk = after.cache_hit_disk - before.cache_hit_disk;
        let miss = after.cache_miss - before.cache_miss;
        let looked_up = hit_mem + hit_disk + miss;
        let hit_rate = if looked_up > 0 {
            (hit_mem + hit_disk) as f64 / looked_up as f64
        } else {
            0.0
        };

        latencies_ns.sort_unstable();
        let pct = |p: usize| -> f64 {
            let idx = (latencies_ns.len() - 1) * p / 100;
            latencies_ns[idx] as f64 / 1.0e6
        };
        let row = PassRow {
            pass,
            requests: mix.len(),
            wall_s,
            throughput_rps: mix.len() as f64 / wall_s,
            p50_ms: pct(50),
            p95_ms: pct(95),
            p99_ms: pct(99),
            hit_mem,
            hit_disk,
            miss,
            hit_rate,
        };
        println!(
            "pass {}: {:.2} req/s, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, \
             cache {}/{}/{} (mem/disk/miss), hit rate {:.1}%",
            row.pass,
            row.throughput_rps,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms,
            row.hit_mem,
            row.hit_disk,
            row.miss,
            row.hit_rate * 100.0
        );
        if pass > 0 && row.hit_rate < 0.9 {
            eprintln!(
                "FAIL: warm pass {} hit rate {:.1}% is below 90%",
                pass,
                row.hit_rate * 100.0
            );
            failures += 1;
        }
        sink.state().passes.push(row);
    }

    // Shut the in-process server down and fold its recording into
    // ours so the trace and metrics show both sides. An external
    // server is only shut down when asked (`--shutdown`, the CI
    // smoke stage's clean-exit path).
    if let Some(handle) = handle {
        shutdown(&addr, handle, recording);
    } else if opt.shutdown {
        match Client::connect(&addr).and_then(|mut c| c.call(&Request::Shutdown, 0)) {
            Ok(Response::ShuttingDown) => println!("loadgen: external server shutting down"),
            Ok(other) => eprintln!("warning: unexpected shutdown response {other:?}"),
            Err(e) => eprintln!("warning: shutdown request failed: {e}"),
        }
    }

    sink.finish();
    if failures > 0 {
        eprintln!("loadgen: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("loadgen: all passes clean");
}

/// The seed-deterministic request mix: mappable and restriction-
/// violating map requests, synthesis at two effort levels across the
/// encodings, and (outside smoke mode) a couple of explorations.
fn request_mix(total: usize, seed: u64, smoke: bool) -> Vec<Request> {
    let mut prng = Prng::for_stream(seed, 0);
    let mut mix: Vec<Request> = Vec::with_capacity(total);
    while mix.len() < total {
        let kind = prng.next_range(if smoke { 8 } else { 10 });
        match kind {
            // Mappable SRAG sequence: each of n addresses held for d
            // `next` pulses, the whole ring repeated twice.
            0..=3 => {
                let n = 2 + prng.next_range(6) as u32;
                let d = 1 + prng.next_range(3) as usize;
                let mut sequence = Vec::with_capacity((n as usize) * d * 2);
                for _ in 0..2 {
                    for a in 0..n {
                        sequence.extend(std::iter::repeat_n(a, d));
                    }
                }
                mix.push(Request::MapSequence { sequence });
            }
            // A DivCnt-violating sequence: the mapper must answer
            // with a typed violation, not an error.
            4 => {
                let n = 3 + prng.next_range(4) as u32;
                let mut sequence: Vec<u32> = (0..n).collect();
                sequence.push(n - 1); // uneven repetition
                sequence.extend(0..n);
                mix.push(Request::MapSequence { sequence });
            }
            // FSM synthesis of a shuffled small sequence.
            5..=7 => {
                let n = 4 + prng.next_range(5) as u32;
                let mut sequence: Vec<u32> = (0..n).collect();
                prng.shuffle(&mut sequence);
                let encoding = match prng.next_range(3) {
                    0 => Encoding::Binary,
                    1 => Encoding::Gray,
                    _ => Encoding::OneHot,
                };
                // Half the synthesis load runs under a tiny espresso
                // budget, exercising the truncated-result cache keys.
                let effort_steps = if prng.next_range(2) == 0 { 0 } else { 64 };
                mix.push(Request::Synthesize {
                    sequence,
                    encoding,
                    num_lines: n,
                    effort_steps,
                });
            }
            // Full design-space exploration of a raster workload.
            _ => {
                let side = 4u32;
                let sequence: Vec<u32> = (0..side * side).collect();
                mix.push(Request::Explore {
                    sequence,
                    width: side,
                    height: side,
                    fsm_state_limit: 0,
                });
            }
        }
    }
    mix
}

fn stats_of(client: &mut Client) -> StatsSnapshot {
    match client.call(&Request::Stats, 0) {
        Ok(Response::Stats(s)) => s,
        Ok(other) => {
            eprintln!("error: unexpected stats response {other:?}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: stats request failed: {e}");
            std::process::exit(1);
        }
    }
}

fn shutdown(addr: &str, handle: ServerHandle, recording: bool) {
    match Client::connect(addr).and_then(|mut c| c.call(&Request::Shutdown, 0)) {
        Ok(Response::ShuttingDown) => {}
        Ok(other) => eprintln!("warning: unexpected shutdown response {other:?}"),
        Err(e) => eprintln!("warning: shutdown request failed: {e}"),
    }
    let (stats, rec) = handle.join();
    println!(
        "server: queue high water {}, {} batch(es), {} deadline expiration(s)",
        stats.queue_high_water, stats.batches, stats.deadline_expired
    );
    if recording {
        if let Some(rec) = rec {
            adgen_obs::splice(rec);
        }
    }
}

fn expect(flag: &str, value: Option<String>) -> String {
    value.unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    })
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    expect(flag, value).parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} needs a valid value");
        std::process::exit(2);
    })
}

/// Renders `BENCH_serve.json` (hand-rolled, like the other bench
/// records — the workspace is zero-dependency).
fn render_serve_json(state: &LoadgenState, meta: &RunMeta) -> String {
    let mut passes = String::new();
    for (i, p) in state.passes.iter().enumerate() {
        if i > 0 {
            passes.push_str(",\n");
        }
        passes.push_str(&format!(
            "    {{\"pass\": {}, \"requests\": {}, \"wall_s\": {:.6}, \
             \"throughput_rps\": {:.3}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \
             \"p99_ms\": {:.4}, \"cache\": {{\"hit_mem\": {}, \"hit_disk\": {}, \
             \"miss\": {}, \"hit_rate\": {:.4}}}}}",
            p.pass,
            p.requests,
            p.wall_s,
            p.throughput_rps,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            p.hit_mem,
            p.hit_disk,
            p.miss,
            p.hit_rate
        ));
    }
    let metrics = meta
        .metrics
        .clone()
        .map(|m| format!(",\n  \"metrics\": {m}"))
        .unwrap_or_default();
    format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"jobs\": {},\n  \"seed\": {},\n  \
         \"truncated\": {},\n  \"passes\": [\n{passes}\n  ]{metrics}\n}}\n",
        state.jobs, state.seed, meta.truncated
    )
}
