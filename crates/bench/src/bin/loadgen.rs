//! `loadgen` — load generator and benchmark for `adgen-serve`.
//!
//! ```text
//! cargo run --release -p adgen-bench --bin loadgen               # spawn + drive a server
//! cargo run --release -p adgen-bench --bin loadgen -- --smoke    # small CI preset
//! cargo run --release -p adgen-bench --bin loadgen -- --addr HOST:PORT
//! cargo run --release -p adgen-bench --bin loadgen -- --conns 1000 --overload
//! ```
//!
//! By default the generator spawns an in-process server on an
//! ephemeral loopback port, drives it with a seed-deterministic
//! request mix for `--passes` passes (same requests every pass, so
//! pass 2 onward measures the warm cache), and writes
//! `BENCH_serve.json` with per-pass throughput, latency percentiles
//! and cache hit rates. With `--addr` it drives an external server
//! instead, metering hit rates via `Stats` snapshot deltas;
//! `--shutdown` then also sends `Shutdown` when done (the CI smoke
//! stage uses this for its clean-exit assertion).
//!
//! `--conns N` opens N concurrent connections (thousands are fine —
//! worker threads carry small stacks) and splits each pass's
//! requests across them; every connection is established before the
//! first request is sent, so the server holds all N at once. In the
//! measured passes a shed (queue-full) response is retried with
//! backoff, like a real client — which is why the warm-pass ≥ 90%
//! hit-rate bar holds even when the admission queue is tiny.
//! `--overload` appends a phase of unique (uncacheable) requests
//! fired from all connections at once — sized to overrun the
//! admission queue (`--queue-cap` bounds it when spawning) — and
//! requires every response to be either a computed result or the
//! typed queue-full rejection: a hang or a reset is a failure.
//! `--reactor auto|epoll|threaded` picks the spawned server's I/O
//! backend; `--disk-cap BYTES` bounds its disk cache tier.
//!
//! The generator is also a correctness harness: it remembers every
//! cold-pass response payload and byte-compares the warm passes
//! against it, and it exits nonzero when the warm hit rate falls
//! below 90% — the property the CI smoke stage relies on.
//!
//! Observability: `--trace FILE` / `--metrics` as in `repro`; the
//! server's dispatcher recording (spans, serve counters) is spliced
//! into the generator's session so one trace shows both sides.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use adgen_bench::obs_cli::{take_obs_args, ObsJsonSink, RunMeta};
use adgen_exec::Prng;
use adgen_serve::{
    serve, Client, Generator, ReactorKind, Request, Response, RetryPolicy, ServeConfig, ServeError,
    ServerHandle, StatsSnapshot,
};
use adgen_synth::Encoding;

/// Stack size for connection worker threads: they hold a socket, a
/// few small buffers and latency samples, so thousands of them fit.
const CONN_STACK: usize = 256 * 1024;

/// Requests each connection fires during the overload phase.
const OVERLOAD_ROUNDS: usize = 4;

/// One pass's measurements, as reported in `BENCH_serve.json`.
struct PassRow {
    pass: usize,
    requests: usize,
    wall_s: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    hit_mem: u64,
    hit_disk: u64,
    miss: u64,
    hit_rate: f64,
    shed: u64,
}

/// The overload phase's outcome, as reported in `BENCH_serve.json`.
struct OverloadRow {
    conns: usize,
    requests: usize,
    ok: u64,
    shed: u64,
    failures: u64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
}

struct LoadgenState {
    jobs: usize,
    seed: u64,
    conns: usize,
    passes: Vec<PassRow>,
    overload: Option<OverloadRow>,
}

struct Options {
    addr: Option<String>,
    requests: usize,
    passes: usize,
    seed: u64,
    jobs: usize,
    conns: usize,
    cache_dir: Option<PathBuf>,
    disk_cap: u64,
    queue_cap: usize,
    reactor: ReactorKind,
    overload: bool,
    smoke: bool,
    shutdown: bool,
}

fn main() {
    let (raw, obs_args) = take_obs_args(std::env::args().skip(1).collect());
    let mut opt = Options {
        addr: None,
        requests: 48,
        passes: 2,
        seed: 0xADE5,
        jobs: 0,
        conns: 1,
        cache_dir: None,
        disk_cap: 0,
        queue_cap: 0,
        reactor: ReactorKind::Auto,
        overload: false,
        smoke: false,
        shutdown: false,
    };
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => opt.addr = Some(expect(&a, it.next())),
            "--requests" => opt.requests = parse(&a, it.next()),
            "--passes" => opt.passes = parse(&a, it.next()),
            "--seed" => opt.seed = parse(&a, it.next()),
            "--jobs" | "-j" => opt.jobs = parse(&a, it.next()),
            "--conns" => opt.conns = parse(&a, it.next()),
            "--cache-dir" => opt.cache_dir = Some(PathBuf::from(expect(&a, it.next()))),
            "--disk-cap" => opt.disk_cap = parse(&a, it.next()),
            "--queue-cap" => opt.queue_cap = parse(&a, it.next()),
            "--reactor" => {
                let v = expect(&a, it.next());
                opt.reactor = ReactorKind::parse(&v).unwrap_or_else(|| {
                    eprintln!("error: --reactor must be auto, epoll or threaded");
                    std::process::exit(2);
                });
            }
            "--overload" => opt.overload = true,
            "--smoke" => opt.smoke = true,
            "--shutdown" => opt.shutdown = true,
            other => {
                eprintln!(
                    "error: unknown argument `{other}` \
                     (known: --addr --requests --passes --seed --jobs --conns \
                     --cache-dir --disk-cap --queue-cap --reactor --overload \
                     --smoke --shutdown --trace --metrics)"
                );
                std::process::exit(2);
            }
        }
    }
    if opt.smoke {
        opt.requests = opt.requests.min(12);
    }
    if opt.passes == 0 {
        opt.passes = 1;
    }
    if opt.conns == 0 {
        opt.conns = 1;
    }

    let recording = obs_args.recording();
    let mut sink = ObsJsonSink::new(
        "BENCH_serve.json",
        obs_args,
        LoadgenState {
            jobs: adgen_exec::resolve_jobs(opt.jobs),
            seed: opt.seed,
            conns: opt.conns,
            passes: Vec::new(),
            overload: None,
        },
        render_serve_json,
    );

    // Spawn an in-process server unless pointed at an external one.
    let (addr, handle) = match &opt.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let mut config = ServeConfig {
                jobs: opt.jobs,
                cache_dir: opt.cache_dir.clone(),
                disk_cap_bytes: opt.disk_cap,
                reactor: opt.reactor,
                observe: recording,
                ..ServeConfig::default()
            };
            if opt.queue_cap > 0 {
                config.queue_cap = opt.queue_cap;
            }
            let handle = match serve(config) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("error: could not start server: {e}");
                    std::process::exit(1);
                }
            };
            println!("loadgen: server reactor: {}", handle.resolved_reactor());
            (handle.local_addr().to_string(), Some(handle))
        }
    };
    println!(
        "loadgen: {} requests x {} passes over {} connection(s) against {addr} (seed {:#x})",
        opt.requests, opt.passes, opt.conns, opt.seed
    );

    let mix = request_mix(opt.requests, opt.seed, opt.smoke);
    let mut failures = 0usize;
    // Cold-pass payloads by canonical request bytes: warm passes must
    // return byte-identical responses.
    let mut expected: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();

    for pass in 0..opt.passes {
        let mut meter = match Client::connect(&addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: pass {pass}: {e}");
                std::process::exit(1);
            }
        };
        let before = stats_of(&mut meter);

        // Same requests each pass, pass-dependent order: warm passes
        // prove the cache is order-insensitive.
        let mut order: Vec<usize> = (0..mix.len()).collect();
        Prng::for_stream(opt.seed, pass as u64 + 1).shuffle(&mut order);

        let started = Instant::now();
        let (mut latencies_ns, results) = drive_pass(&addr, &mix, &order, opt.conns);
        let wall_s = started.elapsed().as_secs_f64();
        let after = stats_of(&mut meter);

        for (i, payload) in results {
            let req = &mix[i];
            if let Ok(Response::Error(e)) = Response::decode(&payload) {
                eprintln!("FAIL: server error for {req:?}: {e}");
                failures += 1;
            }
            match expected.entry(req.encode()) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(payload);
                }
                std::collections::hash_map::Entry::Occupied(o) => {
                    if *o.get() != payload {
                        eprintln!("FAIL: warm response differs from cold for {req:?}");
                        failures += 1;
                    }
                }
            }
        }

        let hit_mem = after.cache_hit_mem - before.cache_hit_mem;
        let hit_disk = after.cache_hit_disk - before.cache_hit_disk;
        let miss = after.cache_miss - before.cache_miss;
        let looked_up = hit_mem + hit_disk + miss;
        let hit_rate = if looked_up > 0 {
            (hit_mem + hit_disk) as f64 / looked_up as f64
        } else {
            0.0
        };

        latencies_ns.sort_unstable();
        let row = PassRow {
            pass,
            requests: mix.len(),
            wall_s,
            throughput_rps: mix.len() as f64 / wall_s,
            p50_ms: percentile_ms(&latencies_ns, 500),
            p95_ms: percentile_ms(&latencies_ns, 950),
            p99_ms: percentile_ms(&latencies_ns, 990),
            p999_ms: percentile_ms(&latencies_ns, 999),
            hit_mem,
            hit_disk,
            miss,
            hit_rate,
            shed: after.shed - before.shed,
        };
        println!(
            "pass {}: {:.2} req/s, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms, \
             cache {}/{}/{} (mem/disk/miss), hit rate {:.1}%",
            row.pass,
            row.throughput_rps,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms,
            row.p999_ms,
            row.hit_mem,
            row.hit_disk,
            row.miss,
            row.hit_rate * 100.0
        );
        if pass > 0 && row.hit_rate < 0.9 {
            eprintln!(
                "FAIL: warm pass {} hit rate {:.1}% is below 90%",
                pass,
                row.hit_rate * 100.0
            );
            failures += 1;
        }
        sink.state().passes.push(row);
    }

    if opt.overload {
        let mut meter = Client::connect(&addr).unwrap_or_else(|e| {
            eprintln!("error: overload meter: {e}");
            std::process::exit(1);
        });
        let before = stats_of(&mut meter);
        let row = overload_phase(&addr, opt.conns, opt.seed);
        let after = stats_of(&mut meter);
        println!(
            "overload: {} requests over {} conns: {} ok, {} shed, {} failure(s); \
             p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms (server shed {} total)",
            row.requests,
            row.conns,
            row.ok,
            row.shed,
            row.failures,
            row.p50_ms,
            row.p99_ms,
            row.p999_ms,
            after.shed - before.shed,
        );
        failures += row.failures as usize;
        sink.state().overload = Some(row);
    }

    // Shut the in-process server down and fold its recording into
    // ours so the trace and metrics show both sides. An external
    // server is only shut down when asked (`--shutdown`, the CI
    // smoke stage's clean-exit path).
    if let Some(handle) = handle {
        shutdown(&addr, handle, recording);
    } else if opt.shutdown {
        match Client::connect(&addr).and_then(|mut c| c.call(&Request::Shutdown, 0)) {
            Ok(Response::ShuttingDown) => println!("loadgen: external server shutting down"),
            Ok(other) => eprintln!("warning: unexpected shutdown response {other:?}"),
            Err(e) => eprintln!("warning: shutdown request failed: {e}"),
        }
    }

    sink.finish();
    if failures > 0 {
        eprintln!("loadgen: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("loadgen: all passes clean");
}

/// Drives one pass's shuffled `order` over `conns` concurrent
/// connections (round-robin split). Every connection — including the
/// idle ones when there are more connections than requests — is
/// established and pinged before the barrier releases the first
/// request, so the server really holds `conns` sockets at once.
/// Returns per-request latencies and `(mix index, payload)` pairs.
#[allow(clippy::type_complexity)]
fn drive_pass(
    addr: &str,
    mix: &[Request],
    order: &[usize],
    conns: usize,
) -> (Vec<u64>, Vec<(usize, Vec<u8>)>) {
    let barrier = Arc::new(Barrier::new(conns));
    let workers: Vec<_> = (0..conns)
        .map(|w| {
            let addr = addr.to_string();
            let slice: Vec<usize> = order.iter().skip(w).step_by(conns).copied().collect();
            let requests: Vec<(usize, Request)> =
                slice.into_iter().map(|i| (i, mix[i].clone())).collect();
            let barrier = Arc::clone(&barrier);
            std::thread::Builder::new()
                .name(format!("loadgen-conn-{w}"))
                .stack_size(CONN_STACK)
                .spawn(move || -> Result<_, String> {
                    let mut client =
                        Client::connect(&addr).map_err(|e| format!("conn {w}: {e}"))?;
                    if requests.is_empty() {
                        // Prove the connection is live, not just open.
                        client
                            .call(&Request::Ping, 0)
                            .map_err(|e| format!("conn {w} ping: {e}"))?;
                    }
                    barrier.wait();
                    // A shed request is backpressure, not an answer:
                    // the client's typed retry backs off and re-offers
                    // (distinct seeds per connection desynchronize the
                    // re-offer storm). Latency covers the whole wait,
                    // and the budget roughly matches the old ad-hoc
                    // loop's 1000 × 2 ms worst case.
                    let policy = RetryPolicy {
                        max_attempts: 256,
                        base_delay: Duration::from_millis(1),
                        cap_delay: Duration::from_millis(8),
                        seed: 0x10ad_6e40 ^ w as u64,
                    };
                    let mut latencies = Vec::with_capacity(requests.len());
                    let mut results = Vec::with_capacity(requests.len());
                    for (i, req) in requests {
                        let t0 = Instant::now();
                        let payload = client
                            .call_raw_retry(&req, 0, &policy)
                            .map_err(|e| format!("conn {w}: {e}"))?;
                        latencies.push(t0.elapsed().as_nanos() as u64);
                        results.push((i, payload));
                    }
                    Ok((latencies, results))
                })
                .expect("spawn connection worker")
        })
        .collect();

    let mut latencies = Vec::with_capacity(order.len());
    let mut results = Vec::with_capacity(order.len());
    for worker in workers {
        match worker.join().expect("connection worker panicked") {
            Ok((lat, res)) => {
                latencies.extend(lat);
                results.extend(res);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    (latencies, results)
}

/// The overload phase: every connection fires [`OVERLOAD_ROUNDS`]
/// unique (per connection and round, hence uncacheable) synthesis
/// requests as fast as it can. The contract under overload is typed
/// degradation: each response must be a computed result or the
/// server's `QueueFull` rejection — a transport error, an unexpected
/// error kind, or a hang (surfaced by a read timeout) is a failure.
fn overload_phase(addr: &str, conns: usize, seed: u64) -> OverloadRow {
    let barrier = Arc::new(Barrier::new(conns));
    let workers: Vec<_> = (0..conns)
        .map(|w| {
            let addr = addr.to_string();
            let barrier = Arc::clone(&barrier);
            std::thread::Builder::new()
                .name(format!("loadgen-over-{w}"))
                .stack_size(CONN_STACK)
                .spawn(move || {
                    let mut ok = 0u64;
                    let mut shed = 0u64;
                    let mut failures = 0u64;
                    let mut latencies = Vec::with_capacity(OVERLOAD_ROUNDS);
                    let mut client = match Client::connect(&addr) {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("FAIL: overload conn {w}: {e}");
                            return (0, 0, OVERLOAD_ROUNDS as u64, latencies);
                        }
                    };
                    // A hung server must become a visible failure,
                    // not a stuck benchmark.
                    let _ = client.set_read_timeout(Some(Duration::from_secs(60)));
                    barrier.wait();
                    for round in 0..OVERLOAD_ROUNDS {
                        let tag = (w * OVERLOAD_ROUNDS + round) as u64;
                        let mut sequence: Vec<u32> = (0..10).collect();
                        Prng::for_stream(seed ^ 0x0ae8_10ad, tag).shuffle(&mut sequence);
                        let req = Request::Synthesize {
                            sequence,
                            encoding: Encoding::Binary,
                            num_lines: 10,
                            // Unique effort budgets keep cache keys
                            // distinct even when two shuffles collide.
                            effort_steps: 100_000 + tag,
                            generator: Generator::Fsm,
                        };
                        let t0 = Instant::now();
                        match client.call(&req, 0) {
                            Ok(Response::Synthesized(_)) => ok += 1,
                            Ok(Response::Error(ServeError::QueueFull { .. })) => shed += 1,
                            Ok(other) => {
                                eprintln!("FAIL: overload conn {w}: unexpected {other:?}");
                                failures += 1;
                            }
                            Err(e) => {
                                eprintln!("FAIL: overload conn {w}: {e}");
                                failures += 1;
                            }
                        }
                        latencies.push(t0.elapsed().as_nanos() as u64);
                    }
                    (ok, shed, failures, latencies)
                })
                .expect("spawn overload worker")
        })
        .collect();

    let (mut ok, mut shed, mut failures) = (0u64, 0u64, 0u64);
    let mut latencies: Vec<u64> = Vec::with_capacity(conns * OVERLOAD_ROUNDS);
    for worker in workers {
        let (o, s, f, lat) = worker.join().expect("overload worker panicked");
        ok += o;
        shed += s;
        failures += f;
        latencies.extend(lat);
    }
    latencies.sort_unstable();
    OverloadRow {
        conns,
        requests: conns * OVERLOAD_ROUNDS,
        ok,
        shed,
        failures,
        p50_ms: percentile_ms(&latencies, 500),
        p95_ms: percentile_ms(&latencies, 950),
        p99_ms: percentile_ms(&latencies, 990),
        p999_ms: percentile_ms(&latencies, 999),
    }
}

/// The `per_mille`-th percentile (500 = p50, 999 = p999) of sorted
/// nanosecond samples, in milliseconds.
fn percentile_ms(sorted_ns: &[u64], per_mille: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = (sorted_ns.len() - 1) * per_mille / 1000;
    sorted_ns[idx] as f64 / 1.0e6
}

/// The seed-deterministic request mix: mappable and restriction-
/// violating map requests, synthesis at two effort levels across the
/// encodings, and (outside smoke mode) a couple of explorations.
fn request_mix(total: usize, seed: u64, smoke: bool) -> Vec<Request> {
    let mut prng = Prng::for_stream(seed, 0);
    let mut mix: Vec<Request> = Vec::with_capacity(total);
    while mix.len() < total {
        let kind = prng.next_range(if smoke { 8 } else { 10 });
        match kind {
            // Mappable SRAG sequence: each of n addresses held for d
            // `next` pulses, the whole ring repeated twice.
            0..=3 => {
                let n = 2 + prng.next_range(6) as u32;
                let d = 1 + prng.next_range(3) as usize;
                let mut sequence = Vec::with_capacity((n as usize) * d * 2);
                for _ in 0..2 {
                    for a in 0..n {
                        sequence.extend(std::iter::repeat_n(a, d));
                    }
                }
                mix.push(Request::MapSequence { sequence });
            }
            // A DivCnt-violating sequence: the mapper must answer
            // with a typed violation, not an error.
            4 => {
                let n = 3 + prng.next_range(4) as u32;
                let mut sequence: Vec<u32> = (0..n).collect();
                sequence.push(n - 1); // uneven repetition
                sequence.extend(0..n);
                mix.push(Request::MapSequence { sequence });
            }
            // FSM synthesis of a shuffled small sequence.
            5..=7 => {
                let n = 4 + prng.next_range(5) as u32;
                let mut sequence: Vec<u32> = (0..n).collect();
                prng.shuffle(&mut sequence);
                let encoding = match prng.next_range(3) {
                    0 => Encoding::Binary,
                    1 => Encoding::Gray,
                    _ => Encoding::OneHot,
                };
                // Half the synthesis load runs under a tiny espresso
                // budget, exercising the truncated-result cache keys.
                let effort_steps = if prng.next_range(2) == 0 { 0 } else { 64 };
                // A quarter of the load takes the v4 affine pipeline,
                // whose cache keys never alias the FSM entries.
                let generator = if prng.next_range(4) == 0 {
                    Generator::Affine
                } else {
                    Generator::Fsm
                };
                mix.push(Request::Synthesize {
                    sequence,
                    encoding,
                    num_lines: n,
                    effort_steps,
                    generator,
                });
            }
            // Full design-space exploration of a raster workload.
            _ => {
                let side = 4u32;
                let sequence: Vec<u32> = (0..side * side).collect();
                mix.push(Request::Explore {
                    sequence,
                    width: side,
                    height: side,
                    fsm_state_limit: 0,
                });
            }
        }
    }
    mix
}

fn stats_of(client: &mut Client) -> StatsSnapshot {
    match client.call(&Request::Stats, 0) {
        Ok(Response::Stats(s)) => s,
        Ok(other) => {
            eprintln!("error: unexpected stats response {other:?}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: stats request failed: {e}");
            std::process::exit(1);
        }
    }
}

fn shutdown(addr: &str, handle: ServerHandle, recording: bool) {
    match Client::connect(addr).and_then(|mut c| c.call(&Request::Shutdown, 0)) {
        Ok(Response::ShuttingDown) => {}
        Ok(other) => eprintln!("warning: unexpected shutdown response {other:?}"),
        Err(e) => eprintln!("warning: shutdown request failed: {e}"),
    }
    let (stats, rec) = match handle.join() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "server: queue high water {}, {} batch(es), {} deadline expiration(s), \
         {} shed, coalesced {}+{}",
        stats.queue_high_water,
        stats.batches,
        stats.deadline_expired,
        stats.shed,
        stats.coalesce_leaders,
        stats.coalesce_waiters,
    );
    if recording {
        if let Some(rec) = rec {
            adgen_obs::splice(rec);
        }
    }
}

fn expect(flag: &str, value: Option<String>) -> String {
    value.unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    })
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    expect(flag, value).parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} needs a valid value");
        std::process::exit(2);
    })
}

/// Renders `BENCH_serve.json` (hand-rolled, like the other bench
/// records — the workspace is zero-dependency).
fn render_serve_json(state: &LoadgenState, meta: &RunMeta) -> String {
    let mut passes = String::new();
    for (i, p) in state.passes.iter().enumerate() {
        if i > 0 {
            passes.push_str(",\n");
        }
        passes.push_str(&format!(
            "    {{\"pass\": {}, \"requests\": {}, \"wall_s\": {:.6}, \
             \"throughput_rps\": {:.3}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \
             \"p99_ms\": {:.4}, \"p999_ms\": {:.4}, \"shed\": {}, \
             \"cache\": {{\"hit_mem\": {}, \"hit_disk\": {}, \
             \"miss\": {}, \"hit_rate\": {:.4}}}}}",
            p.pass,
            p.requests,
            p.wall_s,
            p.throughput_rps,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            p.p999_ms,
            p.shed,
            p.hit_mem,
            p.hit_disk,
            p.miss,
            p.hit_rate
        ));
    }
    let overload = state
        .overload
        .as_ref()
        .map(|o| {
            format!(
                ",\n  \"overload\": {{\"conns\": {}, \"requests\": {}, \"ok\": {}, \
                 \"shed\": {}, \"failures\": {}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \
                 \"p99_ms\": {:.4}, \"p999_ms\": {:.4}}}",
                o.conns,
                o.requests,
                o.ok,
                o.shed,
                o.failures,
                o.p50_ms,
                o.p95_ms,
                o.p99_ms,
                o.p999_ms
            )
        })
        .unwrap_or_default();
    let metrics = meta
        .metrics
        .clone()
        .map(|m| format!(",\n  \"metrics\": {m}"))
        .unwrap_or_default();
    format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"jobs\": {},\n  \"seed\": {},\n  \
         \"conns\": {},\n  \"truncated\": {},\n  \"passes\": [\n{passes}\n  ]{overload}{metrics}\n}}\n",
        state.jobs, state.seed, state.conns, meta.truncated
    )
}
