//! `simbench` — throughput benchmark of the bit-sliced fault-replay
//! kernel against the scalar levelized engine, on the paper's Fig. 7
//! motion-estimation workload.
//!
//! Both engines run the identical select-ring fault universe (the one
//! `compare_resilience` and `faultcamp` use) over the plain and
//! hardened SRAG pairs. The scalar engine replays one fault per full
//! simulation; the sliced engine packs 63 faults plus one golden lane
//! into each 64-lane pass. The benchmark reports wall-clock for both,
//! the stimulus-throughput speedup, and the lane utilization of the
//! packed passes — and verifies the two engines classify every fault
//! identically before trusting any timing.
//!
//! ```text
//! cargo run --release -p adgen-bench --bin simbench              # 8x8 array
//! cargo run --release -p adgen-bench --bin simbench -- --smoke  # 4x4, CI-sized
//! cargo run --release -p adgen-bench --bin simbench -- --seed 7 --iters 5
//! ```
//!
//! Results land in `BENCH_sim.json`. The process exits nonzero if the
//! sliced and scalar classifications diverge (any mode), or if the
//! full-size run fails its performance contract: at least an 8x
//! speedup over the scalar engine on the 8x8 universe.
//!
//! Observability (see `DESIGN.md` §9): `--trace FILE` writes a Chrome
//! trace-event JSON, `--metrics` prints the deterministic profile and
//! appends a `"metrics"` block to `BENCH_sim.json`.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use adgen_bench::obs_cli::{take_obs_args, ObsJsonSink, RunMeta};
use adgen_bench::Fig7Recipe;

use adgen_core::composite::Srag2d;
use adgen_explorer::ring_fault_universe;
use adgen_fault::{
    run_campaign, run_campaign_scalar, CampaignReport, CampaignSpec, SLICED_FAULT_LANES,
};
use adgen_netlist::NetId;
use adgen_seq::{ArrayShape, Layout};

/// Measured comparison for one design variant.
struct VariantResult {
    name: &'static str,
    faults: usize,
    passes: usize,
    lane_utilization_pct: f64,
    scalar_s: f64,
    sliced_s: f64,
    report: CampaignReport,
    diverged: bool,
}

impl VariantResult {
    fn speedup(&self) -> f64 {
        self.scalar_s / self.sliced_s
    }
}

/// Everything `BENCH_sim.json` reports.
struct SimState {
    shape: ArrayShape,
    cycles: u32,
    seed: u64,
    seu_samples: usize,
    iters: u32,
    variants: Vec<VariantResult>,
}

fn main() -> ExitCode {
    let mut seed = 2026u64;
    let mut smoke = false;
    let mut iters = 0u32; // 0 = mode default
    let (raw, obs_args) = take_obs_args(std::env::args().skip(1).collect());
    let mut args = raw.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--seed" => seed = parse_or_die(&mut args, &a),
            "--iters" => iters = parse_or_die(&mut args, &a),
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!(
                    "usage: simbench [--smoke] [--seed N] [--iters N] [--trace FILE] [--metrics]"
                );
                std::process::exit(2);
            }
        }
    }
    // Fig. 7 configuration, matching `faultcamp`: block-matching
    // motion estimation with 2x2 macroblocks. The smoke run exists to
    // gate classification agreement in CI, so one timed iteration is
    // enough; the full run times best-of-3.
    let recipe = Fig7Recipe::new(smoke);
    if iters == 0 {
        iters = recipe.simbench_iters();
    }
    let shape = recipe.shape;
    let seq = recipe.sequence();
    let cycles = recipe.cycles();
    let seu_samples = recipe.seu_samples;

    println!(
        "simbench: motion_est {}x{} mb=2, {} cycles, {} SEU samples, seed {}, best of {}",
        shape.width(),
        shape.height(),
        cycles,
        seu_samples,
        seed,
        iters
    );

    let mut sink = ObsJsonSink::new(
        "BENCH_sim.json",
        obs_args,
        SimState {
            shape,
            cycles,
            seed,
            seu_samples,
            iters,
            variants: Vec::new(),
        },
        render_sim_json,
    );

    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).expect("paper workload maps");
    let plain = pair.elaborate().expect("paper workload elaborates");
    let hardened = pair
        .elaborate_hardened()
        .expect("paper workload elaborates hardened");

    // Exactly the universes `compare_resilience` runs: stuck-ats on
    // every select line, SEUs on the ring flip-flops.
    let plain_ring: Vec<NetId> = plain
        .row_lines
        .iter()
        .chain(&plain.col_lines)
        .copied()
        .collect();
    let plain_faults = ring_fault_universe(
        &plain.netlist,
        &plain_ring,
        &plain_ring,
        cycles,
        seu_samples,
        seed,
    );
    let plain_spec = CampaignSpec {
        netlist: &plain.netlist,
        cycles,
        alarm_output: None,
    };
    let hard_lines: Vec<NetId> = hardened
        .row_lines
        .iter()
        .chain(&hardened.col_lines)
        .copied()
        .collect();
    let hard_ring: Vec<NetId> = hardened
        .row_ring_ffs
        .iter()
        .chain(&hardened.col_ring_ffs)
        .copied()
        .collect();
    let hard_faults = ring_fault_universe(
        &hardened.netlist,
        &hard_lines,
        &hard_ring,
        cycles,
        seu_samples,
        seed,
    );
    let hard_spec = CampaignSpec {
        netlist: &hardened.netlist,
        cycles,
        alarm_output: Some(hardened.alarm_output_index()),
    };

    let runs = [
        ("srag-plain", &plain_spec, &plain_faults),
        ("srag-hardened", &hard_spec, &hard_faults),
    ];
    for (name, spec, faults) in runs {
        let v = measure_variant(name, spec, faults, iters);
        println!(
            "  {:<14} {:>4} faults in {:>2} packed passes ({:.1}% lane utilization)",
            v.name, v.faults, v.passes, v.lane_utilization_pct
        );
        println!(
            "  {:<14} scalar {:>9.3} ms, sliced {:>9.3} ms, speedup {:.1}x{}",
            "",
            v.scalar_s * 1e3,
            v.sliced_s * 1e3,
            v.speedup(),
            if v.diverged { "  [DIVERGED]" } else { "" }
        );
        sink.state().variants.push(v);
    }

    let diverged = sink.state().variants.iter().any(|v| v.diverged);
    let min_speedup = sink
        .state()
        .variants
        .iter()
        .map(VariantResult::speedup)
        .fold(f64::INFINITY, f64::min);
    sink.finish();

    if diverged {
        eprintln!("FAIL: sliced and scalar campaigns classify faults differently");
        return ExitCode::FAILURE;
    }
    println!("  classifications: byte-identical across engines");
    if !smoke && min_speedup < 8.0 {
        eprintln!("FAIL: sliced speedup {min_speedup:.1}x below the 8x contract");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Times both engines on one (spec, universe) pair, best-of-`iters`,
/// and cross-checks that every classification matches. The scalar
/// engine is timed first so cache warm-up, if anything, favours it.
fn measure_variant(
    name: &'static str,
    spec: &CampaignSpec,
    faults: &[adgen_fault::Fault],
    iters: u32,
) -> VariantResult {
    let mut scalar_s = f64::INFINITY;
    let mut sliced_s = f64::INFINITY;
    let mut scalar_report = None;
    let mut sliced_report = None;
    for _ in 0..iters {
        let started = Instant::now();
        let r = run_campaign_scalar(spec, faults, 1);
        scalar_s = scalar_s.min(started.elapsed().as_secs_f64());
        scalar_report = Some(r);

        let started = Instant::now();
        let r = run_campaign(spec, faults, 1);
        sliced_s = sliced_s.min(started.elapsed().as_secs_f64());
        sliced_report = Some(r);
    }
    let scalar_report = scalar_report.expect("at least one iteration");
    let sliced_report = sliced_report.expect("at least one iteration");
    let diverged = scalar_report != sliced_report;

    // Each packed pass carries one chunk of up to 63 faults plus the
    // golden lane; utilization is occupied lanes over 64 per pass.
    let passes = faults.len().div_ceil(SLICED_FAULT_LANES);
    let lane_utilization_pct = if passes == 0 {
        0.0
    } else {
        100.0 * (faults.len() + passes) as f64 / (passes * 64) as f64
    };
    VariantResult {
        name,
        faults: faults.len(),
        passes,
        lane_utilization_pct,
        scalar_s,
        sliced_s,
        report: sliced_report,
        diverged,
    }
}

fn parse_or_die<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let v = args.next().unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid {flag} value `{v}`");
        std::process::exit(2);
    })
}

/// Hand-rolled machine-readable record, mirroring `BENCH_fault.json`.
fn render_sim_json(state: &SimState, meta: &RunMeta) -> String {
    let SimState {
        shape,
        cycles,
        seed,
        seu_samples,
        iters,
        variants,
    } = state;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"workload\": \"motion_est {}x{} mb=2 m=0\",",
        shape.width(),
        shape.height()
    );
    let _ = writeln!(s, "  \"cycles\": {cycles},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"seu_samples\": {seu_samples},");
    let _ = writeln!(s, "  \"iters\": {iters},");
    let _ = writeln!(s, "  \"fault_lanes_per_pass\": {SLICED_FAULT_LANES},");
    if meta.truncated {
        let _ = writeln!(s, "  \"truncated\": true,");
    }
    let _ = writeln!(s, "  \"variants\": [");
    for (i, v) in variants.iter().enumerate() {
        let comma = if i + 1 < variants.len() { "," } else { "" };
        let r = &v.report;
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"faults\": {}, \"passes\": {}, \
             \"lane_utilization_pct\": {:.2}, \"scalar_ms\": {:.3}, \"sliced_ms\": {:.3}, \
             \"speedup\": {:.2}, \"identical\": {}, \"detected\": {}, \"alarmed\": {}, \
             \"silent\": {}, \"benign\": {}}}{comma}",
            v.name,
            v.faults,
            v.passes,
            v.lane_utilization_pct,
            v.scalar_s * 1e3,
            v.sliced_s * 1e3,
            v.speedup(),
            !v.diverged,
            r.detected(),
            r.alarmed(),
            r.silent(),
            r.benign(),
        );
    }
    let _ = writeln!(s, "  ]{}", if meta.metrics.is_some() { "," } else { "" });
    if let Some(metrics) = &meta.metrics {
        let _ = writeln!(s, "  \"metrics\": {metrics}");
    }
    let _ = writeln!(s, "}}");
    s
}
