//! The experiment kernels, one per paper artefact.
//!
//! Parameter choices (documented in `DESIGN.md` §4): array sizes
//! follow the paper (16×16 … 256×256 for Figs. 8–10, sequence lengths
//! 8 … 256 for Figs. 3–4); the macroblock for motion estimation
//! scales as `max(2, N/8)` so the block structure stays proportional
//! to the frame as in block-based codecs.
//!
//! Every sweep takes a `jobs` argument and fans its independent
//! (workload × array-size) points across that many worker threads via
//! [`adgen_exec::par_map`] (`0` means all available cores, `1` runs
//! serially on the caller's thread). Results are always returned in
//! input order, byte-identical across `jobs` values — see the
//! determinism test in `tests/properties.rs`.

use std::time::Instant;

use adgen_exec::par_map;
use adgen_obs as obs;

use adgen_cntag::{component_delays, CntAgNetlist, CntAgSpec};
use adgen_core::composite::Srag2d;
use adgen_core::{SragNetlist, SragSpec};
use adgen_explorer::{compare_srag_cntag, ComparisonRow};
use adgen_netlist::{AreaReport, Library, TimingAnalysis};
use adgen_seq::{workloads, AddressSequence, ArrayShape, Layout};
use adgen_synth::{Encoding, Fsm, OutputStyle};

/// The array sizes of paper Figs. 8–10.
pub const PAPER_ARRAY_SIZES: [u32; 5] = [16, 32, 64, 128, 256];

/// The sequence lengths of paper Figs. 3–4.
pub const PAPER_SEQUENCE_LENGTHS: [u32; 6] = [8, 16, 32, 64, 128, 256];

/// Macroblock edge used for an `n × n` frame.
pub fn macroblock_for(n: u32) -> u32 {
    (n / 8).max(2)
}

/// One point of Figs. 3 and 4: shift register vs symbolic FSM on the
/// incremental sequence `0 … n-1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig34Row {
    /// Sequence length `N`.
    pub n: u32,
    /// Shift-register (one-hot ring) delay, ns.
    pub shift_register_delay_ns: f64,
    /// Binary-encoded symbolic FSM delay, ns.
    pub fsm_delay_ns: f64,
    /// Shift-register area, cell units.
    pub shift_register_area: f64,
    /// FSM area, cell units.
    pub fsm_area: f64,
}

/// Computes Figs. 3 and 4 for the given sequence lengths, one worker
/// per length.
///
/// # Panics
///
/// Panics if synthesis of either arm fails (an internal error: the
/// incremental sequence is always implementable).
pub fn fig3_4(lengths: &[u32], jobs: usize) -> Vec<Fig34Row> {
    let _span = obs::span("bench.fig3_4");
    let library = Library::vcl018();
    par_map(lengths, jobs, |_, &n| {
        let ring = SragNetlist::elaborate(&SragSpec::ring(n)).expect("ring elaborates");
        let ring_t = TimingAnalysis::run(&ring.netlist, &library).expect("ring times");
        let ring_a = AreaReport::of(&ring.netlist, &library);

        let seq: Vec<u32> = (0..n).collect();
        let fsm = Fsm::cyclic_sequence(&seq)
            .expect("nonempty")
            .synthesize(
                Encoding::Binary,
                OutputStyle::SelectLines {
                    num_lines: n as usize,
                },
            )
            .expect("FSM synthesizes");
        let fsm_t = TimingAnalysis::run(&fsm.netlist, &library).expect("FSM times");
        let fsm_a = AreaReport::of(&fsm.netlist, &library);

        Fig34Row {
            n,
            shift_register_delay_ns: ring_t.critical_path_ns(),
            fsm_delay_ns: fsm_t.critical_path_ns(),
            shift_register_area: ring_a.total(),
            fsm_area: fsm_a.total(),
        }
    })
}

/// One point of the §3 synthesis-runtime comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthTimeRow {
    /// Sequence length `N`.
    pub n: u32,
    /// Wall-clock to synthesize the symbolic FSM, seconds.
    pub fsm_seconds: f64,
    /// Wall-clock to generate the shift-register solution, seconds.
    pub shift_register_seconds: f64,
}

/// Measures synthesis wall-clock for both arms of §3 (the paper
/// reports 6 h vs 36 min at N = 256 on a Sun Ultra-5; the absolute
/// times differ wildly across tooling, the *growth* is the claim).
///
/// With `jobs > 1` the points run concurrently, so the reported
/// wall-clocks include scheduler contention; pass `jobs = 1` when the
/// per-point timings themselves are the artefact.
///
/// # Panics
///
/// Panics if either arm fails to synthesize.
pub fn synth_time(lengths: &[u32], jobs: usize) -> Vec<SynthTimeRow> {
    let _span = obs::span("bench.synth_time");
    par_map(lengths, jobs, |_, &n| {
        let started = Instant::now();
        let _ring = SragNetlist::elaborate(&SragSpec::ring(n)).expect("ring");
        let shift_register_seconds = started.elapsed().as_secs_f64();

        let seq: Vec<u32> = (0..n).collect();
        let started = Instant::now();
        let _fsm = Fsm::cyclic_sequence(&seq)
            .expect("nonempty")
            .synthesize(
                Encoding::Binary,
                OutputStyle::SelectLines {
                    num_lines: n as usize,
                },
            )
            .expect("FSM");
        let fsm_seconds = started.elapsed().as_secs_f64();
        SynthTimeRow {
            n,
            fsm_seconds,
            shift_register_seconds,
        }
    })
}

/// One point of Figs. 8, 9 and 10: write/read generators for the
/// motion-estimation workload on an `n × n` array, plus the CntAG
/// component breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8910Row {
    /// Array edge (`img_width = img_height = n`).
    pub n: u32,
    /// SRAG delay on the write (incremental) sequence, ns.
    pub srag_write_delay_ns: f64,
    /// CntAG delay on the write sequence, ns.
    pub cntag_write_delay_ns: f64,
    /// SRAG delay on the read (block-matching) sequence, ns.
    pub srag_read_delay_ns: f64,
    /// CntAG delay on the read sequence, ns.
    pub cntag_read_delay_ns: f64,
    /// SRAG write-generator area, cell units.
    pub srag_write_area: f64,
    /// CntAG write-generator area, cell units.
    pub cntag_write_area: f64,
    /// SRAG read-generator area, cell units.
    pub srag_read_area: f64,
    /// CntAG read-generator area, cell units.
    pub cntag_read_area: f64,
    /// Fig. 9: read-side CntAG counter delay, ns.
    pub counter_delay_ns: f64,
    /// Fig. 9: row-decoder delay, ns.
    pub row_decoder_delay_ns: f64,
    /// Fig. 9: column-decoder delay, ns.
    pub col_decoder_delay_ns: f64,
}

/// Computes Figs. 8–10 for the given array sizes, one worker per
/// size.
///
/// # Panics
///
/// Panics if mapping or elaboration fails (the motion-estimation
/// streams are always SRAG-mappable).
pub fn fig8_9_10(sizes: &[u32], jobs: usize) -> Vec<Fig8910Row> {
    let _span = obs::span("bench.fig8_9_10");
    let library = Library::vcl018();
    par_map(sizes, jobs, |_, &n| {
        let shape = ArrayShape::new(n, n);
        let mb = macroblock_for(n);

        let write_seq = workloads::motion_est_write(shape);
        let read_seq = workloads::motion_est_read(shape, mb, mb, 0);
        let write_cmp = compare_srag_cntag(&write_seq, shape, &CntAgSpec::raster(shape), &library)
            .expect("write generators");
        let read_program = CntAgSpec::motion_est(shape, mb, mb, 0);
        let read_cmp =
            compare_srag_cntag(&read_seq, shape, &read_program, &library).expect("read generators");
        let comps = component_delays(&read_program, &library).expect("components");

        Fig8910Row {
            n,
            srag_write_delay_ns: write_cmp.srag_delay_ps / 1000.0,
            cntag_write_delay_ns: write_cmp.cntag_delay_ps / 1000.0,
            srag_read_delay_ns: read_cmp.srag_delay_ps / 1000.0,
            cntag_read_delay_ns: read_cmp.cntag_delay_ps / 1000.0,
            srag_write_area: write_cmp.srag_area,
            cntag_write_area: write_cmp.cntag_area,
            srag_read_area: read_cmp.srag_area,
            cntag_read_area: read_cmp.cntag_area,
            counter_delay_ns: comps.counter_ps / 1000.0,
            row_decoder_delay_ns: comps.row_decoder_ps / 1000.0,
            col_decoder_delay_ns: comps.col_decoder_ps / 1000.0,
        }
    })
}

/// One row of paper Table 3: average delay-reduction and
/// area-increase factors for a named workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Workload name as in the paper.
    pub example: &'static str,
    /// Average CntAG-delay / SRAG-delay over the size sweep.
    pub avg_delay_reduction: f64,
    /// Average SRAG-area / CntAG-area over the size sweep.
    pub avg_area_increase: f64,
    /// The per-size comparisons behind the averages.
    pub rows: Vec<(u32, ComparisonRow)>,
}

/// Computes Table 3 over the given array sizes (the paper does not
/// state its sizes; 16–64 keeps the sweep matched to Figs. 8–10's
/// lower half and runs in seconds).
///
/// # Panics
///
/// Panics if mapping or elaboration fails for a workload that must
/// map.
/// A named workload builder for the Table 3 sweep (`Sync` so the
/// parallel point sweep can share it across workers).
type WorkloadBuilder = Box<dyn Fn(ArrayShape) -> (AddressSequence, CntAgSpec) + Send + Sync>;

pub fn table3(sizes: &[u32], jobs: usize) -> Vec<Table3Row> {
    let _span = obs::span("bench.table3");
    let library = Library::vcl018();
    let cases: Vec<(&'static str, WorkloadBuilder)> = vec![
        (
            "dct",
            Box::new(|shape| {
                (
                    workloads::transpose_scan(shape),
                    CntAgSpec::transpose(shape),
                )
            }),
        ),
        (
            "zoombytwo",
            Box::new(|shape| (workloads::zoom_by_two(shape), CntAgSpec::zoom_by_two(shape))),
        ),
        (
            "motion_est",
            Box::new(|shape| {
                let mb = macroblock_for(shape.width());
                (
                    workloads::motion_est_read(shape, mb, mb, 0),
                    CntAgSpec::motion_est(shape, mb, mb, 0),
                )
            }),
        ),
        (
            "fifo",
            Box::new(|shape| (workloads::fifo(shape), CntAgSpec::raster(shape))),
        ),
    ];
    // Every (workload, size) point is independent: flatten the cross
    // product, fan it out, then regroup per workload in case order.
    let points: Vec<(usize, u32)> = (0..cases.len())
        .flat_map(|c| sizes.iter().map(move |&n| (c, n)))
        .collect();
    let comparisons = par_map(&points, jobs, |_, &(c, n)| {
        let (example, build) = &cases[c];
        let shape = ArrayShape::new(n, n);
        let (seq, program) = build(shape);
        compare_srag_cntag(&seq, shape, &program, &library)
            .unwrap_or_else(|e| panic!("{example}@{n}: {e}"))
    });
    cases
        .iter()
        .enumerate()
        .map(|(c, (example, _))| {
            let rows: Vec<(u32, ComparisonRow)> = points
                .iter()
                .zip(&comparisons)
                .filter(|((pc, _), _)| *pc == c)
                .map(|(&(_, n), cmp)| (n, cmp.clone()))
                .collect();
            let avg_delay_reduction = rows
                .iter()
                .map(|(_, r)| r.delay_reduction_factor())
                .sum::<f64>()
                / rows.len() as f64;
            let avg_area_increase = rows
                .iter()
                .map(|(_, r)| r.area_increase_factor())
                .sum::<f64>()
                / rows.len() as f64;
            Table3Row {
                example,
                avg_delay_reduction,
                avg_area_increase,
                rows,
            }
        })
        .collect()
}

/// One row of the deferred §7 power study.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerRow {
    /// Workload name.
    pub example: &'static str,
    /// Array edge.
    pub n: u32,
    /// The four power measurements.
    pub comparison: adgen_explorer::PowerComparisonRow,
}

/// Runs the power study over the named workloads at the given sizes
/// (100 MHz, 512 streaming accesses each).
///
/// # Panics
///
/// Panics if a workload fails to map or simulate.
pub fn power_study(sizes: &[u32], jobs: usize) -> Vec<PowerRow> {
    let _span = obs::span("bench.power_study");
    let library = Library::vcl018();
    let names: [&'static str; 3] = ["fifo", "motion_est", "zoombytwo"];
    let points: Vec<(u32, usize)> = sizes
        .iter()
        .flat_map(|&n| (0..names.len()).map(move |c| (n, c)))
        .collect();
    par_map(&points, jobs, |_, &(n, c)| {
        let shape = ArrayShape::new(n, n);
        let mb = macroblock_for(n);
        let example = names[c];
        let (seq, program) = match example {
            "fifo" => (workloads::fifo(shape), CntAgSpec::raster(shape)),
            "motion_est" => (
                workloads::motion_est_read(shape, mb, mb, 0),
                CntAgSpec::motion_est(shape, mb, mb, 0),
            ),
            _ => (workloads::zoom_by_two(shape), CntAgSpec::zoom_by_two(shape)),
        };
        let comparison = adgen_explorer::compare_power(&seq, shape, &program, &library, 100.0, 512)
            .unwrap_or_else(|e| panic!("{example}@{n}: {e}"));
        PowerRow {
            example,
            n,
            comparison,
        }
    })
}

/// One row of the control-style / control-sharing ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Workload name.
    pub example: &'static str,
    /// Array edge.
    pub n: u32,
    /// Delay (ns) with binary-counter control (paper Fig. 5).
    pub binary_delay_ns: f64,
    /// Area with binary-counter control.
    pub binary_area: f64,
    /// Delay (ns) with one-hot ring control (§4 alternative).
    pub ring_delay_ns: f64,
    /// Area with ring control.
    pub ring_area: f64,
    /// Delay (ns) with interacting synthesized FSMs (§4 alternative).
    pub fsm_delay_ns: f64,
    /// Area with FSM control.
    pub fsm_area: f64,
    /// Delay/area with the row divider chained off the column SRAG
    /// (§7 control reuse); `None` when the pattern is not chainable.
    pub chained: Option<(f64, f64)>,
}

/// Runs the design-choice ablations the paper sketches: counter vs
/// ring control (§4) and row-off-column control chaining (§7).
///
/// # Panics
///
/// Panics if mapping or elaboration fails.
pub fn ablation(sizes: &[u32], jobs: usize) -> Vec<AblationRow> {
    let _span = obs::span("bench.ablation");
    use adgen_core::arch::ControlStyle;
    let library = Library::vcl018();
    let names: [&'static str; 2] = ["fifo", "motion_est"];
    let points: Vec<(u32, usize)> = sizes
        .iter()
        .flat_map(|&n| (0..names.len()).map(move |c| (n, c)))
        .collect();
    par_map(&points, jobs, |_, &(n, c)| {
        let shape = ArrayShape::new(n, n);
        let mb = macroblock_for(n);
        let example = names[c];
        let seq = match example {
            "fifo" => workloads::fifo(shape),
            _ => workloads::motion_est_read(shape, mb, mb, 0),
        };
        let pair = Srag2d::map(&seq, shape, Layout::RowMajor)
            .unwrap_or_else(|e| panic!("{example}@{n}: {e}"));
        let measure = |netlist: &adgen_netlist::Netlist| {
            let t = TimingAnalysis::run(netlist, &library).expect("times");
            let a = AreaReport::of(netlist, &library);
            (t.critical_path_ns(), a.total())
        };
        let binary = pair
            .elaborate_with_style(ControlStyle::BinaryCounters)
            .expect("binary control");
        let ring = pair
            .elaborate_with_style(ControlStyle::RingCounters)
            .expect("ring control");
        let fsm = pair
            .elaborate_with_style(ControlStyle::InteractingFsms)
            .expect("fsm control");
        let (binary_delay_ns, binary_area) = measure(&binary.netlist);
        let (ring_delay_ns, ring_area) = measure(&ring.netlist);
        let (fsm_delay_ns, fsm_area) = measure(&fsm.netlist);
        let chained = pair
            .elaborate_chained()
            .expect("chaining elaborates")
            .map(|c| measure(&c.netlist));
        AblationRow {
            example,
            n,
            binary_delay_ns,
            binary_area,
            ring_delay_ns,
            ring_area,
            fsm_delay_ns,
            fsm_area,
            chained,
        }
    })
}

/// One row of the §7 time-sharing study.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingRow {
    /// Array edge.
    pub n: u32,
    /// Area of four separate 1-D generators (write row/col + read
    /// row/col), cell units.
    pub separate_area: f64,
    /// Area of the two time-shared generators, cell units.
    pub shared_area: f64,
}

impl SharingRow {
    /// Fraction of area saved by sharing.
    pub fn saving(&self) -> f64 {
        1.0 - self.shared_area / self.separate_area
    }
}

/// Runs the §7 time-sharing study: a raster write stream and a
/// DCT-scan read stream over the same buffer share one set of shift
/// registers per dimension.
///
/// # Panics
///
/// Panics if mapping or elaboration fails (both streams are rings in
/// both dimensions, so sharing is always applicable).
pub fn sharing(sizes: &[u32], jobs: usize) -> Vec<SharingRow> {
    let _span = obs::span("bench.sharing");
    use adgen_core::mapper::map_sequence;
    use adgen_core::shared::TimeSharedSragNetlist;
    let library = Library::vcl018();
    par_map(sizes, jobs, |_, &n| {
        let shape = ArrayShape::new(n, n);
        let dims = |seq: &AddressSequence| {
            let (rows, cols) = seq.decompose(shape, Layout::RowMajor).expect("in range");
            (
                map_sequence(&rows).expect("rows map").spec,
                map_sequence(&cols).expect("cols map").spec,
            )
        };
        let (wr, wc) = dims(&workloads::fifo(shape));
        let (rr, rc) = dims(&workloads::transpose_scan(shape));
        let area = |spec: &adgen_core::SragSpec| {
            let d = SragNetlist::elaborate(spec).expect("elaborates");
            AreaReport::of(&d.netlist, &library).total()
        };
        let separate_area = area(&wr) + area(&wc) + area(&rr) + area(&rc);
        let shared = |a: &adgen_core::SragSpec, b: &adgen_core::SragSpec| {
            let d = TimeSharedSragNetlist::elaborate(a, b)
                .expect("elaborates")
                .expect("share-compatible");
            AreaReport::of(&d.netlist, &library).total()
        };
        let shared_area = shared(&wr, &rr) + shared(&wc, &rc);
        SharingRow {
            n,
            separate_area,
            shared_area,
        }
    })
}

/// One point of the §7 interconnect-sensitivity study.
#[derive(Debug, Clone, PartialEq)]
pub struct InterconnectRow {
    /// External select-line load, femtofarads.
    pub load_ff: f64,
    /// SRAG delay, ns.
    pub srag_delay_ns: f64,
    /// CntAG delay, ns.
    pub cntag_delay_ns: f64,
}

/// Sweeps the external select-line capacitance (the interconnect term
/// both designs drive into the cell array) on the 64×64
/// motion-estimation read generators — quantifying §7's "the
/// interconnect and routing costs should also be considered".
///
/// The generators are mapped and elaborated **once** for the whole
/// sweep (see [`adgen_explorer::compare_srag_cntag_load_sweep`]);
/// each load point then only re-runs the cached timing analysis.
///
/// # Panics
///
/// Panics if mapping or elaboration fails.
pub fn interconnect(loads_ff: &[f64], jobs: usize) -> Vec<InterconnectRow> {
    let _span = obs::span("bench.interconnect");
    let library = Library::vcl018();
    let shape = ArrayShape::new(64, 64);
    let mb = macroblock_for(64);
    let seq = workloads::motion_est_read(shape, mb, mb, 0);
    let program = CntAgSpec::motion_est(shape, mb, mb, 0);
    let rows = adgen_explorer::compare_srag_cntag_load_sweep(
        &seq, shape, &program, &library, loads_ff, jobs,
    )
    .expect("comparable");
    loads_ff
        .iter()
        .zip(rows)
        .map(|(&load_ff, cmp)| InterconnectRow {
            load_ff,
            srag_delay_ns: cmp.srag_delay_ps / 1000.0,
            cntag_delay_ns: cmp.cntag_delay_ps / 1000.0,
        })
        .collect()
}

/// Sanity accessor used by benches and tests: builds and verifies a
/// small CntAG so the bench harness has a cheap correctness canary.
///
/// # Panics
///
/// Panics if the canary fails.
pub fn canary() {
    let _span = obs::span("bench.canary");
    let shape = ArrayShape::new(4, 4);
    let seq = workloads::motion_est_read(shape, 2, 2, 0);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).expect("canary maps");
    let design = pair.elaborate().expect("canary elaborates");
    let cnt =
        CntAgNetlist::elaborate(&CntAgSpec::motion_est(shape, 2, 2, 0)).expect("canary baseline");
    assert!(design.netlist.num_flip_flops() > 0);
    assert!(cnt.netlist.num_flip_flops() > 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_4_shift_register_is_faster() {
        let rows = fig3_4(&[8, 16, 32], 2);
        for r in &rows {
            assert!(
                r.fsm_delay_ns > r.shift_register_delay_ns,
                "N={}: fsm {} vs sr {}",
                r.n,
                r.fsm_delay_ns,
                r.shift_register_delay_ns
            );
        }
        // FSM delay grows with N; shift register stays nearly flat.
        let fsm_growth = rows.last().unwrap().fsm_delay_ns / rows[0].fsm_delay_ns;
        let sr_growth =
            rows.last().unwrap().shift_register_delay_ns / rows[0].shift_register_delay_ns;
        assert!(fsm_growth > sr_growth);
    }

    #[test]
    fn fig8_trends_hold_at_small_sizes() {
        let rows = fig8_9_10(&[16, 32], 2);
        for r in &rows {
            assert!(
                r.srag_read_delay_ns < r.cntag_read_delay_ns,
                "read @{}",
                r.n
            );
            assert!(
                r.srag_read_area > r.cntag_read_area,
                "area trade-off @{}",
                r.n
            );
        }
    }

    #[test]
    fn table3_factors_in_paper_direction() {
        let rows = table3(&[16, 32], 2);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.avg_delay_reduction > 1.0,
                "{}: delay reduction {}",
                r.example,
                r.avg_delay_reduction
            );
            assert!(
                r.avg_area_increase > 1.0,
                "{}: area increase {}",
                r.example,
                r.avg_area_increase
            );
        }
    }

    #[test]
    fn synth_time_rows_are_positive() {
        let rows = synth_time(&[8, 16], 1);
        for r in &rows {
            assert!(r.fsm_seconds > 0.0);
            assert!(r.shift_register_seconds > 0.0);
        }
    }

    #[test]
    fn canary_passes() {
        canary();
    }

    #[test]
    fn power_rows_have_positive_totals() {
        let rows = power_study(&[16], 2);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.comparison.srag.total_uw() > 0.0, "{}", r.example);
            assert!(r.comparison.cntag.total_uw() > 0.0, "{}", r.example);
            // Gating never hurts the SRAG side.
            assert!(
                r.comparison.srag_gated.total_uw() <= r.comparison.srag.total_uw() + 1e-9,
                "{}",
                r.example
            );
        }
    }

    #[test]
    fn ablation_ring_beats_binary_on_fifo() {
        let rows = ablation(&[16], 2);
        let fifo = rows.iter().find(|r| r.example == "fifo").unwrap();
        assert!(fifo.ring_delay_ns < fifo.binary_delay_ns);
        assert!(fifo.ring_area > fifo.binary_area);
        let (chain_delay, chain_area) = fifo.chained.expect("fifo chains");
        assert!(chain_area < fifo.binary_area);
        assert!(chain_delay > 0.0);
    }

    #[test]
    fn interconnect_hurts_the_cntag_more() {
        let rows = interconnect(&[0.0, 120.0], 2);
        let srag_growth = rows[1].srag_delay_ns - rows[0].srag_delay_ns;
        let cntag_growth = rows[1].cntag_delay_ns - rows[0].cntag_delay_ns;
        assert!(
            cntag_growth > srag_growth,
            "cntag +{cntag_growth} vs srag +{srag_growth}"
        );
    }

    #[test]
    fn sharing_saves_at_least_a_third() {
        let rows = sharing(&[16, 32], 2);
        for r in &rows {
            assert!(r.saving() > 0.33, "n={} saving {}", r.n, r.saving());
            assert!(r.shared_area > 0.0);
        }
    }
}
