//! Plain-text and CSV rendering of experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::experiments::{Fig34Row, Fig8910Row, SynthTimeRow, Table3Row};

/// Renders Figs. 3 and 4 as one combined table.
pub fn render_fig3_4(rows: &[Fig34Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 3 (delay) and Fig. 4 (area): shift register vs symbolic FSM, incremental sequence"
    );
    let _ = writeln!(
        s,
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "N", "SR delay/ns", "FSM delay/ns", "SR area", "FSM area", "FSM/SR dly"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>6} {:>12.3} {:>12.3} {:>12.0} {:>12.0} {:>10.2}",
            r.n,
            r.shift_register_delay_ns,
            r.fsm_delay_ns,
            r.shift_register_area,
            r.fsm_area,
            r.fsm_delay_ns / r.shift_register_delay_ns
        );
    }
    s
}

/// Renders the §3 synthesis-runtime comparison.
pub fn render_synth_time(rows: &[SynthTimeRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Synthesis wall-clock (paper §3: 6 h FSM vs 36 min SR at N=256)"
    );
    let _ = writeln!(
        s,
        "{:>6} {:>14} {:>14} {:>8}",
        "N", "FSM/s", "SR/s", "ratio"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>6} {:>14.4} {:>14.4} {:>8.1}",
            r.n,
            r.fsm_seconds,
            r.shift_register_seconds,
            r.fsm_seconds / r.shift_register_seconds
        );
    }
    s
}

/// Renders Fig. 8 (delay vs array size).
pub fn render_fig8(rows: &[Fig8910Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Fig. 8: address generator delay vs array size (ns)");
    let _ = writeln!(
        s,
        "{:>9} {:>11} {:>11} {:>11} {:>11}",
        "array", "SRAG(W)", "CntAG(W)", "SRAG(R)", "CntAG(R)"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>5}x{:<3} {:>11.3} {:>11.3} {:>11.3} {:>11.3}",
            r.n,
            r.n,
            r.srag_write_delay_ns,
            r.cntag_write_delay_ns,
            r.srag_read_delay_ns,
            r.cntag_read_delay_ns
        );
    }
    s
}

/// Renders Fig. 9 (CntAG component delays).
pub fn render_fig9(rows: &[Fig8910Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Fig. 9: CntAG component delays vs array size (ns)");
    let _ = writeln!(
        s,
        "{:>9} {:>10} {:>12} {:>12}",
        "array", "counter", "row dec", "col dec"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>5}x{:<3} {:>10.3} {:>12.3} {:>12.3}",
            r.n, r.n, r.counter_delay_ns, r.row_decoder_delay_ns, r.col_decoder_delay_ns
        );
    }
    s
}

/// Renders Fig. 10 (area vs array size).
pub fn render_fig10(rows: &[Fig8910Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 10: address generator area vs array size (cell units)"
    );
    let _ = writeln!(
        s,
        "{:>9} {:>11} {:>11} {:>11} {:>11}",
        "array", "SRAG(W)", "CntAG(W)", "SRAG(R)", "CntAG(R)"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>5}x{:<3} {:>11.0} {:>11.0} {:>11.0} {:>11.0}",
            r.n, r.n, r.srag_write_area, r.cntag_write_area, r.srag_read_area, r.cntag_read_area
        );
    }
    s
}

/// Renders Table 3 (average factors per workload).
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 3: average delay reduction and area increase (SRAG vs CntAG)"
    );
    let _ = writeln!(
        s,
        "{:<12} {:>16} {:>15}",
        "example", "delay reduction", "area increase"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<12} {:>16.2} {:>15.2}",
            r.example, r.avg_delay_reduction, r.avg_area_increase
        );
    }
    s
}

/// Renders the §7 power study.
pub fn render_power(rows: &[crate::experiments::PowerRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Power study (paper §7 future work): total / switching / clock, µW at 100 MHz"
    );
    let _ = writeln!(
        s,
        "{:<12} {:>6} {:>22} {:>22} {:>7} {:>7}",
        "example", "array", "SRAG (tot/sw/clk)", "CntAG (tot/sw/clk)", "free", "gated"
    );
    for r in rows {
        let c = &r.comparison;
        let _ = writeln!(
            s,
            "{:<12} {:>3}x{:<3} {:>8.1}/{:>5.1}/{:>6.1} {:>8.1}/{:>5.1}/{:>6.1} {:>7.2} {:>7.2}",
            r.example,
            r.n,
            r.n,
            c.srag.total_uw(),
            c.srag.dynamic_uw,
            c.srag.clock_uw,
            c.cntag.total_uw(),
            c.cntag.dynamic_uw,
            c.cntag.clock_uw,
            c.power_reduction_factor(),
            c.gated_power_reduction_factor()
        );
    }
    s
}

/// Renders the control-style / control-sharing ablation.
pub fn render_ablation(rows: &[crate::experiments::AblationRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Control ablation: binary counters vs one-hot rings (§4) and chained row divider (§7)"
    );
    let _ = writeln!(
        s,
        "{:<12} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "example",
        "array",
        "bin ns",
        "bin area",
        "ring ns",
        "ring area",
        "fsm ns",
        "fsm area",
        "chain ns",
        "chain ar"
    );
    for r in rows {
        let (cn, ca) = match r.chained {
            Some((d, a)) => (format!("{d:.3}"), format!("{a:.0}")),
            None => ("-".to_string(), "-".to_string()),
        };
        let _ = writeln!(
            s,
            "{:<12} {:>3}x{:<3} {:>9.3} {:>9.0} {:>9.3} {:>9.0} {:>9.3} {:>9.0} {:>9} {:>9}",
            r.example,
            r.n,
            r.n,
            r.binary_delay_ns,
            r.binary_area,
            r.ring_delay_ns,
            r.ring_area,
            r.fsm_delay_ns,
            r.fsm_area,
            cn,
            ca
        );
    }
    s
}

/// Renders the §7 time-sharing study.
pub fn render_sharing(rows: &[crate::experiments::SharingRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Time-sharing study (paper §7): raster write + DCT read sharing one generator"
    );
    let _ = writeln!(
        s,
        "{:>9} {:>14} {:>12} {:>8}",
        "array", "separate area", "shared area", "saving"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>5}x{:<3} {:>14.0} {:>12.0} {:>7.0}%",
            r.n,
            r.n,
            r.separate_area,
            r.shared_area,
            100.0 * r.saving()
        );
    }
    s
}

/// Renders the §7 interconnect-sensitivity sweep.
pub fn render_interconnect(rows: &[crate::experiments::InterconnectRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Interconnect sensitivity (paper §7): select-line load sweep, 64x64 motion est (ns)"
    );
    let _ = writeln!(
        s,
        "{:>10} {:>9} {:>9} {:>8}",
        "load/fF", "SRAG", "CntAG", "factor"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>10.0} {:>9.3} {:>9.3} {:>8.2}",
            r.load_ff,
            r.srag_delay_ns,
            r.cntag_delay_ns,
            r.cntag_delay_ns / r.srag_delay_ns
        );
    }
    s
}

/// Writes the Figs. 8–10 sweep as CSV.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_fig8_10_csv(rows: &[Fig8910Row], path: &Path) -> io::Result<()> {
    let mut s = String::from(
        "n,srag_write_delay_ns,cntag_write_delay_ns,srag_read_delay_ns,cntag_read_delay_ns,\
         srag_write_area,cntag_write_area,srag_read_area,cntag_read_area,\
         counter_delay_ns,row_decoder_delay_ns,col_decoder_delay_ns\n",
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            r.n,
            r.srag_write_delay_ns,
            r.cntag_write_delay_ns,
            r.srag_read_delay_ns,
            r.cntag_read_delay_ns,
            r.srag_write_area,
            r.cntag_write_area,
            r.srag_read_area,
            r.cntag_read_area,
            r.counter_delay_ns,
            r.row_decoder_delay_ns,
            r.col_decoder_delay_ns
        );
    }
    fs::write(path, s)
}

/// Writes the Figs. 3–4 sweep as CSV.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_fig3_4_csv(rows: &[Fig34Row], path: &Path) -> io::Result<()> {
    let mut s =
        String::from("n,shift_register_delay_ns,fsm_delay_ns,shift_register_area,fsm_area\n");
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{},{},{}",
            r.n, r.shift_register_delay_ns, r.fsm_delay_ns, r.shift_register_area, r.fsm_area
        );
    }
    fs::write(path, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample34() -> Vec<Fig34Row> {
        vec![Fig34Row {
            n: 8,
            shift_register_delay_ns: 0.5,
            fsm_delay_ns: 1.2,
            shift_register_area: 200.0,
            fsm_area: 180.0,
        }]
    }

    #[test]
    fn fig3_4_rendering_contains_values() {
        let text = render_fig3_4(&sample34());
        assert!(text.contains("0.500"));
        assert!(text.contains("1.200"));
        assert!(text.contains("2.40"));
    }

    #[test]
    fn csv_round_trips_through_fs() {
        let dir = std::env::temp_dir().join("adgen_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig34.csv");
        write_fig3_4_csv(&sample34(), &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("n,"));
        assert!(text.lines().count() == 2);
    }

    #[test]
    fn fig8_10_csv_has_header_and_rows() {
        let rows = vec![Fig8910Row {
            n: 16,
            srag_write_delay_ns: 1.0,
            cntag_write_delay_ns: 1.5,
            srag_read_delay_ns: 1.2,
            cntag_read_delay_ns: 1.6,
            srag_write_area: 1000.0,
            cntag_write_area: 500.0,
            srag_read_area: 1100.0,
            cntag_read_area: 520.0,
            counter_delay_ns: 1.0,
            row_decoder_delay_ns: 0.5,
            col_decoder_delay_ns: 0.5,
        }];
        let dir = std::env::temp_dir().join("adgen_report_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig8_10.csv");
        write_fig8_10_csv(&rows, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("n,srag_write_delay_ns"));
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("16,1,1.5,1.2,1.6,1000,500,1100,520,1,0.5,0.5"));
    }

    #[test]
    fn sharing_and_interconnect_render() {
        let text = render_sharing(&[crate::experiments::SharingRow {
            n: 16,
            separate_area: 2000.0,
            shared_area: 1200.0,
        }]);
        assert!(text.contains("40%"));
        let text = render_interconnect(&[crate::experiments::InterconnectRow {
            load_ff: 30.0,
            srag_delay_ns: 1.5,
            cntag_delay_ns: 2.1,
        }]);
        assert!(text.contains("1.40"));
    }

    #[test]
    fn table3_rendering() {
        let rows = vec![Table3Row {
            example: "dct",
            avg_delay_reduction: 1.7,
            avg_area_increase: 3.2,
            rows: vec![],
        }];
        let text = render_table3(&rows);
        assert!(text.contains("dct"));
        assert!(text.contains("1.70"));
        assert!(text.contains("3.20"));
    }
}
