//! Shared `--trace` / `--metrics` plumbing for the bench binaries.
//!
//! Both `repro` and `faultcamp` end their run by writing a
//! machine-readable `BENCH_*.json`. [`ObsJsonSink`] owns that write
//! *and* the observability session behind the two flags:
//!
//! * `--trace FILE` — record spans/counters and export a Chrome
//!   trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//! * `--metrics` — record, print the deterministic self/total profile
//!   to stdout, and append a `"metrics"` block (typed counter totals,
//!   jobs-invariant) to the bench JSON.
//!
//! The sink is also the panic-safety fix for partial results: it is a
//! drop guard, so when an experiment panics mid-run the rows that
//! already completed are still flushed as valid JSON with
//! `"truncated": true`, and the trace file (everything recorded up to
//! the panic) is still written. Previously an aborted run lost all of
//! both.

use std::path::PathBuf;

use adgen_obs as obs;

/// The parsed observability flags of a bench binary.
#[derive(Debug, Default, Clone)]
pub struct ObsArgs {
    /// `--trace FILE`: where to write the Chrome trace-event JSON.
    pub trace: Option<PathBuf>,
    /// `--metrics`: print the profile report and append the metrics
    /// block to the bench JSON.
    pub metrics: bool,
}

impl ObsArgs {
    /// Whether either flag asked for a recording session.
    pub fn recording(&self) -> bool {
        self.trace.is_some() || self.metrics
    }
}

/// What a bench JSON renderer needs to know beyond its own rows.
pub struct RunMeta {
    /// True when the run panicked and this is a partial flush.
    pub truncated: bool,
    /// Pre-rendered `"metrics"` JSON block (present with `--metrics`).
    pub metrics: Option<String>,
}

/// Drop guard owning a bench run's obs session and JSON output.
///
/// Build it before the experiments start, mutate the row state
/// through [`state`](Self::state) as results come in, and call
/// [`finish`](Self::finish) at the end. A panic before `finish`
/// triggers the truncated flush from `Drop` instead.
pub struct ObsJsonSink<S> {
    inner: Option<SinkInner<S>>,
}

struct SinkInner<S> {
    json_path: PathBuf,
    state: S,
    render: fn(&S, &RunMeta) -> String,
    args: ObsArgs,
}

impl<S> ObsJsonSink<S> {
    /// Starts the sink (and the obs session, if either flag asks for
    /// one). `render` turns the accumulated state into the bench JSON
    /// document.
    pub fn new(
        json_path: impl Into<PathBuf>,
        args: ObsArgs,
        state: S,
        render: fn(&S, &RunMeta) -> String,
    ) -> Self {
        if args.recording() {
            obs::start();
        }
        ObsJsonSink {
            inner: Some(SinkInner {
                json_path: json_path.into(),
                state,
                render,
                args,
            }),
        }
    }

    /// The accumulated row state, for the run to append results to.
    pub fn state(&mut self) -> &mut S {
        &mut self.inner.as_mut().expect("sink used after finish").state
    }

    /// Normal-completion flush: full JSON, profile report and trace.
    pub fn finish(mut self) {
        if let Some(inner) = self.inner.take() {
            flush(inner, false);
        }
    }
}

impl<S> Drop for ObsJsonSink<S> {
    fn drop(&mut self) {
        // Reached only when `finish` was not: the run panicked (or
        // exited early). Flush what completed, marked truncated.
        if let Some(inner) = self.inner.take() {
            flush(inner, true);
        }
    }
}

fn flush<S>(inner: SinkInner<S>, truncated: bool) {
    let rec = inner.args.recording().then(obs::take);
    let redact = obs::redact_from_env();
    if let (Some(trace_path), Some(rec)) = (&inner.args.trace, &rec) {
        let text = obs::chrome_trace(rec, redact);
        match std::fs::write(trace_path, text) {
            Ok(()) => println!("(trace written to {})", trace_path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", trace_path.display()),
        }
    }
    let metrics = match &rec {
        Some(rec) if inner.args.metrics => {
            print!("{}", obs::profile_report(rec, redact));
            if let Some(w) = obs::worker_imbalance(rec).filter(|_| !redact) {
                println!(
                    "# worker imbalance: {} worker(s), busy {} / {} ns (max/min = {:.2})",
                    w.workers,
                    w.max_busy_ns,
                    w.min_busy_ns,
                    w.ratio()
                );
            }
            Some(obs::metrics_json_block(rec, "  ", redact))
        }
        _ => None,
    };
    let meta = RunMeta { truncated, metrics };
    let json = (inner.render)(&inner.state, &meta);
    match std::fs::write(&inner.json_path, json) {
        Ok(()) => println!(
            "({}bench record written to {})",
            if truncated { "TRUNCATED " } else { "" },
            inner.json_path.display()
        ),
        Err(e) => eprintln!(
            "warning: could not write {}: {e}",
            inner.json_path.display()
        ),
    }
}

/// Strips the obs flags out of a raw argument list, returning the
/// remaining arguments. Shared by the binaries' hand-rolled parsers.
///
/// Recognized forms: `--trace FILE`, `--trace=FILE`, `--metrics`.
pub fn take_obs_args(raw: Vec<String>) -> (Vec<String>, ObsArgs) {
    let mut rest = Vec::with_capacity(raw.len());
    let mut args = ObsArgs::default();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--trace" {
            match it.next() {
                Some(v) => args.trace = Some(PathBuf::from(v)),
                None => {
                    eprintln!("error: --trace needs a file path");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = a.strip_prefix("--trace=") {
            args.trace = Some(PathBuf::from(v));
        } else if a == "--metrics" {
            args.metrics = true;
        } else {
            rest.push(a);
        }
    }
    (rest, args)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_flags_are_stripped() {
        let raw = vec![
            "--jobs".to_string(),
            "2".to_string(),
            "--trace".to_string(),
            "t.json".to_string(),
            "--metrics".to_string(),
            "fig3".to_string(),
        ];
        let (rest, args) = take_obs_args(raw);
        assert_eq!(rest, vec!["--jobs", "2", "fig3"]);
        assert_eq!(args.trace.as_deref(), Some(std::path::Path::new("t.json")));
        assert!(args.metrics && args.recording());
    }

    #[test]
    fn no_flags_means_no_recording() {
        let (rest, args) = take_obs_args(vec!["--smoke".to_string()]);
        assert_eq!(rest, vec!["--smoke"]);
        assert!(!args.recording());
    }

    #[test]
    fn panic_flush_writes_truncated_json() {
        let dir = std::env::temp_dir().join(format!("obs_sink_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("panic_flush.json");
        // The sink's render signature is `fn(&S, &RunMeta)`; with
        // `S = Vec<u32>` the parameter has to be `&Vec`.
        #[allow(clippy::ptr_arg)]
        fn render(rows: &Vec<u32>, meta: &RunMeta) -> String {
            format!(
                "{{\"rows\": {}, \"truncated\": {}}}\n",
                rows.len(),
                meta.truncated
            )
        }
        let path_clone = path.clone();
        let result = std::panic::catch_unwind(move || {
            let mut sink =
                ObsJsonSink::new(&path_clone, ObsArgs::default(), Vec::<u32>::new(), render);
            sink.state().push(1);
            sink.state().push(2);
            panic!("mid-run abort");
        });
        assert!(result.is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"rows\": 2, \"truncated\": true}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_writes_final_json_once() {
        let dir = std::env::temp_dir().join(format!("obs_sink_fin_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("finish.json");
        #[allow(clippy::ptr_arg)]
        fn render(rows: &Vec<u32>, meta: &RunMeta) -> String {
            format!(
                "{{\"rows\": {}, \"truncated\": {}, \"metrics\": {}}}\n",
                rows.len(),
                meta.truncated,
                meta.metrics.clone().unwrap_or_else(|| "null".to_string())
            )
        }
        let mut sink = ObsJsonSink::new(
            &path,
            ObsArgs {
                trace: None,
                metrics: true,
            },
            Vec::<u32>::new(),
            render,
        );
        adgen_obs::add(adgen_obs::Ctr::FuzzCases, 5);
        sink.state().push(7);
        sink.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"rows\": 1"), "{text}");
        assert!(text.contains("\"truncated\": false"), "{text}");
        assert!(text.contains("\"fuzz.cases\": 5"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
