//! The Fig. 7 workload recipe shared by every campaign binary.
//!
//! `explore4`, `faultcamp`, `simbench` and `bankcamp` all center on
//! the paper's motion-estimation kernel at one of two sizes: a 4x4
//! CI smoke array and the paper's full 8x8 array. The shape, the
//! read sequence, the cycle budget and the SEU sample counts used to
//! be rebuilt by hand in each binary; this module is the single
//! source of truth so the published numbers cannot drift apart.

use adgen_cntag::CntAgSpec;
use adgen_seq::{workloads, AddressSequence, ArrayShape};

/// The paper-Fig. 7 campaign recipe at smoke or full size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig7Recipe {
    /// Whether this is the CI-sized smoke variant.
    pub smoke: bool,
    /// Array shape: 4x4 smoke, 8x8 full.
    pub shape: ArrayShape,
    /// SEU samples for the fault campaigns (`faultcamp`, `simbench`).
    pub seu_samples: usize,
}

impl Fig7Recipe {
    /// Builds the recipe for the requested size.
    pub fn new(smoke: bool) -> Self {
        let shape = if smoke {
            ArrayShape::new(4, 4)
        } else {
            ArrayShape::new(8, 8)
        };
        Fig7Recipe {
            smoke,
            shape,
            seu_samples: if smoke { 16 } else { 48 },
        }
    }

    /// The motion-estimation read sequence (paper Fig. 7, mb = 2,
    /// m = 0) at this recipe's shape.
    pub fn sequence(&self) -> AddressSequence {
        workloads::motion_est_read(self.shape, 2, 2, 0)
    }

    /// Replay length of [`Fig7Recipe::sequence`] in cycles.
    pub fn cycles(&self) -> u32 {
        self.sequence().len() as u32
    }

    /// The counter-AG program equivalent to the read sequence.
    pub fn cntag_program(&self) -> CntAgSpec {
        CntAgSpec::motion_est(self.shape, 2, 2, 0)
    }

    /// SEU samples for `explore4`'s four-way comparison, which runs a
    /// lighter universe per architecture than the fault campaigns.
    pub fn explore_seu_samples(&self) -> usize {
        if self.smoke {
            12
        } else {
            32
        }
    }

    /// Default best-of iteration count for `simbench` timing loops.
    pub fn simbench_iters(&self) -> u32 {
        if self.smoke {
            1
        } else {
            3
        }
    }

    /// The three priced workloads of Figs. 8-10: the motion-estimation
    /// kernel plus the raster and transpose scan patterns, each paired
    /// with its counter-AG program.
    pub fn explore_cases(&self) -> Vec<(&'static str, AddressSequence, CntAgSpec)> {
        vec![
            ("motion_est", self.sequence(), self.cntag_program()),
            (
                "raster",
                workloads::raster(self.shape),
                CntAgSpec::raster(self.shape),
            ),
            (
                "transpose",
                workloads::transpose_scan(self.shape),
                CntAgSpec::transpose(self.shape),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_and_full_sizes_match_the_published_campaigns() {
        let smoke = Fig7Recipe::new(true);
        assert_eq!(smoke.shape, ArrayShape::new(4, 4));
        assert_eq!(smoke.seu_samples, 16);
        assert_eq!(smoke.explore_seu_samples(), 12);
        assert_eq!(smoke.simbench_iters(), 1);

        let full = Fig7Recipe::new(false);
        assert_eq!(full.shape, ArrayShape::new(8, 8));
        assert_eq!(full.seu_samples, 48);
        assert_eq!(full.explore_seu_samples(), 32);
        assert_eq!(full.simbench_iters(), 3);
    }

    #[test]
    fn sequence_and_cycles_agree() {
        for smoke in [true, false] {
            let r = Fig7Recipe::new(smoke);
            assert_eq!(r.cycles() as usize, r.sequence().len());
            assert!(!r.sequence().is_empty());
        }
    }

    #[test]
    fn explore_cases_cover_the_three_workloads() {
        let r = Fig7Recipe::new(true);
        let names: Vec<&str> = r.explore_cases().iter().map(|(n, _, _)| *n).collect();
        assert_eq!(names, ["motion_est", "raster", "transpose"]);
    }
}
