//! Minimal timing harness for the `benches/` programs.
//!
//! The workspace builds offline, so the benches cannot use an external
//! harness; each bench is a plain `harness = false` binary that calls
//! [`bench`] for every case and prints one line per case.

use std::hint::black_box;
use std::time::Instant;

/// Times `f` over `iters` iterations and prints mean and best
/// wall-clock per iteration.
///
/// Returns the mean seconds per iteration so benches can derive
/// ratios (e.g. FSM vs shift-register synthesis).
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> f64 {
    assert!(iters > 0, "need at least one iteration");
    black_box(f()); // warm-up, excluded from timing
    let mut total = 0.0f64;
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let started = Instant::now();
        black_box(f());
        let dt = started.elapsed().as_secs_f64();
        total += dt;
        best = best.min(dt);
    }
    let mean = total / f64::from(iters);
    println!(
        "{name:<48} {iters:>3} iters   mean {:>9.3} ms   best {:>9.3} ms",
        mean * 1e3,
        best * 1e3
    );
    mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_mean() {
        let mean = bench("noop", 3, || 1 + 1);
        assert!(mean >= 0.0);
    }
}
