//! Criterion bench for the Fig. 8–10 kernels: full map → elaborate →
//! time/area comparison of SRAG vs CntAG per array size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adgen_bench::experiments::{fig8_9_10, macroblock_for};
use adgen_cntag::CntAgSpec;
use adgen_explorer::compare_srag_cntag;
use adgen_netlist::Library;
use adgen_seq::{workloads, ArrayShape};

fn bench_read_comparison(c: &mut Criterion) {
    let library = Library::vcl018();
    let mut group = c.benchmark_group("fig8_10/read_comparison");
    group.sample_size(10);
    for n in [16u32, 32, 64] {
        let shape = ArrayShape::new(n, n);
        let mb = macroblock_for(n);
        let seq = workloads::motion_est_read(shape, mb, mb, 0);
        let program = CntAgSpec::motion_est(shape, mb, mb, 0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                compare_srag_cntag(&seq, shape, &program, &library)
                    .expect("comparable")
                    .delay_reduction_factor()
            });
        });
    }
    group.finish();
}

fn bench_full_sweep_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_10/full_sweep");
    group.sample_size(10);
    group.bench_function("sizes_16_32", |b| {
        b.iter(|| fig8_9_10(&[16, 32]).len());
    });
    group.finish();
}

criterion_group!(benches, bench_read_comparison, bench_full_sweep_small);
criterion_main!(benches);
