//! Std-only bench for the Fig. 8–10 kernels: full map → elaborate →
//! time/area comparison of SRAG vs CntAG per array size.

use adgen_bench::experiments::{fig8_9_10, macroblock_for};
use adgen_bench::stopwatch::bench;
use adgen_cntag::CntAgSpec;
use adgen_explorer::compare_srag_cntag;
use adgen_netlist::Library;
use adgen_seq::{workloads, ArrayShape};

fn main() {
    let library = Library::vcl018();

    for n in [16u32, 32, 64] {
        let shape = ArrayShape::new(n, n);
        let mb = macroblock_for(n);
        let seq = workloads::motion_est_read(shape, mb, mb, 0);
        let program = CntAgSpec::motion_est(shape, mb, mb, 0);
        bench(&format!("fig8_10/read_comparison/{n}"), 5, || {
            compare_srag_cntag(&seq, shape, &program, &library)
                .expect("comparable")
                .delay_reduction_factor()
        });
    }

    bench("fig8_10/full_sweep/sizes_16_32", 5, || {
        fig8_9_10(&[16, 32], 1).len()
    });
}
