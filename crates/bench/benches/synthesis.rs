//! Std-only bench for the synthesis substrate itself: two-level
//! minimization, structural generation and netlist export — the
//! pieces every experiment kernel is built from.

use adgen_bench::stopwatch::bench;
use adgen_netlist::{to_verilog, Netlist};
use adgen_synth::cover::Cover;
use adgen_synth::mapgen::{build_counter, build_decoder};
use adgen_synth::{espresso, Encoding, Fsm, OutputStyle};

fn main() {
    for vars in [4usize, 6, 8] {
        // A structured function: even minterms plus a band, so there
        // is real minimization work.
        let space = 1u64 << vars;
        let minterms: Vec<u64> = (0..space)
            .filter(|m| m % 2 == 0 || (*m > space / 3 && *m < space / 2))
            .collect();
        let on = Cover::from_minterms(vars, &minterms);
        bench(&format!("synthesis/espresso/{vars}"), 20, || {
            espresso::minimize(on.clone(), Cover::empty(vars)).num_cubes()
        });
    }

    bench("synthesis/generators/counter_16bit", 20, || {
        let mut n = Netlist::new("cnt");
        let en = n.add_input("en");
        build_counter(&mut n, 16, en, "c").expect("builds");
        n.num_instances()
    });
    bench("synthesis/generators/decoder_8to256", 20, || {
        let mut n = Netlist::new("dec");
        let addr: Vec<_> = (0..8).map(|i| n.add_input(format!("a{i}"))).collect();
        build_decoder(&mut n, &addr).expect("builds").len()
    });

    let seq: Vec<u32> = (0..64).collect();
    let design = Fsm::cyclic_sequence(&seq)
        .expect("nonempty")
        .synthesize(Encoding::Binary, OutputStyle::SelectLines { num_lines: 64 })
        .expect("synthesizes");
    bench("synthesis/export/verilog_fsm64", 20, || {
        to_verilog(&design.netlist, true).len()
    });
}
