//! Criterion bench for the synthesis substrate itself: two-level
//! minimization, structural generation and netlist export — the
//! pieces every experiment kernel is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adgen_netlist::{to_verilog, Netlist};
use adgen_synth::cover::Cover;
use adgen_synth::mapgen::{build_counter, build_decoder};
use adgen_synth::{espresso, Encoding, Fsm, OutputStyle};

fn bench_espresso(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis/espresso");
    for vars in [4usize, 6, 8] {
        // A structured function: even minterms plus a band, so there
        // is real minimization work.
        let space = 1u64 << vars;
        let minterms: Vec<u64> = (0..space)
            .filter(|m| m % 2 == 0 || (*m > space / 3 && *m < space / 2))
            .collect();
        let on = Cover::from_minterms(vars, &minterms);
        group.bench_with_input(BenchmarkId::from_parameter(vars), &vars, |b, _| {
            b.iter(|| espresso::minimize(on.clone(), Cover::empty(vars)).num_cubes());
        });
    }
    group.finish();
}

fn bench_structural_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis/generators");
    group.bench_function("counter_16bit", |b| {
        b.iter(|| {
            let mut n = Netlist::new("cnt");
            let en = n.add_input("en");
            build_counter(&mut n, 16, en, "c").expect("builds");
            n.num_instances()
        });
    });
    group.bench_function("decoder_8to256", |b| {
        b.iter(|| {
            let mut n = Netlist::new("dec");
            let addr: Vec<_> = (0..8).map(|i| n.add_input(format!("a{i}"))).collect();
            build_decoder(&mut n, &addr).expect("builds").len()
        });
    });
    group.finish();
}

fn bench_verilog_export(c: &mut Criterion) {
    let seq: Vec<u32> = (0..64).collect();
    let design = Fsm::cyclic_sequence(&seq)
        .expect("nonempty")
        .synthesize(Encoding::Binary, OutputStyle::SelectLines { num_lines: 64 })
        .expect("synthesizes");
    let mut group = c.benchmark_group("synthesis/export");
    group.bench_function("verilog_fsm64", |b| {
        b.iter(|| to_verilog(&design.netlist, true).len());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_espresso,
    bench_structural_generators,
    bench_verilog_export
);
criterion_main!(benches);
