//! Criterion bench for the Fig. 3/4 kernels: synthesizing and timing
//! the shift-register and symbolic-FSM address generators at each
//! paper sequence length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adgen_core::{SragNetlist, SragSpec};
use adgen_netlist::{Library, TimingAnalysis};
use adgen_synth::{Encoding, Fsm, OutputStyle};

fn bench_shift_register(c: &mut Criterion) {
    let library = Library::vcl018();
    let mut group = c.benchmark_group("fig3_4/shift_register");
    for n in [8u32, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let design = SragNetlist::elaborate(&SragSpec::ring(n)).expect("ring");
                TimingAnalysis::run(&design.netlist, &library)
                    .expect("times")
                    .critical_path_ps()
            });
        });
    }
    group.finish();
}

fn bench_symbolic_fsm(c: &mut Criterion) {
    let library = Library::vcl018();
    let mut group = c.benchmark_group("fig3_4/symbolic_fsm");
    group.sample_size(10);
    for n in [8u32, 32, 128] {
        let seq: Vec<u32> = (0..n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let design = Fsm::cyclic_sequence(&seq)
                    .expect("nonempty")
                    .synthesize(
                        Encoding::Binary,
                        OutputStyle::SelectLines {
                            num_lines: n as usize,
                        },
                    )
                    .expect("synthesizes");
                TimingAnalysis::run(&design.netlist, &library)
                    .expect("times")
                    .critical_path_ps()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shift_register, bench_symbolic_fsm);
criterion_main!(benches);
