//! Std-only bench for the Fig. 3/4 kernels: synthesizing and timing
//! the shift-register and symbolic-FSM address generators at each
//! paper sequence length.

use adgen_bench::stopwatch::bench;
use adgen_core::{SragNetlist, SragSpec};
use adgen_netlist::{Library, TimingAnalysis};
use adgen_synth::{Encoding, Fsm, OutputStyle};

fn main() {
    let library = Library::vcl018();

    for n in [8u32, 32, 128] {
        bench(&format!("fig3_4/shift_register/{n}"), 20, || {
            let design = SragNetlist::elaborate(&SragSpec::ring(n)).expect("ring");
            TimingAnalysis::run(&design.netlist, &library)
                .expect("times")
                .critical_path_ps()
        });
    }

    for n in [8u32, 32, 128] {
        let seq: Vec<u32> = (0..n).collect();
        bench(&format!("fig3_4/symbolic_fsm/{n}"), 5, || {
            let design = Fsm::cyclic_sequence(&seq)
                .expect("nonempty")
                .synthesize(
                    Encoding::Binary,
                    OutputStyle::SelectLines {
                        num_lines: n as usize,
                    },
                )
                .expect("synthesizes");
            TimingAnalysis::run(&design.netlist, &library)
                .expect("times")
                .critical_path_ps()
        });
    }
}
