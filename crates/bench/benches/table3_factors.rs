//! Std-only bench for the Table 3 kernel: per-workload SRAG vs
//! CntAG factor computation.

use adgen_bench::stopwatch::bench;
use adgen_cntag::CntAgSpec;
use adgen_explorer::compare_srag_cntag;
use adgen_netlist::Library;
use adgen_seq::{workloads, AddressSequence, ArrayShape};

fn main() {
    let library = Library::vcl018();
    let shape = ArrayShape::new(32, 32);
    let cases: Vec<(&str, AddressSequence, CntAgSpec)> = vec![
        (
            "dct",
            workloads::transpose_scan(shape),
            CntAgSpec::transpose(shape),
        ),
        (
            "zoombytwo",
            workloads::zoom_by_two(shape),
            CntAgSpec::zoom_by_two(shape),
        ),
        (
            "motion_est",
            workloads::motion_est_read(shape, 4, 4, 0),
            CntAgSpec::motion_est(shape, 4, 4, 0),
        ),
        ("fifo", workloads::fifo(shape), CntAgSpec::raster(shape)),
    ];
    for (name, seq, program) in cases {
        bench(&format!("table3/{name}"), 5, || {
            let row = compare_srag_cntag(&seq, shape, &program, &library).expect("maps");
            (row.delay_reduction_factor(), row.area_increase_factor())
        });
    }
}
