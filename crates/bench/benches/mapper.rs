//! Criterion bench for the mapping procedure itself (the paper's
//! SRAdGen tool) and for gate-level simulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use adgen_core::composite::Srag2d;
use adgen_core::mapper::map_sequence;
use adgen_netlist::{EventSimulator, Simulator};
use adgen_seq::{workloads, ArrayShape, Layout};

fn bench_mapper(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper/map_sequence");
    for n in [16u32, 64, 256] {
        let shape = ArrayShape::new(n, n);
        let mb = (n / 8).max(2);
        let seq = workloads::motion_est_read(shape, mb, mb, 0);
        let (rows, _) = seq.decompose(shape, Layout::RowMajor).expect("in range");
        group.throughput(Throughput::Elements(rows.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| map_sequence(&rows).expect("maps").spec.num_flip_flops());
        });
    }
    group.finish();
}

fn bench_gate_level_simulation(c: &mut Criterion) {
    let shape = ArrayShape::new(32, 32);
    let seq = workloads::motion_est_read(shape, 4, 4, 0);
    let design = Srag2d::map(&seq, shape, Layout::RowMajor)
        .expect("maps")
        .elaborate()
        .expect("elaborates");
    let mut group = c.benchmark_group("simulation/srag_pair_32x32");
    group.throughput(Throughput::Elements(100));
    group.bench_function("100_cycles", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&design.netlist).expect("valid");
            sim.step_bools(&[true, false]).expect("reset");
            for _ in 0..100 {
                sim.step_bools(&[false, true]).expect("step");
            }
            sim.cycle()
        });
    });
    group.finish();
}

fn bench_event_vs_levelized(c: &mut Criterion) {
    let shape = ArrayShape::new(32, 32);
    let seq = workloads::fifo(shape);
    let design = Srag2d::map(&seq, shape, Layout::RowMajor)
        .expect("maps")
        .elaborate()
        .expect("elaborates");
    let mut group = c.benchmark_group("simulation/engines_srag_32x32_500cycles");
    group.bench_function("levelized", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&design.netlist).expect("valid");
            sim.step_bools(&[true, false]).expect("reset");
            for _ in 0..500 {
                sim.step_bools(&[false, true]).expect("step");
            }
            sim.cycle()
        });
    });
    group.bench_function("event_driven", |b| {
        b.iter(|| {
            let mut sim = EventSimulator::new(&design.netlist).expect("valid");
            sim.step_bools(&[true, false]).expect("reset");
            for _ in 0..500 {
                sim.step_bools(&[false, true]).expect("step");
            }
            sim.cycle()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mapper,
    bench_gate_level_simulation,
    bench_event_vs_levelized
);
criterion_main!(benches);
