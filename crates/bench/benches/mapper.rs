//! Std-only bench for the mapping procedure itself (the paper's
//! SRAdGen tool) and for gate-level simulation throughput.

use adgen_bench::stopwatch::bench;
use adgen_core::composite::Srag2d;
use adgen_core::mapper::map_sequence;
use adgen_netlist::{EventSimulator, Simulator};
use adgen_seq::{workloads, ArrayShape, Layout};

fn main() {
    for n in [16u32, 64, 256] {
        let shape = ArrayShape::new(n, n);
        let mb = (n / 8).max(2);
        let seq = workloads::motion_est_read(shape, mb, mb, 0);
        let (rows, _) = seq.decompose(shape, Layout::RowMajor).expect("in range");
        bench(
            &format!("mapper/map_sequence/{n} ({} addrs)", rows.len()),
            10,
            || map_sequence(&rows).expect("maps").spec.num_flip_flops(),
        );
    }

    let shape = ArrayShape::new(32, 32);
    let seq = workloads::motion_est_read(shape, 4, 4, 0);
    let design = Srag2d::map(&seq, shape, Layout::RowMajor)
        .expect("maps")
        .elaborate()
        .expect("elaborates");
    bench("simulation/srag_pair_32x32/100_cycles", 10, || {
        let mut sim = Simulator::new(&design.netlist).expect("valid");
        sim.step_bools(&[true, false]).expect("reset");
        for _ in 0..100 {
            sim.step_bools(&[false, true]).expect("step");
        }
        sim.cycle()
    });

    let seq = workloads::fifo(shape);
    let design = Srag2d::map(&seq, shape, Layout::RowMajor)
        .expect("maps")
        .elaborate()
        .expect("elaborates");
    bench("simulation/engines_srag_32x32_500c/levelized", 10, || {
        let mut sim = Simulator::new(&design.netlist).expect("valid");
        sim.step_bools(&[true, false]).expect("reset");
        for _ in 0..500 {
            sim.step_bools(&[false, true]).expect("step");
        }
        sim.cycle()
    });
    bench(
        "simulation/engines_srag_32x32_500c/event_driven",
        10,
        || {
            let mut sim = EventSimulator::new(&design.netlist).expect("valid");
            sim.step_bools(&[true, false]).expect("reset");
            for _ in 0..500 {
                sim.step_bools(&[false, true]).expect("step");
            }
            sim.cycle()
        },
    );
}
