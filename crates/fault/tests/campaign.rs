//! Campaign-engine guarantees: the fault-free replay reproduces the
//! golden address stream exactly, an injected select-line stuck-at
//! is detected and classified, the levelized and event-driven
//! replays agree under injection, and campaign output is
//! byte-identical across worker counts. Mirrors
//! `crates/fuzz/tests/determinism.rs` for the fault engine.

use adgen_core::{HardenedSragNetlist, SragNetlist, SragSpec};
use adgen_fault::{
    classify, driving_flip_flops, enumerate_stuck_at, replay, replay_event, run_campaign,
    run_campaign_scalar, sample_seus, CampaignSpec, Classification, Fault, SLICED_FAULT_LANES,
};
use adgen_netlist::{Logic, Simulator};

fn ring_spec(n: u32) -> SragSpec {
    SragSpec::ring(n)
}

#[test]
fn fault_free_campaign_reproduces_golden_stream() {
    let design = SragNetlist::elaborate(&ring_spec(6)).unwrap();
    let spec = CampaignSpec {
        netlist: &design.netlist,
        cycles: 18,
        alarm_output: None,
    };
    let golden = replay(&spec, None);
    // Replay is deterministic...
    assert_eq!(golden, replay(&spec, None));
    // ...classified as benign against itself...
    assert_eq!(classify(&golden, &golden, None), Classification::Benign);
    // ...and equals a directly-driven simulation of the same design:
    // the one-hot select walks the ring, wrapping every 6 cycles.
    let mut sim = Simulator::new(&design.netlist).unwrap();
    sim.step_bools(&[true, false]).unwrap();
    for (cycle, outputs) in golden.outputs.iter().enumerate() {
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(outputs, &sim.output_values(), "cycle {}", cycle + 1);
        assert_eq!(design.observed_address(&sim), Some((cycle as u32) % 6));
    }
}

#[test]
fn select_line_stuck_at_is_detected() {
    let design = SragNetlist::elaborate(&ring_spec(4)).unwrap();
    let spec = CampaignSpec {
        netlist: &design.netlist,
        cycles: 12,
        alarm_output: None,
    };
    for (line, &net) in design.select_lines.iter().enumerate() {
        for value in [false, true] {
            let report = run_campaign(&spec, &[Fault::StuckAt { net, value }], 1);
            match report.outcomes[0].class {
                Classification::Detected { cycle, alarm } => {
                    assert!(!alarm, "plain SRAG has no alarm output");
                    // The corruption is visible as soon as the token
                    // does (sa0) or does not (sa1) sit on the line.
                    assert!(
                        cycle <= 4,
                        "line {line} sa{} seen at cycle {cycle}",
                        u8::from(value)
                    );
                }
                other => panic!(
                    "line {line} stuck-at-{} classified {other:?}",
                    u8::from(value)
                ),
            }
        }
    }
}

#[test]
fn levelized_and_event_replays_agree_under_injection() {
    let hard = HardenedSragNetlist::elaborate(&ring_spec(5)).unwrap();
    let spec = CampaignSpec {
        netlist: &hard.netlist,
        cycles: 15,
        alarm_output: Some(hard.alarm_output_index()),
    };
    assert_eq!(replay(&spec, None), replay_event(&spec, None));
    let ffs = driving_flip_flops(&hard.netlist, &hard.ring_ffs);
    let mut faults = sample_seus(&ffs, 15, 6, 0xc0ffee);
    faults.extend(enumerate_stuck_at(&hard.netlist).into_iter().step_by(7));
    for fault in faults {
        assert_eq!(
            replay(&spec, Some(fault)),
            replay_event(&spec, Some(fault)),
            "simulators disagree on fault {}",
            fault.id()
        );
    }
}

#[test]
fn campaign_output_is_identical_across_job_counts() {
    let hard = HardenedSragNetlist::elaborate(&ring_spec(4)).unwrap();
    let spec = CampaignSpec {
        netlist: &hard.netlist,
        cycles: 16,
        alarm_output: Some(hard.alarm_output_index()),
    };
    let faults = enumerate_stuck_at(&hard.netlist);
    let serial = run_campaign(&spec, &faults, 1);
    let parallel = run_campaign(&spec, &faults, 4);
    assert_eq!(
        serial, parallel,
        "campaign outcomes must be byte-identical at any --jobs value"
    );
    assert_eq!(serial.summary(), parallel.summary());
}

#[test]
fn hardened_ring_alarms_every_sampled_seu() {
    let hard = HardenedSragNetlist::elaborate(&ring_spec(6)).unwrap();
    let cycles = 24;
    let spec = CampaignSpec {
        netlist: &hard.netlist,
        cycles,
        alarm_output: Some(hard.alarm_output_index()),
    };
    let ffs = driving_flip_flops(&hard.netlist, &hard.ring_ffs);
    let faults = sample_seus(&ffs, cycles - 1, 32, 2026);
    let report = run_campaign(&spec, &faults, 2);
    for outcome in &report.outcomes {
        match outcome.class {
            Classification::Detected { alarm: true, .. } | Classification::Benign => {}
            other => panic!(
                "ring SEU {} escaped the checker: {other:?}",
                outcome.fault.id()
            ),
        }
    }
    assert_eq!(report.alarm_coverage_pct(), 100.0);
}

#[test]
fn plain_ring_suffers_silent_or_unalarmed_corruption() {
    let design = SragNetlist::elaborate(&ring_spec(6)).unwrap();
    let cycles = 24;
    let spec = CampaignSpec {
        netlist: &design.netlist,
        cycles,
        alarm_output: None,
    };
    let ffs = driving_flip_flops(&design.netlist, &design.select_lines);
    let faults = sample_seus(&ffs, cycles - 1, 32, 2026);
    let report = run_campaign(&spec, &faults, 2);
    assert_eq!(report.alarmed(), 0, "plain SRAG cannot self-detect");
    assert!(
        report
            .outcomes
            .iter()
            .all(|o| o.class != Classification::Benign),
        "an SEU on a plain ring always corrupts the one-hot token"
    );
}

#[test]
fn sliced_campaign_matches_scalar_campaign() {
    // The sliced engine packs 63 faults + 1 golden lane per pass; its
    // classifications must be byte-identical to one-replay-per-fault.
    // The hardened ring exercises alarm-first detection, the plain
    // ring exercises silent corruption; both universes span several
    // chunks so partial last chunks and chunk seams are covered.
    let hard = HardenedSragNetlist::elaborate(&ring_spec(5)).unwrap();
    let plain = SragNetlist::elaborate(&ring_spec(6)).unwrap();
    let mut universes = Vec::new();
    {
        let mut faults = enumerate_stuck_at(&hard.netlist);
        let ffs = driving_flip_flops(&hard.netlist, &hard.ring_ffs);
        faults.extend(sample_seus(&ffs, 14, 80, 0xbead));
        universes.push((
            CampaignSpec {
                netlist: &hard.netlist,
                cycles: 15,
                alarm_output: Some(hard.alarm_output_index()),
            },
            faults,
        ));
    }
    {
        let mut faults = enumerate_stuck_at(&plain.netlist);
        let ffs = driving_flip_flops(&plain.netlist, &plain.select_lines);
        faults.extend(sample_seus(&ffs, 17, 80, 0xbead));
        universes.push((
            CampaignSpec {
                netlist: &plain.netlist,
                cycles: 18,
                alarm_output: None,
            },
            faults,
        ));
    }
    for (spec, faults) in &universes {
        assert!(
            faults.len() > SLICED_FAULT_LANES,
            "universe must span multiple sliced passes"
        );
        let sliced = run_campaign(spec, faults, 1);
        let scalar = run_campaign_scalar(spec, faults, 1);
        assert_eq!(sliced, scalar);
        // A chunk-sized prefix and a tiny universe keep the
        // exactly-one-word and single-fault paths covered too.
        for take in [1, SLICED_FAULT_LANES] {
            let sub = &faults[..take];
            assert_eq!(
                run_campaign(spec, sub, 1),
                run_campaign_scalar(spec, sub, 1),
                "prefix of {take} faults"
            );
        }
    }
}

#[test]
fn forced_alarm_value_is_logic_stable() {
    // The alarm probe treats only a hard `1` as detection: an X on
    // the alarm (possible only pre-reset, which the window excludes)
    // must not count.
    let hard = HardenedSragNetlist::elaborate(&ring_spec(3)).unwrap();
    let spec = CampaignSpec {
        netlist: &hard.netlist,
        cycles: 9,
        alarm_output: Some(hard.alarm_output_index()),
    };
    let golden = replay(&spec, None);
    for row in &golden.outputs {
        assert_eq!(row[hard.alarm_output_index()], Logic::Zero);
    }
}
