//! Deterministic fault-injection campaign engine.
//!
//! A campaign fixes a netlist, a cycle budget, and a stimulus (the
//! canonical address-generator drive: one reset cycle, then `next`
//! held high), runs the fault-free *golden* trace once, then replays
//! every fault in a list against it and classifies the outcome:
//!
//! * [`Classification::Detected`] — the faulty run diverged at a
//!   primary output, or the design's own alarm output fired. The
//!   recorded cycle is the first detection; `alarm` distinguishes
//!   self-checking detection from plain output divergence.
//! * [`Classification::Silent`] — every output matched the golden
//!   trace for the whole window, but the final flip-flop states
//!   differ: latent corruption that a longer run could still expose.
//! * [`Classification::Benign`] — the faulty run is
//!   indistinguishable from the golden run, outputs and state.
//!
//! Replays run on the bit-sliced simulator, packed
//! [`SLICED_FAULT_LANES`] faults plus one shared golden lane per
//! pass: lane 0 re-runs the fault-free machine (cross-checked against
//! the scalar golden trace every cycle) while lanes `1..` each carry
//! one injected fault, so one netlist walk classifies a whole batch.
//! Chunks fan out over [`adgen_exec::par_map`], whose output order
//! equals fault-list order regardless of the job count, so a
//! campaign report is byte-identical across `--jobs` settings. Each
//! fault is pure data ([`Fault::id`]), so any single outcome can be
//! reproduced from the `FAULT=` token in its repro line — single-
//! fault reproduction uses the scalar [`replay`], the same engine
//! [`run_campaign_scalar`] keeps available as a differential oracle.

use adgen_exec::par_map;
use adgen_netlist::{
    EventSimulator, LaneMask, Logic, Netlist, SimControl, Simulator, SlicedSimulator,
};
use adgen_obs as obs;

use crate::model::Fault;

/// Faults packed per sliced pass; lane 0 is the shared golden lane,
/// so a full pass uses all 64 lanes of one machine word.
pub const SLICED_FAULT_LANES: usize = 63;

/// What a campaign runs: the design plus the observation window.
#[derive(Debug, Clone, Copy)]
pub struct CampaignSpec<'a> {
    /// The design under test. Inputs must be `[reset, next, ...]`
    /// (the shared convention of every generator in this workspace);
    /// inputs past `next` are held low.
    pub netlist: &'a Netlist,
    /// Number of observed post-reset cycles.
    pub cycles: u32,
    /// Primary-output index of a self-checking alarm, if the design
    /// has one. The alarm output is excluded from divergence
    /// comparison; it seeing `1` classifies the fault as
    /// alarm-detected.
    pub alarm_output: Option<usize>,
}

/// The observable behaviour of one run: primary-output values for
/// cycles `1..=cycles` (the reset cycle is not compared — alarms and
/// outputs may float before initialization), plus the final
/// flip-flop states for latent-corruption detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Output values per observed cycle.
    pub outputs: Vec<Vec<Logic>>,
    /// Flip-flop states after the last cycle, in instance order.
    pub final_states: Vec<Logic>,
}

/// Outcome of one fault replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// Observable divergence from the golden run.
    Detected {
        /// First cycle (1-based) at which the fault was observable.
        cycle: u32,
        /// Whether the design's alarm output made the detection (as
        /// opposed to plain output corruption).
        alarm: bool,
    },
    /// Outputs matched all window, but final state differs — the
    /// fault is latent in the machine state.
    Silent,
    /// No observable or latent difference from the golden run.
    Benign,
}

fn stimulus(num_inputs: usize, cycle: u32) -> Vec<bool> {
    let mut v = vec![false; num_inputs];
    if cycle == 0 {
        v[0] = true;
    } else if num_inputs > 1 {
        v[1] = true;
    }
    v
}

/// The shared replay body: injects `fault` into any engine through
/// the [`SimControl`] surface and records the observable trace.
///
/// # Panics
///
/// Panics on a stepping failure — campaign inputs are validated
/// netlists, so this indicates a bug.
fn replay_on<S: SimControl>(sim: &mut S, spec: &CampaignSpec<'_>, fault: Option<Fault>) -> Trace {
    if let Some(Fault::StuckAt { net, value }) = fault {
        sim.force_net(net, if value { Logic::One } else { Logic::Zero });
    }
    let num_inputs = spec.netlist.inputs().len();
    sim.step_bools(&stimulus(num_inputs, 0))
        .expect("reset step");
    let mut outputs = Vec::with_capacity(spec.cycles as usize);
    for cycle in 1..=spec.cycles {
        if let Some(Fault::Seu { ff, cycle: c }) = fault {
            if c == cycle {
                sim.upset_flip_flop(ff);
            }
        }
        sim.step_bools(&stimulus(num_inputs, cycle)).expect("step");
        outputs.push(sim.output_values());
    }
    Trace {
        outputs,
        final_states: sim.flip_flop_states(),
    }
}

/// Runs the campaign stimulus on the levelized simulator with an
/// optional injected fault; `None` produces the golden trace.
///
/// # Panics
///
/// Panics if the netlist fails simulator construction or stepping —
/// campaign inputs are validated netlists, so this indicates a bug.
pub fn replay(spec: &CampaignSpec<'_>, fault: Option<Fault>) -> Trace {
    let _span = obs::span_arg("fault.replay", u64::from(spec.cycles));
    obs::add(obs::Ctr::FaultReplays, 1);
    let mut sim = Simulator::new(spec.netlist).expect("campaign netlist must be simulable");
    replay_on(&mut sim, spec, fault)
}

/// [`replay`] on the event-driven simulator — same trace by
/// construction; campaigns use the bit-sliced engine (63 faults per
/// pass), the differential tests and fuzzer use this to cross-check
/// the injection hooks themselves.
///
/// # Panics
///
/// As [`replay`].
pub fn replay_event(spec: &CampaignSpec<'_>, fault: Option<Fault>) -> Trace {
    let mut sim = EventSimulator::new(spec.netlist).expect("campaign netlist must be simulable");
    replay_on(&mut sim, spec, fault)
}

/// Compares a faulty trace against the golden one.
pub fn classify(golden: &Trace, faulty: &Trace, alarm_output: Option<usize>) -> Classification {
    for (i, (g, f)) in golden.outputs.iter().zip(&faulty.outputs).enumerate() {
        let cycle = i as u32 + 1;
        if let Some(a) = alarm_output {
            if f[a] == Logic::One {
                return Classification::Detected { cycle, alarm: true };
            }
        }
        let diverged = g
            .iter()
            .zip(f)
            .enumerate()
            .any(|(j, (gv, fv))| Some(j) != alarm_output && gv != fv);
        if diverged {
            return Classification::Detected {
                cycle,
                alarm: false,
            };
        }
    }
    if golden.final_states == faulty.final_states {
        Classification::Benign
    } else {
        Classification::Silent
    }
}

/// One classified fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultOutcome {
    /// The injected fault.
    pub fault: Fault,
    /// Its classification against the golden run.
    pub class: Classification,
}

/// The classified fault list, in fault-list order (jobs-invariant).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Observation window used.
    pub cycles: u32,
    /// One outcome per input fault, same order.
    pub outcomes: Vec<FaultOutcome>,
}

impl CampaignReport {
    /// Faults observably detected (output divergence or alarm).
    pub fn detected(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.class, Classification::Detected { .. }))
            .count()
    }

    /// Detected faults whose first detection was the alarm output.
    pub fn alarmed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.class, Classification::Detected { alarm: true, .. }))
            .count()
    }

    /// Faults that silently corrupted machine state.
    pub fn silent(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.class == Classification::Silent)
            .count()
    }

    /// Faults with no effect at all.
    pub fn benign(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.class == Classification::Benign)
            .count()
    }

    /// Detected / (total − benign), as a percentage; benign faults
    /// cannot be detected by any observer, so they are excluded from
    /// the denominator. 100 when every effective fault is benign.
    pub fn coverage_pct(&self) -> f64 {
        let effective = self.outcomes.len() - self.benign();
        if effective == 0 {
            100.0
        } else {
            100.0 * self.detected() as f64 / effective as f64
        }
    }

    /// Alarm-detected / (total − benign), as a percentage — the
    /// self-checking coverage. Zero for designs without an alarm.
    pub fn alarm_coverage_pct(&self) -> f64 {
        let effective = self.outcomes.len() - self.benign();
        if effective == 0 {
            100.0
        } else {
            100.0 * self.alarmed() as f64 / effective as f64
        }
    }

    /// One-line summary, stable across job counts.
    pub fn summary(&self) -> String {
        format!(
            "{} faults: {} detected ({} by alarm), {} silent, {} benign; coverage {:.1}%, alarm coverage {:.1}%",
            self.outcomes.len(),
            self.detected(),
            self.alarmed(),
            self.silent(),
            self.benign(),
            self.coverage_pct(),
            self.alarm_coverage_pct(),
        )
    }
}

/// Records the classification counters for one classified fault.
fn count_classification(class: Classification) {
    match class {
        Classification::Detected { alarm, .. } => {
            obs::add(obs::Ctr::FaultDetected, 1);
            if alarm {
                obs::add(obs::Ctr::FaultAlarmed, 1);
            }
        }
        Classification::Silent => obs::add(obs::Ctr::FaultSilent, 1),
        Classification::Benign => obs::add(obs::Ctr::FaultBenign, 1),
    }
}

/// Replays and classifies up to [`SLICED_FAULT_LANES`] faults in one
/// bit-sliced pass: lane 0 is the shared golden lane, lane `k + 1`
/// carries `chunk[k]`. The golden lane is cross-checked against the
/// scalar `golden` trace every observed cycle, so a sliced-kernel
/// defect cannot silently misclassify a batch.
///
/// # Panics
///
/// Panics if `chunk` exceeds [`SLICED_FAULT_LANES`], or on any
/// golden-lane divergence from the scalar trace.
fn classify_chunk(spec: &CampaignSpec<'_>, golden: &Trace, chunk: &[Fault]) -> Vec<Classification> {
    assert!(chunk.len() <= SLICED_FAULT_LANES, "chunk exceeds one word");
    let _span = obs::span_arg("fault.replay.sliced", chunk.len() as u64);
    obs::add(obs::Ctr::FaultReplays, chunk.len() as u64);
    let lanes = chunk.len() + 1;
    let mut sim =
        SlicedSimulator::new(spec.netlist, lanes).expect("campaign netlist must be simulable");
    for (k, fault) in chunk.iter().enumerate() {
        if let Fault::StuckAt { net, value } = *fault {
            let v = if value { Logic::One } else { Logic::Zero };
            sim.force_net_lanes(net, v, &LaneMask::single(k + 1, lanes));
        }
    }
    let active: u64 = if lanes == 64 { !0 } else { (1u64 << lanes) - 1 };
    // Lanes not yet detected; the golden lane never detects.
    let mut pending = active & !1;
    let mut classes = vec![Classification::Benign; chunk.len()];
    let outs = spec.netlist.outputs();
    let num_inputs = spec.netlist.inputs().len();
    let num_states = golden.final_states.len();
    sim.step_bools(&stimulus(num_inputs, 0))
        .expect("reset step");
    for cycle in 1..=spec.cycles {
        for (k, fault) in chunk.iter().enumerate() {
            if let Fault::Seu { ff, cycle: c } = *fault {
                if c == cycle {
                    sim.upset_flip_flop_lanes(ff, &LaneMask::single(k + 1, lanes));
                }
            }
        }
        sim.step_bools(&stimulus(num_inputs, cycle)).expect("step");
        let grow = &golden.outputs[cycle as usize - 1];
        // The alarm firing takes precedence over plain divergence,
        // exactly as in the scalar `classify`.
        if let Some(a) = spec.alarm_output {
            let (ones, _) = sim.packed_value(outs[a], 0);
            let fired = ones & pending;
            mark_detected(&mut classes, &mut pending, fired, cycle, true);
        }
        let mut diverged = 0u64;
        for (j, &net) in outs.iter().enumerate() {
            let (ones, xs) = sim.packed_value(net, 0);
            // Lanes whose value differs from the golden row's value.
            let diff = match grow[j] {
                Logic::One => active & !ones,
                Logic::Zero => ones | xs,
                Logic::X => active & !xs,
            };
            assert_eq!(diff & 1, 0, "golden lane diverged on output {j}");
            if Some(j) != spec.alarm_output {
                diverged |= diff;
            }
        }
        let hits = diverged & pending;
        mark_detected(&mut classes, &mut pending, hits, cycle, false);
        if pending == 0 && cycle < spec.cycles {
            // Every fault already classified; the remaining window
            // cannot change any outcome.
            break;
        }
    }
    for (k, class) in classes.iter_mut().enumerate() {
        let lane = k + 1;
        if pending >> lane & 1 == 0 {
            continue;
        }
        let states = sim.flip_flop_states_lane(lane);
        assert_eq!(states.len(), num_states, "state vector width");
        *class = if states == golden.final_states {
            Classification::Benign
        } else {
            Classification::Silent
        };
    }
    // The golden lane's latent state must match the scalar trace too
    // (only checked when the loop ran the full window — an early
    // break means every lane was classified by then).
    if pending != 0 || spec.cycles == 0 {
        assert_eq!(
            sim.flip_flop_states_lane(0),
            golden.final_states,
            "golden lane final state diverged"
        );
    }
    classes
}

/// Flags `hits` lanes as detected at `cycle` and removes them from
/// `pending`.
fn mark_detected(
    classes: &mut [Classification],
    pending: &mut u64,
    hits: u64,
    cycle: u32,
    alarm: bool,
) {
    let mut rest = hits;
    while rest != 0 {
        let lane = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        classes[lane - 1] = Classification::Detected { cycle, alarm };
    }
    *pending &= !hits;
}

/// Replays and classifies every fault in `faults` on the bit-sliced
/// engine, [`SLICED_FAULT_LANES`] faults plus one golden lane per
/// pass, fanning the passes out over `jobs` worker threads. Output
/// order equals `faults` order — and classifications are identical to
/// [`run_campaign_scalar`] — for any job count.
pub fn run_campaign(spec: &CampaignSpec<'_>, faults: &[Fault], jobs: usize) -> CampaignReport {
    let _span = obs::span_arg("fault.campaign", faults.len() as u64);
    let golden = replay(spec, None);
    let chunks: Vec<&[Fault]> = faults.chunks(SLICED_FAULT_LANES).collect();
    let per_chunk = par_map(&chunks, jobs, |_, &chunk| {
        let classes = classify_chunk(spec, &golden, chunk);
        if obs::enabled() {
            for &class in &classes {
                count_classification(class);
            }
        }
        classes
    });
    let outcomes = faults
        .iter()
        .zip(per_chunk.into_iter().flatten())
        .map(|(&fault, class)| FaultOutcome { fault, class })
        .collect();
    CampaignReport {
        cycles: spec.cycles,
        outcomes,
    }
}

/// The scalar campaign engine: one levelized replay per fault. Kept
/// as the differential oracle for [`run_campaign`] (CI asserts the
/// two classify identically) and as the baseline `simbench` measures
/// the sliced speedup against.
pub fn run_campaign_scalar(
    spec: &CampaignSpec<'_>,
    faults: &[Fault],
    jobs: usize,
) -> CampaignReport {
    let _span = obs::span_arg("fault.campaign", faults.len() as u64);
    let golden = replay(spec, None);
    let outcomes = par_map(faults, jobs, |_, &fault| {
        let faulty = replay(spec, Some(fault));
        let class = classify(&golden, &faulty, spec.alarm_output);
        if obs::enabled() {
            count_classification(class);
        }
        FaultOutcome { fault, class }
    });
    CampaignReport {
        cycles: spec.cycles,
        outcomes,
    }
}

/// Fuzz-style reproduction line for one fault: paste the `--fault`
/// token back into the campaign binary to replay exactly this fault.
pub fn repro_line(seed: u64, fault: &Fault) -> String {
    format!(
        "SEED={seed} FAULT={id} reproduce: cargo run --release -p adgen-bench --bin faultcamp -- --seed {seed} --fault {id}",
        id = fault.id()
    )
}
