//! Gate-level fault-injection campaigns for address generators.
//!
//! The paper's SRAG removes the address decoder entirely and drives
//! memory select lines straight from flip-flop outputs. That buys
//! speed and area — and loses the decoder's implicit immunity:
//! a decoder maps *every* counter state to *some* legal one-hot
//! pattern, while a shift-register ring has `2ⁿ − n` illegal states
//! that a single stuck-at or particle strike can reach and then
//! circulate forever. This crate measures that exposure and
//! validates the hardened (self-checking) SRAG variants that close
//! it:
//!
//! * [`model`] — stuck-at-0/1 on any net and single-event upsets on
//!   any flip-flop, as plain replayable data with stable `FAULT=`
//!   tokens,
//! * [`campaign`] — the deterministic campaign engine: golden run,
//!   bit-sliced fault replay (63 faults + 1 golden lane per packed
//!   pass, with the scalar engine kept as a differential oracle),
//!   detected / silent / benign classification, jobs-invariant
//!   parallel fan-out, and fuzz-style reproduction lines.
//!
//! # Example
//!
//! Exhaustive stuck-at campaign on a plain 4-line SRAG ring:
//!
//! ```
//! use adgen_core::{SragNetlist, SragSpec};
//! use adgen_fault::{enumerate_stuck_at, run_campaign, CampaignSpec};
//!
//! let design = SragNetlist::elaborate(&SragSpec::ring(4)).unwrap();
//! let spec = CampaignSpec { netlist: &design.netlist, cycles: 16, alarm_output: None };
//! let faults = enumerate_stuck_at(&design.netlist);
//! let report = run_campaign(&spec, &faults, 1);
//! assert_eq!(report.outcomes.len(), faults.len());
//! // A plain SRAG has no alarm: nothing is ever self-detected.
//! assert_eq!(report.alarmed(), 0);
//! ```

pub mod campaign;
pub mod model;

pub use campaign::{
    classify, replay, replay_event, repro_line, run_campaign, run_campaign_scalar, CampaignReport,
    CampaignSpec, Classification, FaultOutcome, Trace, SLICED_FAULT_LANES,
};
pub use model::{driving_flip_flops, enumerate_stuck_at, flip_flop_ids, sample_seus, Fault};
