//! Fault models over the gate-level netlist IR.
//!
//! Two classic models, both expressed without modifying the netlist
//! itself (the simulators carry the injection hooks):
//!
//! * **Stuck-at** — a net is pinned to a constant logic value for the
//!   whole run, modelling a manufacturing defect (shorted or open
//!   node). Injected via `Simulator::force_net`.
//! * **Single-event upset (SEU)** — one flip-flop's stored bit is
//!   inverted once, immediately before a chosen cycle, modelling a
//!   particle strike. Injected via `Simulator::upset_flip_flop`.
//!
//! A [`Fault`] is plain data (copyable IDs into one fixed netlist),
//! so a campaign can fan thousands of them across worker threads and
//! a failing one can be reprinted as a `FAULT=` token and re-parsed
//! for single-fault reproduction.

use adgen_exec::Prng;
use adgen_netlist::{Driver, InstId, NetId, Netlist};

/// One injectable fault in a fixed netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Net `net` pinned to `value` for the entire run.
    StuckAt {
        /// The corrupted net.
        net: NetId,
        /// The stuck value (`false` = stuck-at-0, `true` = stuck-at-1).
        value: bool,
    },
    /// Flip-flop `ff`'s state inverted immediately before `cycle`
    /// executes, so the flipped bit is presented on Q during that
    /// cycle. `cycle` counts campaign steps; cycle 0 is the reset
    /// cycle, so upsets start at cycle 1.
    Seu {
        /// The struck flip-flop.
        ff: InstId,
        /// The cycle during which the flipped bit is first visible.
        cycle: u32,
    },
}

impl Fault {
    /// Compact machine-readable token (`sa0@n12`, `sa1@n7`,
    /// `seu@i3#c17`) — stable across runs, printable in repro lines,
    /// and re-parseable by [`Fault::parse`].
    pub fn id(&self) -> String {
        match *self {
            Fault::StuckAt { net, value } => {
                format!("sa{}@n{}", u8::from(value), net.index())
            }
            Fault::Seu { ff, cycle } => format!("seu@i{}#c{}", ff.index(), cycle),
        }
    }

    /// Parses a token produced by [`Fault::id`], validating the
    /// indices against `netlist`. Returns `None` on any malformed or
    /// out-of-range token.
    pub fn parse(token: &str, netlist: &Netlist) -> Option<Fault> {
        if let Some(rest) = token.strip_prefix("sa") {
            let (value, idx) = match rest.as_bytes().first()? {
                b'0' => (false, rest.strip_prefix("0@n")?),
                b'1' => (true, rest.strip_prefix("1@n")?),
                _ => return None,
            };
            let idx: usize = idx.parse().ok()?;
            if idx >= netlist.nets().len() {
                return None;
            }
            return Some(Fault::StuckAt {
                net: netlist.net_id_from_index(idx),
                value,
            });
        }
        let rest = token.strip_prefix("seu@i")?;
        let (idx, cycle) = rest.split_once("#c")?;
        let idx: usize = idx.parse().ok()?;
        let cycle: u32 = cycle.parse().ok()?;
        if idx >= netlist.num_instances() {
            return None;
        }
        let ff = netlist.inst_id_from_index(idx);
        if !netlist.instance(ff).kind().is_sequential() {
            return None;
        }
        Some(Fault::Seu { ff, cycle })
    }

    /// Human-readable description naming the faulted object.
    pub fn describe(&self, netlist: &Netlist) -> String {
        match *self {
            Fault::StuckAt { net, value } => format!(
                "stuck-at-{} on net `{}`",
                u8::from(value),
                netlist.net(net).name()
            ),
            Fault::Seu { ff, cycle } => format!(
                "SEU in flip-flop `{}` presented at cycle {cycle}",
                netlist.instance(ff).name()
            ),
        }
    }
}

/// The exhaustive single-stuck-at fault list: every net, both
/// polarities, in net order (so the list — and therefore campaign
/// output — is deterministic).
pub fn enumerate_stuck_at(netlist: &Netlist) -> Vec<Fault> {
    (0..netlist.nets().len())
        .flat_map(|i| {
            let net = netlist.net_id_from_index(i);
            [
                Fault::StuckAt { net, value: false },
                Fault::StuckAt { net, value: true },
            ]
        })
        .collect()
}

/// All flip-flop instances, in instance order.
pub fn flip_flop_ids(netlist: &Netlist) -> Vec<InstId> {
    (0..netlist.num_instances())
        .map(|i| netlist.inst_id_from_index(i))
        .filter(|&id| netlist.instance(id).kind().is_sequential())
        .collect()
}

/// Samples `count` SEUs uniformly over `ffs` × cycles `1..=cycles`,
/// seed-reproducible and independent of `count` ordering (sample `k`
/// depends only on `(seed, k)`). Duplicates are possible by design —
/// the campaign classifies each sample independently.
///
/// # Panics
///
/// Panics if `ffs` is empty or `cycles` is zero.
pub fn sample_seus(ffs: &[InstId], cycles: u32, count: usize, seed: u64) -> Vec<Fault> {
    assert!(!ffs.is_empty(), "need at least one flip-flop to strike");
    assert!(cycles > 0, "need at least one post-reset cycle");
    (0..count)
        .map(|k| {
            let mut rng = Prng::for_stream(seed, k as u64);
            let ff = ffs[rng.next_range(ffs.len() as u64) as usize];
            let cycle = 1 + rng.next_range(u64::from(cycles)) as u32;
            Fault::Seu { ff, cycle }
        })
        .collect()
}

/// Resolves state-holding nets (flip-flop Q outputs) to the
/// flip-flops that drive them — the form SEU injection needs. Nets
/// without a sequential driver (e.g. a select line rewired through a
/// fanout buffer) are skipped.
pub fn driving_flip_flops(netlist: &Netlist, nets: &[NetId]) -> Vec<InstId> {
    nets.iter()
        .filter_map(|&n| match netlist.net(n).driver() {
            Some(Driver::Inst { inst, .. }) if netlist.instance(inst).kind().is_sequential() => {
                Some(inst)
            }
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_core::SragNetlist;
    use adgen_core::SragSpec;

    #[test]
    fn fault_tokens_round_trip() {
        let design = SragNetlist::elaborate(&SragSpec::ring(4)).unwrap();
        let n = &design.netlist;
        for fault in enumerate_stuck_at(n).iter().take(8) {
            assert_eq!(Fault::parse(&fault.id(), n), Some(*fault));
        }
        let ffs = flip_flop_ids(n);
        for fault in sample_seus(&ffs, 16, 8, 0xfeed) {
            assert_eq!(Fault::parse(&fault.id(), n), Some(fault));
        }
        assert_eq!(Fault::parse("sa2@n0", n), None);
        assert_eq!(Fault::parse("sa0@n999999", n), None);
        let comb = (0..n.num_instances())
            .find(|&i| !n.instances()[i].kind().is_sequential())
            .expect("netlist has combinational cells");
        assert_eq!(
            Fault::parse(&format!("seu@i{comb}#c3"), n),
            None,
            "SEU target must be sequential"
        );
        assert_eq!(Fault::parse("garbage", n), None);
    }

    #[test]
    fn seu_sampling_is_prefix_stable() {
        let design = SragNetlist::elaborate(&SragSpec::ring(6)).unwrap();
        let ffs = flip_flop_ids(&design.netlist);
        let long = sample_seus(&ffs, 24, 32, 7);
        let short = sample_seus(&ffs, 24, 8, 7);
        assert_eq!(&long[..8], &short[..]);
        for f in &long {
            match *f {
                Fault::Seu { cycle, .. } => assert!((1..=24).contains(&cycle)),
                Fault::StuckAt { .. } => panic!("sampled a stuck-at"),
            }
        }
    }

    #[test]
    fn ring_nets_resolve_to_their_flip_flops() {
        let design = SragNetlist::elaborate(&SragSpec::ring(4)).unwrap();
        let hard = adgen_core::HardenedSragNetlist::elaborate(&SragSpec::ring(4)).unwrap();
        let ffs = driving_flip_flops(&hard.netlist, &hard.ring_ffs);
        assert_eq!(ffs.len(), 4);
        assert!(design.netlist.num_flip_flops() > 0);
        for &ff in &ffs {
            assert!(hard.netlist.instance(ff).kind().is_sequential());
        }
    }
}
