//! The [`AddressSequence`] type: an ordered stream of 1-D addresses.

use std::fmt;

use crate::error::SeqError;
use crate::shape::{ArrayShape, Layout};

/// An ordered, repeatable stream of one-dimensional addresses — the
/// input to every address-generator architecture in this workspace.
///
/// Beyond plain storage, the type offers the sequence analyses the
/// paper's mapping procedure (§5) is built from: run-length encoding
/// (the `D` set), run-collapsed reduction (the `R` sequence) and
/// first-occurrence bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AddressSequence {
    values: Vec<u32>,
}

impl AddressSequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a vector of addresses.
    pub fn from_vec(values: Vec<u32>) -> Self {
        AddressSequence { values }
    }

    /// The addresses as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.values
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the sequence has no elements.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over the addresses.
    pub fn iter(&self) -> std::slice::Iter<'_, u32> {
        self.values.iter()
    }

    /// Appends an address.
    pub fn push(&mut self, address: u32) {
        self.values.push(address);
    }

    /// Largest address, or `None` when empty.
    pub fn max_address(&self) -> Option<u32> {
        self.values.iter().copied().max()
    }

    /// Number of distinct addresses.
    pub fn num_distinct(&self) -> usize {
        let mut v = self.values.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Run-length encodes consecutive repetitions: `[5,5,1,4,4,4]` →
    /// `[(5,2),(1,1),(4,3)]`. This is the paper's `D` computation.
    pub fn run_length_encode(&self) -> Vec<(u32, usize)> {
        let mut runs = Vec::new();
        for &v in &self.values {
            match runs.last_mut() {
                Some((last, count)) if *last == v => *count += 1,
                _ => runs.push((v, 1)),
            }
        }
        runs
    }

    /// Collapses consecutive repetitions to single elements (the
    /// paper's reduced sequence `R`): `[0,0,1,1]` → `[0,1]`.
    pub fn collapse_runs(&self) -> AddressSequence {
        AddressSequence::from_vec(
            self.run_length_encode()
                .into_iter()
                .map(|(v, _)| v)
                .collect(),
        )
    }

    /// Distinct addresses in order of first appearance (the paper's
    /// unique sequence `U`), with their occurrence counts (`O`) and the
    /// index of their first appearance (`Z`).
    pub fn unique_in_order(&self) -> Vec<UniqueEntry> {
        let mut out: Vec<UniqueEntry> = Vec::new();
        for (pos, &v) in self.values.iter().enumerate() {
            if let Some(e) = out.iter_mut().find(|e| e.address == v) {
                e.occurrences += 1;
            } else {
                out.push(UniqueEntry {
                    address: v,
                    occurrences: 1,
                    first_position: pos,
                });
            }
        }
        out
    }

    /// Splits a linear sequence into `(row, column)` sequences for an
    /// array of `shape` linearized with `layout` — paper Table 1's
    /// `RowAS` / `ColAS`.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::AddressOutOfRange`] (with the offending
    /// position) if any address exceeds the array capacity.
    pub fn decompose(
        &self,
        shape: ArrayShape,
        layout: Layout,
    ) -> Result<(AddressSequence, AddressSequence), SeqError> {
        let mut rows = Vec::with_capacity(self.len());
        let mut cols = Vec::with_capacity(self.len());
        for (position, &a) in self.values.iter().enumerate() {
            let (r, c) = shape.to_row_col(a, layout).map_err(|e| match e {
                SeqError::AddressOutOfRange {
                    address, capacity, ..
                } => SeqError::AddressOutOfRange {
                    address,
                    capacity,
                    position,
                },
                other => other,
            })?;
            rows.push(r);
            cols.push(c);
        }
        Ok((
            AddressSequence::from_vec(rows),
            AddressSequence::from_vec(cols),
        ))
    }

    /// Recombines row and column sequences into a linear sequence —
    /// the inverse of [`decompose`](Self::decompose).
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::EmptyGeometry`] if the two sequences differ
    /// in length, or [`SeqError::AddressOutOfRange`] for coordinates
    /// outside the shape.
    pub fn compose(
        rows: &AddressSequence,
        cols: &AddressSequence,
        shape: ArrayShape,
        layout: Layout,
    ) -> Result<AddressSequence, SeqError> {
        if rows.len() != cols.len() {
            return Err(SeqError::EmptyGeometry {
                what: "row/column sequences differ in length",
            });
        }
        let mut out = Vec::with_capacity(rows.len());
        for (position, (&r, &c)) in rows.iter().zip(cols.iter()).enumerate() {
            let a = shape.to_linear(r, c, layout).map_err(|e| match e {
                SeqError::AddressOutOfRange {
                    address, capacity, ..
                } => SeqError::AddressOutOfRange {
                    address,
                    capacity,
                    position,
                },
                other => other,
            })?;
            out.push(a);
        }
        Ok(AddressSequence::from_vec(out))
    }

    /// The smallest period `p` dividing the length such that the
    /// sequence equals `p`-element tiles, or the full length if none.
    /// Returns 0 for an empty sequence.
    pub fn minimal_period(&self) -> usize {
        let len = self.values.len();
        (1..=len)
            .filter(|p| len.is_multiple_of(*p))
            .find(|&p| (0..len).all(|i| self.values[i] == self.values[i % p]))
            .unwrap_or(0)
    }

    /// The sequence repeated `times` times end-to-end.
    pub fn repeated(&self, times: usize) -> AddressSequence {
        let mut v = Vec::with_capacity(self.len() * times);
        for _ in 0..times {
            v.extend_from_slice(&self.values);
        }
        AddressSequence::from_vec(v)
    }
}

/// One entry of [`AddressSequence::unique_in_order`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniqueEntry {
    /// The distinct address.
    pub address: u32,
    /// How many times it occurs in the sequence.
    pub occurrences: usize,
    /// Index of its first occurrence.
    pub first_position: usize,
}

impl fmt::Display for AddressSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<u32>> for AddressSequence {
    fn from(values: Vec<u32>) -> Self {
        AddressSequence::from_vec(values)
    }
}

impl From<&[u32]> for AddressSequence {
    fn from(values: &[u32]) -> Self {
        AddressSequence::from_vec(values.to_vec())
    }
}

impl FromIterator<u32> for AddressSequence {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        AddressSequence::from_vec(iter.into_iter().collect())
    }
}

impl Extend<u32> for AddressSequence {
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

impl<'a> IntoIterator for &'a AddressSequence {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

impl IntoIterator for AddressSequence {
    type Item = u32;
    type IntoIter = std::vec::IntoIter<u32>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_length_encoding() {
        let s = AddressSequence::from_vec(vec![5, 5, 1, 1, 4, 4, 0, 0]);
        assert_eq!(s.run_length_encode(), vec![(5, 2), (1, 2), (4, 2), (0, 2)]);
        assert_eq!(s.collapse_runs().as_slice(), &[5, 1, 4, 0]);
    }

    #[test]
    fn rle_of_empty() {
        let s = AddressSequence::new();
        assert!(s.run_length_encode().is_empty());
        assert!(s.collapse_runs().is_empty());
        assert_eq!(s.max_address(), None);
    }

    #[test]
    fn unique_in_order_matches_paper_parameters() {
        // R for the paper's RowAS: 0,1,0,1,2,3,2,3 → U = 0,1,2,3;
        // O = 2,2,2,2; Z = 0,1,4,5.
        let r = AddressSequence::from_vec(vec![0, 1, 0, 1, 2, 3, 2, 3]);
        let u = r.unique_in_order();
        assert_eq!(
            u.iter().map(|e| e.address).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(
            u.iter().map(|e| e.occurrences).collect::<Vec<_>>(),
            vec![2, 2, 2, 2]
        );
        assert_eq!(
            u.iter().map(|e| e.first_position).collect::<Vec<_>>(),
            vec![0, 1, 4, 5]
        );
    }

    #[test]
    fn decompose_compose_round_trip() {
        let shape = ArrayShape::new(4, 4);
        let lin = AddressSequence::from_vec(vec![0, 1, 4, 5, 2, 3, 6, 7, 15]);
        let (rows, cols) = lin.decompose(shape, Layout::RowMajor).unwrap();
        let back = AddressSequence::compose(&rows, &cols, shape, Layout::RowMajor).unwrap();
        assert_eq!(back, lin);
    }

    #[test]
    fn decompose_reports_position() {
        let shape = ArrayShape::new(2, 2);
        let lin = AddressSequence::from_vec(vec![0, 1, 9]);
        let err = lin.decompose(shape, Layout::RowMajor).unwrap_err();
        assert_eq!(
            err,
            SeqError::AddressOutOfRange {
                address: 9,
                capacity: 4,
                position: 2
            }
        );
    }

    #[test]
    fn compose_length_mismatch() {
        let shape = ArrayShape::new(2, 2);
        let a = AddressSequence::from_vec(vec![0]);
        let b = AddressSequence::from_vec(vec![0, 1]);
        assert!(AddressSequence::compose(&a, &b, shape, Layout::RowMajor).is_err());
    }

    #[test]
    fn collection_traits() {
        let s: AddressSequence = (0..4).collect();
        assert_eq!(s.as_slice(), &[0, 1, 2, 3]);
        let mut s2 = s.clone();
        s2.extend(4..6);
        assert_eq!(s2.len(), 6);
        let total: u32 = (&s2).into_iter().sum();
        assert_eq!(total, 15);
        let owned: Vec<u32> = s2.into_iter().collect();
        assert_eq!(owned.len(), 6);
    }

    #[test]
    fn display_format() {
        let s = AddressSequence::from_vec(vec![5, 1, 4]);
        assert_eq!(s.to_string(), "[5,1,4]");
        assert_eq!(AddressSequence::new().to_string(), "[]");
    }

    #[test]
    fn repeated_tiles() {
        let s = AddressSequence::from_vec(vec![1, 2]);
        assert_eq!(s.repeated(3).as_slice(), &[1, 2, 1, 2, 1, 2]);
        assert!(s.repeated(0).is_empty());
    }

    #[test]
    fn minimal_period_detection() {
        assert_eq!(
            AddressSequence::from_vec(vec![1, 2, 1, 2, 1, 2]).minimal_period(),
            2
        );
        assert_eq!(AddressSequence::from_vec(vec![1, 2, 3]).minimal_period(), 3);
        assert_eq!(AddressSequence::from_vec(vec![5]).minimal_period(), 1);
        assert_eq!(AddressSequence::new().minimal_period(), 0);
        // Non-dividing repetition does not count: 1,2,1 has period 3.
        assert_eq!(AddressSequence::from_vec(vec![1, 2, 1]).minimal_period(), 3);
    }

    #[test]
    fn num_distinct_counts() {
        let s = AddressSequence::from_vec(vec![3, 3, 1, 3, 2]);
        assert_eq!(s.num_distinct(), 3);
    }
}
