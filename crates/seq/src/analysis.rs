//! Sequence regularity analysis.
//!
//! The paper's premise is that multimedia address streams are
//! "regular and periodic"; this module quantifies that regularity so
//! tools can predict *which* generator architectures will accept a
//! sequence before attempting a mapping.

use crate::sequence::AddressSequence;

/// Structural summary of an address sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceProfile {
    /// Sequence length.
    pub len: usize,
    /// Number of distinct addresses.
    pub distinct: usize,
    /// Largest address, if any.
    pub max_address: Option<u32>,
    /// Smallest tiling period (see
    /// [`AddressSequence::minimal_period`]).
    pub minimal_period: usize,
    /// The common consecutive-repetition count, when every run has
    /// the same length — the SRAG's `dC` precondition.
    pub uniform_run_length: Option<usize>,
    /// Whether every occurrence of an address repeats the same number
    /// of consecutive times — the multi-counter SRAG's relaxed
    /// precondition.
    pub per_address_runs_consistent: bool,
    /// Length of the run-collapsed (reduced) sequence.
    pub reduced_len: usize,
    /// Whether each distinct address occurs exactly once in the
    /// reduced sequence (a pure scan, no revisits).
    pub single_visit: bool,
}

impl SequenceProfile {
    /// Computes the profile of `sequence`.
    pub fn of(sequence: &AddressSequence) -> Self {
        let runs = sequence.run_length_encode();
        let uniform_run_length = match runs.first() {
            Some(&(_, first)) if runs.iter().all(|&(_, l)| l == first) => Some(first),
            _ => None,
        };
        let mut per_address: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        let mut per_address_runs_consistent = true;
        for &(a, l) in &runs {
            match per_address.get(&a) {
                Some(&prev) if prev != l => {
                    per_address_runs_consistent = false;
                    break;
                }
                _ => {
                    per_address.insert(a, l);
                }
            }
        }
        let reduced = sequence.collapse_runs();
        let distinct = sequence.num_distinct();
        SequenceProfile {
            len: sequence.len(),
            distinct,
            max_address: sequence.max_address(),
            minimal_period: sequence.minimal_period(),
            uniform_run_length,
            per_address_runs_consistent,
            reduced_len: reduced.len(),
            single_visit: reduced.len() == distinct,
        }
    }

    /// A coarse regularity class, most to least structured.
    pub fn class(&self) -> RegularityClass {
        if self.len == 0 {
            RegularityClass::Empty
        } else if self.uniform_run_length.is_some() && self.single_visit {
            RegularityClass::UniformScan
        } else if self.uniform_run_length.is_some() {
            RegularityClass::UniformRuns
        } else if self.per_address_runs_consistent {
            RegularityClass::PerAddressRuns
        } else {
            RegularityClass::Irregular
        }
    }
}

/// Coarse regularity classes, aligned with the generator families'
/// preconditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegularityClass {
    /// No elements.
    Empty,
    /// Uniform run lengths and every address visited once per period:
    /// candidate for a plain SRAG ring or counter cascade.
    UniformScan,
    /// Uniform run lengths with revisits: SRAG territory (subject to
    /// grouping/pass checks).
    UniformRuns,
    /// Run lengths uniform only per address: needs the multi-counter
    /// SRAG relaxation.
    PerAddressRuns,
    /// No run structure: FSM or table-lookup territory.
    Irregular,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_of_paper_row_stream() {
        let s = AddressSequence::from_vec(vec![0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3]);
        let p = SequenceProfile::of(&s);
        assert_eq!(p.len, 16);
        assert_eq!(p.distinct, 4);
        assert_eq!(p.uniform_run_length, Some(2));
        assert!(p.per_address_runs_consistent);
        assert_eq!(p.reduced_len, 8);
        assert!(!p.single_visit);
        assert_eq!(p.class(), RegularityClass::UniformRuns);
    }

    #[test]
    fn incremental_is_a_uniform_scan() {
        let s: AddressSequence = (0..8).collect();
        let p = SequenceProfile::of(&s);
        assert_eq!(p.uniform_run_length, Some(1));
        assert!(p.single_visit);
        assert_eq!(p.class(), RegularityClass::UniformScan);
    }

    #[test]
    fn per_address_class_for_divcnt_counterexample() {
        let s = AddressSequence::from_vec(vec![5, 5, 5, 1, 1, 4, 4, 0, 0]);
        let p = SequenceProfile::of(&s);
        assert_eq!(p.uniform_run_length, None);
        assert!(p.per_address_runs_consistent);
        assert_eq!(p.class(), RegularityClass::PerAddressRuns);
    }

    #[test]
    fn irregular_class() {
        let s = AddressSequence::from_vec(vec![5, 5, 1, 5, 5, 5, 1]);
        let p = SequenceProfile::of(&s);
        assert!(!p.per_address_runs_consistent);
        assert_eq!(p.class(), RegularityClass::Irregular);
    }

    #[test]
    fn empty_class() {
        assert_eq!(
            SequenceProfile::of(&AddressSequence::new()).class(),
            RegularityClass::Empty
        );
    }

    #[test]
    fn minimal_period_flows_through() {
        let s = AddressSequence::from_vec(vec![3, 7, 3, 7]);
        assert_eq!(SequenceProfile::of(&s).minimal_period, 2);
    }
}
