//! A small affine loop-nest trace engine.
//!
//! Multimedia kernels such as the paper's block-matching motion
//! estimation (Fig. 7) are perfect loop nests whose array subscripts
//! are affine functions of the loop variables. [`LoopNest`] executes
//! such a nest and records the resulting linear address stream, which
//! is how application code turns into an [`AddressSequence`]
//! deterministically at compile time — the premise of the paper's
//! whole approach.
//!
//! # Example
//!
//! The paper's Table 1 `LinAS` as a loop nest
//! (`addr = (g·2+k)·4 + h·2+l`):
//!
//! ```
//! use adgen_seq::{LoopNest, LoopVar, AffineIndex};
//!
//! # fn main() -> Result<(), adgen_seq::SeqError> {
//! let nest = LoopNest::new(vec![
//!     LoopVar::new("g", 0, 2),
//!     LoopVar::new("h", 0, 2),
//!     LoopVar::new("k", 0, 2),
//!     LoopVar::new("l", 0, 2),
//! ]);
//! // addr = 8g + 2h + 4k + l
//! let index = AffineIndex::new(&[("g", 8), ("h", 2), ("k", 4), ("l", 1)], 0);
//! let seq = nest.trace(&index)?;
//! assert_eq!(
//!     seq.as_slice(),
//!     &[0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15]
//! );
//! # Ok(())
//! # }
//! ```

use crate::error::SeqError;
use crate::sequence::AddressSequence;

/// One loop of a [`LoopNest`]: `for v in from..to` (step 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopVar {
    name: String,
    from: i64,
    to: i64,
}

impl LoopVar {
    /// A loop `for name in from..to` (half-open, step 1). A loop with
    /// `to <= from` executes zero times, exactly like the C loops in
    /// the paper's kernel when the search range `m` is 0.
    pub fn new(name: impl Into<String>, from: i64, to: i64) -> Self {
        LoopVar {
            name: name.into(),
            from,
            to,
        }
    }

    /// The variable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of iterations.
    pub fn trip_count(&self) -> u64 {
        if self.to > self.from {
            (self.to - self.from) as u64
        } else {
            0
        }
    }
}

/// An affine subscript expression `Σ coeffᵢ·varᵢ + offset`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineIndex {
    terms: Vec<(String, i64)>,
    offset: i64,
}

impl AffineIndex {
    /// Builds the expression from `(variable, coefficient)` pairs plus
    /// a constant offset.
    pub fn new(terms: &[(&str, i64)], offset: i64) -> Self {
        AffineIndex {
            terms: terms.iter().map(|&(n, c)| (n.to_string(), c)).collect(),
            offset,
        }
    }

    /// The constant offset.
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// The `(variable, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (&str, i64)> + '_ {
        self.terms.iter().map(|(n, c)| (n.as_str(), *c))
    }

    fn evaluate(&self, names: &[&str], values: &[i64]) -> Result<i64, SeqError> {
        let mut acc = self.offset;
        for (var, coeff) in &self.terms {
            let idx =
                names
                    .iter()
                    .position(|n| n == var)
                    .ok_or_else(|| SeqError::InvalidLoopNest {
                        reason: format!("index references unknown loop variable `{var}`"),
                    })?;
            acc += coeff * values[idx];
        }
        Ok(acc)
    }
}

/// A perfect loop nest, outermost loop first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    loops: Vec<LoopVar>,
}

impl LoopNest {
    /// Creates the nest; `loops[0]` is outermost.
    pub fn new(loops: Vec<LoopVar>) -> Self {
        LoopNest { loops }
    }

    /// The loops, outermost first.
    pub fn loops(&self) -> &[LoopVar] {
        &self.loops
    }

    /// Total number of innermost iterations.
    pub fn trip_count(&self) -> u64 {
        self.loops.iter().map(LoopVar::trip_count).product()
    }

    /// Executes the nest and evaluates `index` at every innermost
    /// iteration, producing the address trace.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::InvalidLoopNest`] if `index` references an
    /// unknown variable or any evaluated address is negative.
    pub fn trace(&self, index: &AffineIndex) -> Result<AddressSequence, SeqError> {
        let names: Vec<&str> = self.loops.iter().map(|l| l.name()).collect();
        let mut values: Vec<i64> = self.loops.iter().map(|l| l.from).collect();
        let mut out = AddressSequence::new();
        if self.trip_count() == 0 {
            return Ok(out);
        }
        loop {
            let a = index.evaluate(&names, &values)?;
            if a < 0 {
                return Err(SeqError::InvalidLoopNest {
                    reason: format!("index evaluated to negative address {a}"),
                });
            }
            out.push(a as u32);
            // Odometer increment, innermost fastest.
            let mut level = self.loops.len();
            loop {
                if level == 0 {
                    return Ok(out);
                }
                level -= 1;
                values[level] += 1;
                if values[level] < self.loops[level].to {
                    break;
                }
                values[level] = self.loops[level].from;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_loop_raster() {
        let nest = LoopNest::new(vec![LoopVar::new("i", 0, 5)]);
        let idx = AffineIndex::new(&[("i", 1)], 0);
        assert_eq!(nest.trace(&idx).unwrap().as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_order_is_row_major() {
        let nest = LoopNest::new(vec![LoopVar::new("r", 0, 2), LoopVar::new("c", 0, 3)]);
        let idx = AffineIndex::new(&[("r", 3), ("c", 1)], 0);
        assert_eq!(nest.trace(&idx).unwrap().as_slice(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_trip_loop_gives_empty_trace() {
        let nest = LoopNest::new(vec![LoopVar::new("i", 0, 0), LoopVar::new("j", 0, 4)]);
        let idx = AffineIndex::new(&[("j", 1)], 0);
        assert!(nest.trace(&idx).unwrap().is_empty());
        assert_eq!(nest.trip_count(), 0);
    }

    #[test]
    fn negative_bounds_and_offset() {
        let nest = LoopNest::new(vec![LoopVar::new("i", -2, 2)]);
        let idx = AffineIndex::new(&[("i", 1)], 2);
        assert_eq!(nest.trace(&idx).unwrap().as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn unknown_variable_rejected() {
        let nest = LoopNest::new(vec![LoopVar::new("i", 0, 2)]);
        let idx = AffineIndex::new(&[("bogus", 1)], 0);
        assert!(matches!(
            nest.trace(&idx),
            Err(SeqError::InvalidLoopNest { .. })
        ));
    }

    #[test]
    fn negative_address_rejected() {
        let nest = LoopNest::new(vec![LoopVar::new("i", 0, 3)]);
        let idx = AffineIndex::new(&[("i", -1)], 0);
        assert!(nest.trace(&idx).is_err());
    }

    #[test]
    fn trip_count_products() {
        let nest = LoopNest::new(vec![
            LoopVar::new("a", 0, 3),
            LoopVar::new("b", 1, 4),
            LoopVar::new("c", -1, 1),
        ]);
        assert_eq!(nest.trip_count(), 3 * 3 * 2);
    }
}
