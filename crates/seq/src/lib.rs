//! Address sequences and multimedia workload generators.
//!
//! The paper evaluates address generators on the deterministic address
//! streams of data-transfer-intensive multimedia kernels. This crate
//! provides:
//!
//! * [`AddressSequence`] — an ordered stream of one-dimensional
//!   addresses with run-length and periodicity utilities,
//! * [`ArrayShape`]/[`Layout`] — 2-D array geometry and the
//!   linear ↔ (row, column) decomposition of paper §5 / Table 1,
//! * [`loopnest`] — a small affine loop-nest trace engine,
//! * [`workloads`] — the paper's concrete access patterns: the
//!   block-matching motion-estimation read/write sequences (Fig. 7),
//!   the separable DCT scan, the zoom-by-two image-scaling sequence
//!   and the FIFO/incremental sequence, plus generic block, raster,
//!   transpose and strided scans.
//!
//! # Example
//!
//! Reproduce paper Table 1 (4×4 image, 2×2 macroblocks, `m = 0`):
//!
//! ```
//! use adgen_seq::{workloads, ArrayShape, Layout};
//!
//! let shape = ArrayShape::new(4, 4);
//! let lin = workloads::motion_est_read(shape, 2, 2, 0);
//! assert_eq!(
//!     lin.as_slice(),
//!     &[0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15]
//! );
//! let (rows, cols) = lin.decompose(shape, Layout::RowMajor).unwrap();
//! assert_eq!(rows.as_slice(), &[0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3]);
//! assert_eq!(cols.as_slice(), &[0, 1, 0, 1, 2, 3, 2, 3, 0, 1, 0, 1, 2, 3, 2, 3]);
//! ```

pub mod analysis;
pub mod error;
pub mod generator;
pub mod io;
pub mod loopnest;
pub mod sequence;
pub mod shape;
pub mod workloads;

pub use analysis::{RegularityClass, SequenceProfile};
pub use error::SeqError;
pub use generator::{AddressGenerator, ReplayGenerator};
pub use loopnest::{AffineIndex, LoopNest, LoopVar};
pub use sequence::AddressSequence;
pub use shape::{ArrayShape, Layout};
