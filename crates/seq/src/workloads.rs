//! The paper's workload address streams, plus generic scan patterns.
//!
//! Every generator returns the *linear* address sequence (`LinAS` in
//! paper Table 1); use [`AddressSequence::decompose`] to obtain the
//! row/column streams an address generator pair actually implements.
//!
//! The four named workloads of paper Table 3 are:
//!
//! * [`motion_est_read`] — the `new_img` read stream of the
//!   block-matching motion-estimation kernel (paper Fig. 7),
//! * [`fifo`] — the incremental production (write) order the paper
//!   assumes for `new_img`,
//! * [`dct_scan`] — the column-order access of a separable DCT's
//!   second pass,
//! * [`zoom_by_two`] — pixel-doubling read stream of an image zoom.

use crate::sequence::AddressSequence;
use crate::shape::ArrayShape;

/// The incremental sequence `0, 1, …, n−1`.
pub fn incremental(n: u32) -> AddressSequence {
    (0..n).collect()
}

/// FIFO access order over an entire array: identical to
/// [`incremental`] over the array capacity. This is both the paper's
/// assumed write sequence for `new_img` and the `fifo` row of Table 3.
pub fn fifo(shape: ArrayShape) -> AddressSequence {
    incremental(shape.capacity())
}

/// Raster (row-major) scan of the whole array; alias of [`fifo`] kept
/// for readability at call sites describing scans rather than queues.
pub fn raster(shape: ArrayShape) -> AddressSequence {
    fifo(shape)
}

/// The `new_img` *read* stream of the paper's block-matching motion
/// estimation kernel (Fig. 7).
///
/// The image is `shape`; macroblocks are `mb_width × mb_height`; `m`
/// is the search range. The kernel's `i`/`j` search loops run
/// `for (i = -m; i < m; i++)`, i.e. `2m` iterations each — except that
/// the paper's Table 1 example uses `m = 0` *with* the block still
/// being read once, so `m = 0` is treated as a single (0,0) search
/// position. `new_img` subscripts do not depend on `i`/`j`, so larger
/// `m` repeats each block scan `(2m)²` times.
///
/// # Panics
///
/// Panics if the macroblock dimensions are zero or do not divide the
/// image dimensions.
pub fn motion_est_read(
    shape: ArrayShape,
    mb_width: u32,
    mb_height: u32,
    m: u32,
) -> AddressSequence {
    assert!(mb_width > 0 && mb_height > 0, "macroblock must be nonzero");
    assert!(
        shape.width().is_multiple_of(mb_width) && shape.height().is_multiple_of(mb_height),
        "macroblock {mb_width}x{mb_height} must divide image {}x{}",
        shape.width(),
        shape.height()
    );
    let search_positions = if m == 0 { 1 } else { (2 * m) * (2 * m) };
    let mut out = AddressSequence::new();
    for g in 0..shape.height() / mb_height {
        for h in 0..shape.width() / mb_width {
            for _search in 0..search_positions {
                for k in 0..mb_height {
                    for l in 0..mb_width {
                        let row = g * mb_height + k;
                        let col = h * mb_width + l;
                        out.push(row * shape.width() + col);
                    }
                }
            }
        }
    }
    out
}

/// The write (production) order for `new_img` assumed by the paper:
/// incremental over the array.
pub fn motion_est_write(shape: ArrayShape) -> AddressSequence {
    fifo(shape)
}

/// Column-order scan of an `n × n` block — the access sequence of the
/// second (column) pass of a separable DCT over row-major data.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn dct_scan(n: u32) -> AddressSequence {
    assert!(n > 0, "block size must be nonzero");
    let mut out = AddressSequence::new();
    for c in 0..n {
        for r in 0..n {
            out.push(r * n + c);
        }
    }
    out
}

/// Transpose (column-major) scan of an arbitrary array; [`dct_scan`]
/// restricted to squares.
pub fn transpose_scan(shape: ArrayShape) -> AddressSequence {
    let mut out = AddressSequence::new();
    for c in 0..shape.width() {
        for r in 0..shape.height() {
            out.push(r * shape.width() + c);
        }
    }
    out
}

/// The read stream of a 2× image zoom (pixel doubling): every source
/// pixel is read twice per output row and every source row is read
/// for two output rows.
pub fn zoom_by_two(shape: ArrayShape) -> AddressSequence {
    let mut out = AddressSequence::new();
    for r2 in 0..2 * shape.height() {
        for c2 in 0..2 * shape.width() {
            out.push((r2 / 2) * shape.width() + c2 / 2);
        }
    }
    out
}

/// Block scan: blocks visited in raster order, pixels within each
/// block in raster order — the generalized `LinAS` of paper Table 1
/// (equivalent to [`motion_est_read`] with `m = 0`).
///
/// # Panics
///
/// Panics under the same conditions as [`motion_est_read`].
pub fn block_scan(shape: ArrayShape, block_width: u32, block_height: u32) -> AddressSequence {
    motion_est_read(shape, block_width, block_height, 0)
}

/// Rotate-90° read scan: the source image is read column by column,
/// bottom row first, producing the pixel order of a 90° clockwise
/// rotation. Its row stream is a *descending* cycle — a case the SRAG
/// handles effortlessly because shift-register lines can be mapped in
/// any order, unlike a plain up-counter.
pub fn rotate90(shape: ArrayShape) -> AddressSequence {
    let mut out = AddressSequence::new();
    for c in 0..shape.width() {
        for r in (0..shape.height()).rev() {
            out.push(r * shape.width() + c);
        }
    }
    out
}

/// Serpentine (boustrophedon) scan: even rows left-to-right, odd rows
/// right-to-left — common in printing and some filter pipelines.
///
/// Its reduced column stream reverses direction every row, which the
/// SRAG's one-directional shift registers cannot express: a useful
/// stress case for mapper rejection paths and for the FSM/arithmetic
/// fallbacks.
pub fn serpentine(shape: ArrayShape) -> AddressSequence {
    let mut out = AddressSequence::new();
    for r in 0..shape.height() {
        if r % 2 == 0 {
            for c in 0..shape.width() {
                out.push(r * shape.width() + c);
            }
        } else {
            for c in (0..shape.width()).rev() {
                out.push(r * shape.width() + c);
            }
        }
    }
    out
}

/// `count` addresses starting at 0 with the given stride, wrapped into
/// `modulus`: `0, s, 2s, … (mod modulus)`.
///
/// # Panics
///
/// Panics if `modulus` is zero.
pub fn strided(stride: u32, count: u32, modulus: u32) -> AddressSequence {
    assert!(modulus > 0, "modulus must be nonzero");
    (0..count)
        .map(|i| (i as u64 * stride as u64 % modulus as u64) as u32)
        .collect()
}

/// Raster scan repeated `times` times — models multi-pass kernels.
pub fn repeated_raster(shape: ArrayShape, times: usize) -> AddressSequence {
    raster(shape).repeated(times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Layout;

    #[test]
    fn table1_linear_sequence() {
        let s = motion_est_read(ArrayShape::new(4, 4), 2, 2, 0);
        assert_eq!(
            s.as_slice(),
            &[0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15]
        );
    }

    #[test]
    fn table1_row_and_col_sequences() {
        let shape = ArrayShape::new(4, 4);
        let s = motion_est_read(shape, 2, 2, 0);
        let (rows, cols) = s.decompose(shape, Layout::RowMajor).unwrap();
        assert_eq!(
            rows.as_slice(),
            &[0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3]
        );
        assert_eq!(
            cols.as_slice(),
            &[0, 1, 0, 1, 2, 3, 2, 3, 0, 1, 0, 1, 2, 3, 2, 3]
        );
    }

    #[test]
    fn motion_est_with_search_range_repeats_blocks() {
        let shape = ArrayShape::new(4, 4);
        let m0 = motion_est_read(shape, 2, 2, 0);
        let m1 = motion_est_read(shape, 2, 2, 1);
        assert_eq!(m1.len(), m0.len() * 4);
        // First block's 4 pixels appear 4 times before moving on.
        assert_eq!(&m1.as_slice()[0..4], &[0, 1, 4, 5]);
        assert_eq!(&m1.as_slice()[4..8], &[0, 1, 4, 5]);
        assert_eq!(&m1.as_slice()[12..16], &[0, 1, 4, 5]);
        assert_eq!(&m1.as_slice()[16..20], &[2, 3, 6, 7]);
    }

    #[test]
    fn incremental_and_fifo() {
        assert_eq!(incremental(4).as_slice(), &[0, 1, 2, 3]);
        assert_eq!(fifo(ArrayShape::new(2, 2)).as_slice(), &[0, 1, 2, 3]);
        assert_eq!(raster(ArrayShape::new(2, 2)).len(), 4);
        assert!(incremental(0).is_empty());
    }

    #[test]
    fn dct_is_column_order() {
        let s = dct_scan(3);
        assert_eq!(s.as_slice(), &[0, 3, 6, 1, 4, 7, 2, 5, 8]);
        // Every address visited exactly once.
        assert_eq!(s.num_distinct(), 9);
    }

    #[test]
    fn transpose_matches_dct_on_squares() {
        assert_eq!(
            transpose_scan(ArrayShape::square(4)).as_slice(),
            dct_scan(4).as_slice()
        );
    }

    #[test]
    fn zoom_by_two_doubles_both_axes() {
        let s = zoom_by_two(ArrayShape::new(2, 2));
        assert_eq!(
            s.as_slice(),
            &[0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3]
        );
        assert_eq!(s.len(), 16);
    }

    #[test]
    fn zoom_decomposition_is_srag_friendly() {
        let shape = ArrayShape::new(4, 2);
        let s = zoom_by_two(shape);
        let (rows, cols) = s.decompose(shape, Layout::RowMajor).unwrap();
        // Column stream: each column index twice per sweep → uniform
        // run length 2.
        let d: Vec<usize> = cols.run_length_encode().iter().map(|&(_, c)| c).collect();
        assert!(d.iter().all(|&c| c == 2));
        // Row stream: each row constant for 2 output rows × 2w reads.
        let dr: Vec<usize> = rows.run_length_encode().iter().map(|&(_, c)| c).collect();
        assert!(dr.iter().all(|&c| c == 16));
    }

    #[test]
    fn block_scan_equals_motion_est_m0() {
        let shape = ArrayShape::new(8, 8);
        assert_eq!(
            block_scan(shape, 4, 2).as_slice(),
            motion_est_read(shape, 4, 2, 0).as_slice()
        );
    }

    #[test]
    fn rotate90_reads_columns_bottom_up() {
        let s = rotate90(ArrayShape::new(3, 2));
        // Columns 0,1,2; within each, row 1 then row 0.
        assert_eq!(s.as_slice(), &[3, 0, 4, 1, 5, 2]);
        assert_eq!(s.num_distinct(), 6);
    }

    #[test]
    fn serpentine_reverses_odd_rows() {
        let s = serpentine(ArrayShape::new(3, 2));
        assert_eq!(s.as_slice(), &[0, 1, 2, 5, 4, 3]);
        // Every address exactly once.
        assert_eq!(s.num_distinct(), 6);
    }

    #[test]
    fn serpentine_column_stream_alternates_direction() {
        let shape = ArrayShape::new(4, 4);
        let s = serpentine(shape);
        let (_, cols) = s.decompose(shape, Layout::RowMajor).unwrap();
        assert_eq!(
            &cols.as_slice()[..8],
            &[0, 1, 2, 3, 3, 2, 1, 0],
            "direction flips at the row boundary"
        );
    }

    #[test]
    fn strided_wraps() {
        assert_eq!(strided(3, 5, 8).as_slice(), &[0, 3, 6, 1, 4]);
    }

    #[test]
    fn repeated_raster_tiles() {
        let s = repeated_raster(ArrayShape::new(2, 1), 2);
        assert_eq!(s.as_slice(), &[0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_macroblock_panics() {
        let _ = motion_est_read(ArrayShape::new(4, 4), 3, 2, 0);
    }

    #[test]
    fn every_workload_stays_in_range() {
        let shape = ArrayShape::new(8, 8);
        for s in [
            motion_est_read(shape, 2, 2, 1),
            fifo(shape),
            zoom_by_two(shape),
            transpose_scan(shape),
            dct_scan(8),
        ] {
            assert!(s.max_address().unwrap() < shape.capacity());
        }
    }
}
