//! Plain-text address-trace import/export.
//!
//! The interchange format is deliberately minimal: one address per
//! line (decimal, or hex with an `0x` prefix), `#` comments,
//! and optional commas/whitespace separating several addresses on
//! one line — covering both hand-written traces and dumps from
//! profilers.

use crate::error::SeqError;
use crate::sequence::AddressSequence;

/// Parses a text trace into a sequence.
///
/// # Errors
///
/// Returns [`SeqError::ParseTrace`] with the 1-based line number of
/// the first malformed token.
pub fn parse_trace(text: &str) -> Result<AddressSequence, SeqError> {
    let mut out = AddressSequence::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        for token in line.split(|c: char| c.is_whitespace() || c == ',') {
            if token.is_empty() {
                continue;
            }
            let value = if let Some(hex) = token
                .strip_prefix("0x")
                .or_else(|| token.strip_prefix("0X"))
            {
                u32::from_str_radix(hex, 16)
            } else {
                token.parse::<u32>()
            };
            match value {
                Ok(v) => out.push(v),
                Err(_) => {
                    return Err(SeqError::ParseTrace {
                        line: idx + 1,
                        token: token.to_string(),
                    });
                }
            }
        }
    }
    Ok(out)
}

/// Renders a sequence as a text trace, one address per line, with a
/// header comment.
pub fn write_trace(sequence: &AddressSequence) -> String {
    let mut s = format!("# adgen address trace, {} accesses\n", sequence.len());
    for &a in sequence.iter() {
        s.push_str(&a.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_formats() {
        let text = "\
# header comment
0, 1, 2
0x10 0x1F # inline comment
7
";
        let s = parse_trace(text).unwrap();
        assert_eq!(s.as_slice(), &[0, 1, 2, 16, 31, 7]);
    }

    #[test]
    fn round_trip() {
        let s = AddressSequence::from_vec(vec![5, 5, 1, 1, 4, 4, 0, 0]);
        let text = write_trace(&s);
        assert_eq!(parse_trace(&text).unwrap(), s);
        assert!(text.starts_with("# adgen address trace, 8 accesses"));
    }

    #[test]
    fn empty_and_comment_only_inputs() {
        assert!(parse_trace("").unwrap().is_empty());
        assert!(parse_trace("# nothing\n\n  \n").unwrap().is_empty());
    }

    #[test]
    fn errors_carry_line_and_token() {
        let err = parse_trace("1\n2\nbogus 3\n").unwrap_err();
        match err {
            SeqError::ParseTrace { line, token } => {
                assert_eq!(line, 3);
                assert_eq!(token, "bogus");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
