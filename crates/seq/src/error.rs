//! Error type for sequence manipulation.

use std::error::Error;
use std::fmt;

/// Errors from sequence construction and decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// An address does not fit in the given array shape.
    AddressOutOfRange {
        /// The offending linear address.
        address: u32,
        /// Number of cells in the array.
        capacity: u32,
        /// Position of the address in the sequence.
        position: usize,
    },
    /// A generator or operation was asked for an empty/degenerate
    /// geometry (zero rows, zero columns or zero-length sequence).
    EmptyGeometry {
        /// Human-readable description of what was degenerate.
        what: &'static str,
    },
    /// A loop-nest definition is inconsistent (e.g. references an
    /// unknown loop variable).
    InvalidLoopNest {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// A text trace could not be parsed.
    ParseTrace {
        /// 1-based line number of the malformed token.
        line: usize,
        /// The token that failed to parse.
        token: String,
    },
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::AddressOutOfRange {
                address,
                capacity,
                position,
            } => write!(
                f,
                "address {address} at position {position} exceeds array capacity {capacity}"
            ),
            SeqError::EmptyGeometry { what } => write!(f, "empty geometry: {what}"),
            SeqError::InvalidLoopNest { reason } => write!(f, "invalid loop nest: {reason}"),
            SeqError::ParseTrace { line, token } => {
                write!(f, "trace parse error at line {line}: bad token `{token}`")
            }
        }
    }
}

impl Error for SeqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SeqError::AddressOutOfRange {
            address: 99,
            capacity: 16,
            position: 3,
        };
        let s = e.to_string();
        assert!(s.contains("99") && s.contains("16") && s.contains("3"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<SeqError>();
    }
}
