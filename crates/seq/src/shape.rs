//! Two-dimensional array geometry and address decomposition.
//!
//! The paper's memory model is a 2-D cell array of `img_height` rows ×
//! `img_width` columns. A linear address `LA` maps to a (row, column)
//! pair according to the chosen data [`Layout`]; the paper assumes
//! row-major mapping (`LA = I0 × img_width + I1`, §5).

use crate::error::SeqError;

/// Dimensions of a 2-D memory array: `width` columns × `height` rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayShape {
    width: u32,
    height: u32,
}

impl ArrayShape {
    /// Creates a shape with `width` columns and `height` rows.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "array dimensions must be nonzero");
        ArrayShape { width, height }
    }

    /// A square `n × n` shape.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn square(n: u32) -> Self {
        Self::new(n, n)
    }

    /// Number of columns (`img_width`).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of rows (`img_height`).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of cells.
    pub fn capacity(&self) -> u32 {
        self.width * self.height
    }

    /// Number of row-address bits a binary-coded addressing scheme
    /// needs (`⌈log₂ height⌉`, at least 1).
    pub fn row_bits(&self) -> u32 {
        bits_for(self.height)
    }

    /// Number of column-address bits (`⌈log₂ width⌉`, at least 1).
    pub fn col_bits(&self) -> u32 {
        bits_for(self.width)
    }

    /// Converts a linear address to `(row, column)` under `layout`.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::AddressOutOfRange`] if `address` does not
    /// fit (the reported `position` is 0).
    pub fn to_row_col(&self, address: u32, layout: Layout) -> Result<(u32, u32), SeqError> {
        if address >= self.capacity() {
            return Err(SeqError::AddressOutOfRange {
                address,
                capacity: self.capacity(),
                position: 0,
            });
        }
        Ok(match layout {
            Layout::RowMajor => (address / self.width, address % self.width),
            Layout::ColMajor => (address % self.height, address / self.height),
        })
    }

    /// Converts `(row, column)` back to a linear address under
    /// `layout`.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::AddressOutOfRange`] if the coordinates are
    /// outside the shape.
    pub fn to_linear(&self, row: u32, col: u32, layout: Layout) -> Result<u32, SeqError> {
        if row >= self.height || col >= self.width {
            return Err(SeqError::AddressOutOfRange {
                address: row * self.width + col,
                capacity: self.capacity(),
                position: 0,
            });
        }
        Ok(match layout {
            Layout::RowMajor => row * self.width + col,
            Layout::ColMajor => col * self.height + row,
        })
    }
}

/// How a 2-D array is linearized in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// `LA = row × width + col` (the paper's assumption).
    #[default]
    RowMajor,
    /// `LA = col × height + row`.
    ColMajor,
}

fn bits_for(n: u32) -> u32 {
    debug_assert!(n > 0);
    if n <= 2 {
        1
    } else {
        32 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_row_major() {
        let s = ArrayShape::new(4, 3);
        for a in 0..s.capacity() {
            let (r, c) = s.to_row_col(a, Layout::RowMajor).unwrap();
            assert_eq!(s.to_linear(r, c, Layout::RowMajor).unwrap(), a);
        }
    }

    #[test]
    fn round_trip_col_major() {
        let s = ArrayShape::new(5, 7);
        for a in 0..s.capacity() {
            let (r, c) = s.to_row_col(a, Layout::ColMajor).unwrap();
            assert_eq!(s.to_linear(r, c, Layout::ColMajor).unwrap(), a);
        }
    }

    #[test]
    fn paper_example_row_major() {
        // Table 1: LA 6 in a 4-wide array → row 1, col 2.
        let s = ArrayShape::new(4, 4);
        assert_eq!(s.to_row_col(6, Layout::RowMajor).unwrap(), (1, 2));
    }

    #[test]
    fn bit_widths() {
        assert_eq!(ArrayShape::new(2, 2).row_bits(), 1);
        assert_eq!(ArrayShape::new(4, 4).row_bits(), 2);
        assert_eq!(ArrayShape::new(5, 5).row_bits(), 3);
        assert_eq!(ArrayShape::new(256, 256).col_bits(), 8);
        assert_eq!(ArrayShape::new(1, 1).row_bits(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let s = ArrayShape::new(2, 2);
        assert!(s.to_row_col(4, Layout::RowMajor).is_err());
        assert!(s.to_linear(2, 0, Layout::RowMajor).is_err());
        assert!(s.to_linear(0, 2, Layout::RowMajor).is_err());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = ArrayShape::new(0, 4);
    }
}
