//! The behavioural interface every address-generator architecture in
//! this workspace implements.
//!
//! An address generator (paper Figs. 1 and 2) is a clocked machine
//! with a `reset` and a `next` stimulus: after reset it presents the
//! first address of its sequence, and each `next` advances it to the
//! following one. The trait is deliberately minimal so that the SRAG,
//! the counter-based generator, the symbolic-FSM generator and
//! gate-level netlists wrapped in a simulator can all be driven by the
//! same co-simulation and verification harnesses.

use crate::sequence::AddressSequence;

/// A clocked, deterministic address source.
pub trait AddressGenerator {
    /// Returns the generator to its initial state; afterwards
    /// [`current`](Self::current) is the first address of the
    /// sequence.
    fn reset(&mut self);

    /// Advances to the next address in the sequence.
    fn advance(&mut self);

    /// The address currently presented.
    fn current(&self) -> u32;

    /// Convenience: collects the first `count` addresses from a fresh
    /// reset, leaving the generator just past them.
    fn collect_sequence(&mut self, count: usize) -> AddressSequence {
        self.reset();
        let mut out = AddressSequence::new();
        for _ in 0..count {
            out.push(self.current());
            self.advance();
        }
        out
    }
}

/// A trivial [`AddressGenerator`] that replays a stored sequence
/// cyclically. Useful as a reference model and for driving memories
/// from recorded traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayGenerator {
    sequence: AddressSequence,
    position: usize,
}

impl ReplayGenerator {
    /// Wraps `sequence` for cyclic replay.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty.
    pub fn new(sequence: AddressSequence) -> Self {
        assert!(!sequence.is_empty(), "replay sequence must be nonempty");
        ReplayGenerator {
            sequence,
            position: 0,
        }
    }

    /// The wrapped sequence.
    pub fn sequence(&self) -> &AddressSequence {
        &self.sequence
    }
}

impl AddressGenerator for ReplayGenerator {
    fn reset(&mut self) {
        self.position = 0;
    }

    fn advance(&mut self) {
        self.position = (self.position + 1) % self.sequence.len();
    }

    fn current(&self) -> u32 {
        self.sequence.as_slice()[self.position]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_cycles() {
        let mut g = ReplayGenerator::new(AddressSequence::from_vec(vec![7, 1, 3]));
        assert_eq!(g.current(), 7);
        g.advance();
        assert_eq!(g.current(), 1);
        g.advance();
        g.advance();
        assert_eq!(g.current(), 7, "wraps around");
        g.reset();
        assert_eq!(g.current(), 7);
    }

    #[test]
    fn collect_sequence_replays_from_reset() {
        let mut g = ReplayGenerator::new(AddressSequence::from_vec(vec![2, 4]));
        g.advance();
        let s = g.collect_sequence(5);
        assert_eq!(s.as_slice(), &[2, 4, 2, 4, 2]);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_replay_rejected() {
        let _ = ReplayGenerator::new(AddressSequence::new());
    }
}
