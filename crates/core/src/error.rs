//! Error type for SRAG mapping and elaboration.

use std::error::Error;
use std::fmt;

use adgen_netlist::NetlistError;
use adgen_synth::SynthError;

/// Errors from the SRAG mapping procedure and netlist elaboration.
///
/// The three mapping variants correspond to the restrictions the paper
/// states in §4: every address must repeat the same number of
/// consecutive times (`DivCnt`), every shift register must produce the
/// same number of reduced-sequence elements (`PassCnt`), and the
/// grouped shift registers must actually reproduce the input sequence
/// (the §5 verification step).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SragError {
    /// The input sequence is empty.
    EmptySequence,
    /// Consecutive repetition counts differ between addresses, so no
    /// single `dC` exists.
    DivCntViolation {
        /// Repetition count of the first run.
        expected: usize,
        /// The differing repetition count found.
        found: usize,
        /// The address whose run differs.
        address: u32,
        /// Index (in the input sequence) where the offending run starts.
        position: usize,
    },
    /// Register workloads differ, so no single `pC` exists.
    PassCntViolation {
        /// `pC` implied by the first register.
        expected: usize,
        /// The differing product found.
        found: usize,
        /// Index of the offending shift register.
        register: usize,
    },
    /// The initial grouping heuristic produced a machine that does not
    /// reproduce the sequence (e.g. `1,2,3,4,3,2,1,4`): the §5
    /// verification step failed.
    GroupingFailure {
        /// First position of the reduced sequence where the generated
        /// stream diverges.
        position: usize,
        /// Address expected (from the input sequence).
        expected: u32,
        /// Address the mapped SRAG would generate.
        generated: u32,
    },
    /// Elaboration to gates failed.
    Netlist(NetlistError),
    /// A structural generator failed.
    Synth(SynthError),
    /// A sequence operation (e.g. the row/column decomposition of a
    /// 2-D mapping) failed.
    Seq(adgen_seq::SeqError),
}

impl fmt::Display for SragError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SragError::EmptySequence => write!(f, "address sequence is empty"),
            SragError::DivCntViolation {
                expected,
                found,
                address,
                position,
            } => write!(
                f,
                "DivCnt restriction violated: address {address} at position {position} \
                 repeats {found} times but the common division count is {expected}"
            ),
            SragError::PassCntViolation {
                expected,
                found,
                register,
            } => write!(
                f,
                "PassCnt restriction violated: shift register {register} produces \
                 {found} elements per pass but the common pass count is {expected}"
            ),
            SragError::GroupingFailure {
                position,
                expected,
                generated,
            } => write!(
                f,
                "grouping verification failed at reduced position {position}: \
                 sequence needs address {expected} but the mapped SRAG generates {generated}"
            ),
            SragError::Netlist(e) => write!(f, "netlist error: {e}"),
            SragError::Synth(e) => write!(f, "synthesis error: {e}"),
            SragError::Seq(e) => write!(f, "sequence error: {e}"),
        }
    }
}

impl Error for SragError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SragError::Netlist(e) => Some(e),
            SragError::Synth(e) => Some(e),
            SragError::Seq(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SragError {
    fn from(e: NetlistError) -> Self {
        SragError::Netlist(e)
    }
}

impl From<SynthError> for SragError {
    fn from(e: SynthError) -> Self {
        SragError::Synth(e)
    }
}

impl From<adgen_seq::SeqError> for SragError {
    fn from(e: adgen_seq::SeqError) -> Self {
        SragError::Seq(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = SragError::DivCntViolation {
            expected: 2,
            found: 3,
            address: 5,
            position: 4,
        };
        let s = e.to_string();
        assert!(s.contains("DivCnt") && s.contains('5') && s.contains('4'));

        let e = SragError::GroupingFailure {
            position: 6,
            expected: 1,
            generated: 3,
        };
        assert!(e.to_string().contains("verification failed"));
    }

    #[test]
    fn error_chaining() {
        let e = SragError::from(NetlistError::UndrivenNet { net: "x".into() });
        assert!(e.source().is_some());
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<SragError>();
    }
}
