//! The complete two-hot SRAG for 2-D memory arrays.
//!
//! Per paper §4, "the complete SRAG is composed of a row SRAG and a
//! column SRAG controlling the row select (RS) and the column select
//! (CS) lines respectively", both driven by the same `next` stimulus.
//! The 2-D cell array itself performs the conjunction of the single
//! hot row line and the single hot column line, so the pair realizes
//! the full linear address sequence with *two-hot* encoding at a
//! fraction of the one-hot flip-flop count (`H + W` instead of
//! `H × W` select lines).

use adgen_netlist::{NetId, Netlist, Simulator};
use adgen_seq::{AddressGenerator, AddressSequence, ArrayShape, Layout};
use adgen_synth::fsm::MAX_FANOUT;
use adgen_synth::techmap::insert_fanout_buffers;

use crate::arch::ControlStyle;
use crate::error::SragError;
use crate::mapper::{map_sequence, Mapping};
use crate::netlist::{build_into, build_into_parts, observed_one_hot};
use crate::sim::SragSimulator;

/// A mapped row-and-column SRAG pair for one linear address sequence
/// over a 2-D array.
#[derive(Debug, Clone)]
pub struct Srag2d {
    shape: ArrayShape,
    layout: Layout,
    row: Mapping,
    col: Mapping,
}

impl Srag2d {
    /// Decomposes `linear` into row and column streams for `shape` /
    /// `layout` and maps each onto its own SRAG.
    ///
    /// # Errors
    ///
    /// Returns [`SragError::Seq`] if an address exceeds the array and
    /// any mapping error from either dimension.
    pub fn map(
        linear: &AddressSequence,
        shape: ArrayShape,
        layout: Layout,
    ) -> Result<Self, SragError> {
        let (rows, cols) = linear.decompose(shape, layout)?;
        Ok(Srag2d {
            shape,
            layout,
            row: map_sequence(&rows)?,
            col: map_sequence(&cols)?,
        })
    }

    /// The array geometry.
    pub fn shape(&self) -> ArrayShape {
        self.shape
    }

    /// The data layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The row-dimension mapping.
    pub fn row(&self) -> &Mapping {
        &self.row
    }

    /// The column-dimension mapping.
    pub fn col(&self) -> &Mapping {
        &self.col
    }

    /// A behavioural simulator for the pair.
    pub fn simulator(&self) -> Srag2dSimulator {
        Srag2dSimulator {
            row: SragSimulator::new(self.row.spec.clone()),
            col: SragSimulator::new(self.col.spec.clone()),
            shape: self.shape,
            layout: self.layout,
        }
    }

    /// Elaborates both SRAGs into a single netlist sharing the
    /// `reset`/`next` inputs. Row select lines come first in the
    /// output list, then column select lines.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn elaborate(&self) -> Result<Srag2dNetlist, SragError> {
        let mut n = Netlist::new(format!(
            "srag2d_{}x{}",
            self.shape.width(),
            self.shape.height()
        ));
        let next = n.add_input("next");
        let row_lines = build_into(&mut n, &self.row.spec, next, "row_")?;
        let col_lines = build_into(&mut n, &self.col.spec, next, "col_")?;
        for &l in row_lines.iter().chain(&col_lines) {
            n.add_output(l);
        }
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate().map_err(SragError::from)?;
        Ok(Srag2dNetlist {
            netlist: n,
            row_lines,
            col_lines,
            next_input: next,
            shape: self.shape,
            layout: self.layout,
        })
    }
}

impl Srag2d {
    /// Whether the row divider can be *chained off* the column SRAG's
    /// full-cycle wrap instead of having its own `DivCnt` — the §7
    /// control-reuse optimization. True when the column generator
    /// advances on every `next` (`dC = 1`) and one full column tour
    /// takes exactly `dC_row` pulses, i.e. the access pattern is
    /// raster-like in the row dimension.
    pub fn chainable(&self) -> bool {
        self.col.spec.div_count == 1
            && self.row.spec.div_count == self.col.spec.token_return_interval()
    }

    /// Elaborates the pair with the row divider chained off the
    /// column SRAG's cycle wrap, saving the row `DivCnt` entirely.
    /// Returns `None` when the pattern is not
    /// [`chainable`](Self::chainable).
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn elaborate_chained(&self) -> Result<Option<Srag2dNetlist>, SragError> {
        if !self.chainable() {
            return Ok(None);
        }
        let mut n = Netlist::new(format!(
            "srag2d_chained_{}x{}",
            self.shape.width(),
            self.shape.height()
        ));
        let next = n.add_input("next");
        let col = build_into_parts(
            &mut n,
            &self.col.spec,
            next,
            "col_",
            ControlStyle::BinaryCounters,
            None,
        )?;
        let row = build_into_parts(
            &mut n,
            &self.row.spec,
            next,
            "row_",
            ControlStyle::BinaryCounters,
            Some(col.cycle_wrap),
        )?;
        for &l in row.select_lines.iter().chain(&col.select_lines) {
            n.add_output(l);
        }
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate().map_err(SragError::from)?;
        Ok(Some(Srag2dNetlist {
            netlist: n,
            row_lines: row.select_lines,
            col_lines: col.select_lines,
            next_input: next,
            shape: self.shape,
            layout: self.layout,
        }))
    }

    /// Elaborates both SRAGs with the chosen control style (the §4
    /// counters-vs-rings ablation).
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn elaborate_with_style(&self, style: ControlStyle) -> Result<Srag2dNetlist, SragError> {
        let mut n = Netlist::new(format!(
            "srag2d_{:?}_{}x{}",
            style,
            self.shape.width(),
            self.shape.height()
        ));
        let next = n.add_input("next");
        let row = build_into_parts(&mut n, &self.row.spec, next, "row_", style, None)?;
        let col = build_into_parts(&mut n, &self.col.spec, next, "col_", style, None)?;
        for &l in row.select_lines.iter().chain(&col.select_lines) {
            n.add_output(l);
        }
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate().map_err(SragError::from)?;
        Ok(Srag2dNetlist {
            netlist: n,
            row_lines: row.select_lines,
            col_lines: col.select_lines,
            next_input: next,
            shape: self.shape,
            layout: self.layout,
        })
    }
}

/// Behavioural row+column SRAG pair presenting linear addresses.
#[derive(Debug, Clone)]
pub struct Srag2dSimulator {
    row: SragSimulator,
    col: SragSimulator,
    shape: ArrayShape,
    layout: Layout,
}

impl Srag2dSimulator {
    /// The row-dimension simulator.
    pub fn row(&self) -> &SragSimulator {
        &self.row
    }

    /// The column-dimension simulator.
    pub fn col(&self) -> &SragSimulator {
        &self.col
    }
}

impl AddressGenerator for Srag2dSimulator {
    fn reset(&mut self) {
        self.row.reset();
        self.col.reset();
    }

    fn advance(&mut self) {
        self.row.advance();
        self.col.advance();
    }

    fn current(&self) -> u32 {
        self.shape
            .to_linear(self.row.current(), self.col.current(), self.layout)
            .expect("mapped coordinates are in range")
    }
}

/// The elaborated pair: one netlist, two select-line groups.
#[derive(Debug, Clone)]
pub struct Srag2dNetlist {
    /// The implementation. Inputs: `reset`, `next`. Outputs: row
    /// lines then column lines.
    pub netlist: Netlist,
    /// Row select nets (RS), indexed by row.
    pub row_lines: Vec<NetId>,
    /// Column select nets (CS), indexed by column.
    pub col_lines: Vec<NetId>,
    /// The `next` input net.
    pub next_input: NetId,
    /// Array geometry.
    pub shape: ArrayShape,
    /// Data layout.
    pub layout: Layout,
}

impl Srag2dNetlist {
    /// Decodes the currently presented linear address from a running
    /// simulator, or `None` if either dimension is not exactly
    /// one-hot.
    pub fn observed_address(&self, sim: &Simulator<'_>) -> Option<u32> {
        let r = observed_one_hot(sim, &self.row_lines)?;
        let c = observed_one_hot(sim, &self.col_lines)?;
        self.shape.to_linear(r, c, self.layout).ok()
    }
}

/// Adapter presenting an elaborated [`Srag2dNetlist`] through the
/// behavioural [`AddressGenerator`] interface, so gate-level designs
/// can drive exactly the same co-simulation and verification
/// harnesses as the models they implement.
#[derive(Debug)]
pub struct GateLevelGenerator<'a> {
    design: &'a Srag2dNetlist,
    sim: Simulator<'a>,
}

impl<'a> GateLevelGenerator<'a> {
    /// Wraps `design`, resetting it so the first address is
    /// presented.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures.
    pub fn new(design: &'a Srag2dNetlist) -> Result<Self, SragError> {
        let mut g = GateLevelGenerator {
            design,
            sim: Simulator::new(&design.netlist)?,
        };
        AddressGenerator::reset(&mut g);
        Ok(g)
    }
}

impl AddressGenerator for GateLevelGenerator<'_> {
    fn reset(&mut self) {
        // Reset cycle, then one advance so the first address is
        // presented on the select lines (the netlist presents state
        // post-edge).
        self.sim
            .step_bools(&[true, false])
            .expect("validated netlist steps");
        self.sim
            .step_bools(&[false, true])
            .expect("validated netlist steps");
    }

    fn advance(&mut self) {
        self.sim
            .step_bools(&[false, true])
            .expect("validated netlist steps");
    }

    fn current(&self) -> u32 {
        self.design
            .observed_address(&self.sim)
            .expect("select lines are two-hot after reset")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen_seq::workloads;

    #[test]
    fn paper_example_round_trips_behaviourally() {
        let shape = ArrayShape::new(4, 4);
        let lin = workloads::motion_est_read(shape, 2, 2, 0);
        let pair = Srag2d::map(&lin, shape, Layout::RowMajor).unwrap();
        assert_eq!(pair.row().spec.div_count, 2);
        assert_eq!(pair.col().spec.div_count, 1);
        let mut sim = pair.simulator();
        assert_eq!(sim.collect_sequence(lin.len()), lin);
    }

    #[test]
    fn paper_example_round_trips_at_gate_level() {
        let shape = ArrayShape::new(4, 4);
        let lin = workloads::motion_est_read(shape, 2, 2, 0);
        let pair = Srag2d::map(&lin, shape, Layout::RowMajor).unwrap();
        let design = pair.elaborate().unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        for (i, &expected) in lin.iter().enumerate() {
            sim.step_bools(&[false, true]).unwrap();
            assert_eq!(design.observed_address(&sim), Some(expected), "step {i}");
        }
    }

    #[test]
    fn two_hot_invariant_each_dimension_one_hot() {
        let shape = ArrayShape::new(8, 8);
        let lin = workloads::motion_est_read(shape, 4, 2, 0);
        let pair = Srag2d::map(&lin, shape, Layout::RowMajor).unwrap();
        let design = pair.elaborate().unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        for _ in 0..lin.len() {
            sim.step_bools(&[false, true]).unwrap();
            let hot_rows = design
                .row_lines
                .iter()
                .filter(|&&l| sim.value(l).to_bool() == Some(true))
                .count();
            let hot_cols = design
                .col_lines
                .iter()
                .filter(|&&l| sim.value(l).to_bool() == Some(true))
                .count();
            assert_eq!((hot_rows, hot_cols), (1, 1));
        }
    }

    #[test]
    fn fifo_is_chainable_and_chained_netlist_matches() {
        let shape = ArrayShape::new(8, 8);
        let lin = workloads::fifo(shape);
        let pair = Srag2d::map(&lin, shape, Layout::RowMajor).unwrap();
        assert!(pair.chainable());
        let chained = pair.elaborate_chained().unwrap().expect("chainable");
        let mut sim = Simulator::new(&chained.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        for (i, &expected) in lin.iter().enumerate() {
            sim.step_bools(&[false, true]).unwrap();
            assert_eq!(chained.observed_address(&sim), Some(expected), "step {i}");
        }
        // Second period too (periodicity survives the chaining).
        for (i, &expected) in lin.iter().enumerate() {
            sim.step_bools(&[false, true]).unwrap();
            assert_eq!(
                chained.observed_address(&sim),
                Some(expected),
                "period 2 step {i}"
            );
        }
    }

    #[test]
    fn chaining_saves_flip_flops() {
        let shape = ArrayShape::new(16, 16);
        let lin = workloads::fifo(shape);
        let pair = Srag2d::map(&lin, shape, Layout::RowMajor).unwrap();
        let normal = pair.elaborate().unwrap();
        let chained = pair.elaborate_chained().unwrap().expect("chainable");
        assert!(
            chained.netlist.num_flip_flops() < normal.netlist.num_flip_flops(),
            "chained {} vs normal {}",
            chained.netlist.num_flip_flops(),
            normal.netlist.num_flip_flops()
        );
    }

    #[test]
    fn non_raster_patterns_are_not_chainable() {
        let shape = ArrayShape::new(8, 8);
        let lin = workloads::motion_est_read(shape, 2, 2, 0);
        let pair = Srag2d::map(&lin, shape, Layout::RowMajor).unwrap();
        assert!(!pair.chainable());
        assert!(pair.elaborate_chained().unwrap().is_none());
    }

    #[test]
    fn ring_style_pair_matches_behaviour() {
        use crate::arch::ControlStyle;
        let shape = ArrayShape::new(4, 4);
        let lin = workloads::motion_est_read(shape, 2, 2, 0);
        let pair = Srag2d::map(&lin, shape, Layout::RowMajor).unwrap();
        let design = pair
            .elaborate_with_style(ControlStyle::RingCounters)
            .unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        for (i, &expected) in lin.iter().enumerate() {
            sim.step_bools(&[false, true]).unwrap();
            assert_eq!(design.observed_address(&sim), Some(expected), "step {i}");
        }
    }

    #[test]
    fn gate_level_generator_matches_behavioural_through_the_trait() {
        let shape = ArrayShape::new(8, 8);
        let lin = workloads::motion_est_read(shape, 2, 2, 0);
        let pair = Srag2d::map(&lin, shape, Layout::RowMajor).unwrap();
        let design = pair.elaborate().unwrap();
        let mut gate = GateLevelGenerator::new(&design).unwrap();
        let mut model = pair.simulator();
        assert_eq!(
            gate.collect_sequence(2 * lin.len()),
            model.collect_sequence(2 * lin.len())
        );
    }

    #[test]
    fn fifo_write_sequence_maps() {
        let shape = ArrayShape::new(8, 8);
        let lin = workloads::fifo(shape);
        let pair = Srag2d::map(&lin, shape, Layout::RowMajor).unwrap();
        let mut sim = pair.simulator();
        assert_eq!(sim.collect_sequence(lin.len()), lin);
    }

    #[test]
    fn out_of_range_sequence_rejected() {
        let shape = ArrayShape::new(2, 2);
        let lin = AddressSequence::from_vec(vec![0, 5]);
        assert!(matches!(
            Srag2d::map(&lin, shape, Layout::RowMajor),
            Err(SragError::Seq(_))
        ));
    }

    #[test]
    fn flip_flop_count_is_sum_of_dimensions_not_product() {
        let shape = ArrayShape::new(16, 16);
        let lin = workloads::fifo(shape);
        let pair = Srag2d::map(&lin, shape, Layout::RowMajor).unwrap();
        let ffs = pair.row().spec.num_flip_flops() + pair.col().spec.num_flip_flops();
        assert_eq!(ffs, 32, "two-hot: H + W flip-flops, not H x W");
    }
}
