//! The automatic mapping procedure of paper §5 (the authors'
//! `SRAdGen` tool).
//!
//! Given a one-dimensional address sequence `I`, the mapper derives
//!
//! * `D` — consecutive repetition counts, which must all equal the
//!   common division count `dC`,
//! * `R` — the run-collapsed (reduced) sequence,
//! * `U`, `O`, `Z` — the unique addresses of `R` in first-appearance
//!   order with their occurrence counts and first positions,
//! * `S` — the grouping of select lines onto shift registers, and
//! * `P` — the per-register workloads, which must all equal the
//!   common pass count `pC`,
//!
//! and finally *verifies* the grouped machine against the input
//! (initial grouping may fail, e.g. for `1,2,3,4,3,2,1,4`; paper §5).

use adgen_seq::{AddressGenerator, AddressSequence};

use crate::arch::{ShiftRegisterSpec, SragSpec};
use crate::error::SragError;
use crate::sim::SragSimulator;

/// The result of a successful mapping: the architecture plus every
/// intermediate set, so paper Table 2 can be reproduced verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// The mapped architecture.
    pub spec: SragSpec,
    /// `D`: run length of each run of `I`.
    pub division_counts: Vec<usize>,
    /// `R`: the reduced sequence.
    pub reduced: AddressSequence,
    /// `U`: unique addresses in first-appearance order.
    pub unique: Vec<u32>,
    /// `O`: occurrence count of each unique address in `R`.
    pub occurrences: Vec<usize>,
    /// `Z`: first position of each unique address in `R`.
    pub first_positions: Vec<usize>,
    /// `P`: reduced elements produced by each shift register per pass.
    pub pass_counts: Vec<usize>,
}

/// Maps an address sequence onto an SRAG, or explains precisely which
/// architectural restriction the sequence violates.
///
/// # Errors
///
/// * [`SragError::EmptySequence`] for an empty input.
/// * [`SragError::DivCntViolation`] if consecutive repetition counts
///   differ (paper's single-`DivCnt` restriction).
/// * [`SragError::PassCntViolation`] if register workloads differ
///   (paper's single-`PassCnt` restriction).
/// * [`SragError::GroupingFailure`] if the §5 verification step finds
///   the grouped machine does not reproduce the sequence.
///
/// # Example
///
/// ```
/// use adgen_core::mapper::map_sequence;
/// use adgen_seq::AddressSequence;
///
/// # fn main() -> Result<(), adgen_core::SragError> {
/// let cols = AddressSequence::from_vec(vec![0,1,0,1,2,3,2,3,0,1,0,1,2,3,2,3]);
/// let m = map_sequence(&cols)?;
/// assert_eq!(m.spec.div_count, 1);
/// assert_eq!(m.spec.pass_count, 4);
/// assert_eq!(m.spec.num_registers(), 2);
/// # Ok(())
/// # }
/// ```
pub fn map_sequence(sequence: &AddressSequence) -> Result<Mapping, SragError> {
    if sequence.is_empty() {
        return Err(SragError::EmptySequence);
    }

    // Step 1: division counts D; all must be equal, giving dC.
    let runs = sequence.run_length_encode();
    let div_count = runs[0].1;
    {
        let mut position = 0usize;
        for &(address, len) in &runs {
            if len != div_count {
                return Err(SragError::DivCntViolation {
                    expected: div_count,
                    found: len,
                    address,
                    position,
                });
            }
            position += len;
        }
    }
    let division_counts: Vec<usize> = runs.iter().map(|&(_, l)| l).collect();

    // Step 2: reduced sequence R.
    let reduced = sequence.collapse_runs();

    // Step 3: unique sequence U with occurrences O and first positions Z.
    let entries = reduced.unique_in_order();
    let unique: Vec<u32> = entries.iter().map(|e| e.address).collect();
    let occurrences: Vec<usize> = entries.iter().map(|e| e.occurrences).collect();
    let first_positions: Vec<usize> = entries.iter().map(|e| e.first_position).collect();

    // Step 4: initial grouping. Consecutive unique addresses uₖ,uₖ₊₁
    // join the same register iff they occur equally often and first
    // appear at consecutive positions of R.
    let mut groups: Vec<Vec<u32>> = vec![vec![unique[0]]];
    for k in 1..unique.len() {
        let joinable = occurrences[k] == occurrences[k - 1]
            && first_positions[k] == first_positions[k - 1] + 1;
        if joinable {
            groups.last_mut().expect("nonempty groups").push(unique[k]);
        } else {
            groups.push(vec![unique[k]]);
        }
    }

    // Step 5: pass counts P — "the length of R that is produced by
    // each of the shift registers" (per token visit): run-length
    // encode R at the granularity of register membership. Every
    // segment must have the same length for a single PassCnt to
    // exist.
    let segments = register_segments(&reduced, &groups);
    let pass_count = segments[0].1;
    if let Some(&(register, found)) = segments.iter().find(|&&(_, len)| len != pass_count) {
        return Err(SragError::PassCntViolation {
            expected: pass_count,
            found,
            register,
        });
    }
    let pass_counts: Vec<usize> = vec![pass_count; groups.len()];
    // Each register's occurrences must be uniform for pC = Mᵢ ×
    // iterations to hold; a mixed register cannot produce its segment
    // by recirculation. Report as a grouping failure at the first
    // divergence found by verification below — but catch the obvious
    // arithmetic case early as a PassCnt violation.
    for (register, g) in groups.iter().enumerate() {
        if !pass_count.is_multiple_of(g.len()) {
            return Err(SragError::PassCntViolation {
                expected: pass_count,
                found: g.len(),
                register,
            });
        }
    }

    let num_lines = sequence.max_address().expect("nonempty") as usize + 1;
    let spec = SragSpec::new(
        groups.into_iter().map(ShiftRegisterSpec::new).collect(),
        div_count,
        pass_count,
        num_lines,
    );

    // Step 6: verification — the grouped machine must reproduce R
    // (and hence I). Simulate one full period.
    let mut sim = SragSimulator::new(spec.clone());
    sim.reset();
    for (position, &expected) in reduced.iter().enumerate() {
        let generated = sim.current();
        if generated != expected {
            return Err(SragError::GroupingFailure {
                position,
                expected,
                generated,
            });
        }
        for _ in 0..div_count {
            sim.advance();
        }
    }

    Ok(Mapping {
        spec,
        division_counts,
        reduced,
        unique,
        occurrences,
        first_positions,
        pass_counts,
    })
}

/// Run-length encodes `reduced` at register granularity: one
/// `(register, length)` entry per maximal run of consecutive elements
/// belonging to the same group. Used to derive the paper's `P` set —
/// the reduced-sequence length each register produces per token
/// visit.
pub(crate) fn register_segments(
    reduced: &AddressSequence,
    groups: &[Vec<u32>],
) -> Vec<(usize, usize)> {
    let group_of = |a: u32| -> usize {
        groups
            .iter()
            .position(|g| g.contains(&a))
            .expect("every reduced element is in some group")
    };
    let mut segments: Vec<(usize, usize)> = Vec::new();
    for &a in reduced.iter() {
        let g = group_of(a);
        match segments.last_mut() {
            Some((last, len)) if *last == g => *len += 1,
            _ => segments.push((g, 1)),
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_as() -> AddressSequence {
        AddressSequence::from_vec(vec![0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3])
    }

    /// Paper Table 2 end to end.
    #[test]
    fn paper_table2_parameters() {
        let m = map_sequence(&row_as()).unwrap();
        assert_eq!(m.division_counts, vec![2; 8]);
        assert_eq!(m.reduced.as_slice(), &[0, 1, 0, 1, 2, 3, 2, 3]);
        assert_eq!(m.unique, vec![0, 1, 2, 3]);
        assert_eq!(m.occurrences, vec![2, 2, 2, 2]);
        assert_eq!(m.first_positions, vec![0, 1, 4, 5]);
        assert_eq!(m.pass_counts, vec![4, 4]);
        assert_eq!(m.spec.div_count, 2);
        assert_eq!(m.spec.pass_count, 4);
        let regs: Vec<&[u32]> = m.spec.registers.iter().map(|r| r.lines()).collect();
        assert_eq!(regs, vec![&[0u32, 1][..], &[2u32, 3][..]]);
    }

    #[test]
    fn mapped_machine_reproduces_input() {
        let s = row_as();
        let m = map_sequence(&s).unwrap();
        let mut sim = SragSimulator::new(m.spec);
        assert_eq!(sim.collect_sequence(s.len()), s);
    }

    #[test]
    fn incremental_maps_to_ring() {
        let s = AddressSequence::from_vec((0..16).collect());
        let m = map_sequence(&s).unwrap();
        assert_eq!(m.spec.num_registers(), 1);
        assert_eq!(m.spec.div_count, 1);
        assert_eq!(m.spec.pass_count, 16);
        assert_eq!(m.spec.num_flip_flops(), 16);
    }

    #[test]
    fn div_cnt_violation_reported_with_position() {
        // Paper's counter-example: 5,5,5,1,1,… has dC 3 for address 5
        // but 2 elsewhere.
        let s = AddressSequence::from_vec(vec![5, 5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]);
        let err = map_sequence(&s).unwrap_err();
        match err {
            SragError::DivCntViolation {
                expected,
                found,
                address,
                position,
            } => {
                assert_eq!(expected, 3);
                assert_eq!(found, 2);
                assert_eq!(address, 1);
                assert_eq!(position, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn pass_cnt_violation_reported() {
        // Paper's counter-example: S₀ would need pC 12, S₁ pC 8.
        let s = AddressSequence::from_vec(vec![
            5, 1, 4, 0, 5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2,
        ]);
        let err = map_sequence(&s).unwrap_err();
        match err {
            SragError::PassCntViolation {
                expected, found, ..
            } => {
                assert_eq!(expected.max(found), 12);
                assert_eq!(expected.min(found), 8);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn grouping_failure_detected_by_verification() {
        // Paper's §5 example where initial grouping fails.
        let s = AddressSequence::from_vec(vec![1, 2, 3, 4, 3, 2, 1, 4]);
        let err = map_sequence(&s).unwrap_err();
        assert!(
            matches!(err, SragError::GroupingFailure { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn empty_sequence_rejected() {
        assert!(matches!(
            map_sequence(&AddressSequence::new()),
            Err(SragError::EmptySequence)
        ));
    }

    #[test]
    fn single_address_sequence() {
        let s = AddressSequence::from_vec(vec![3, 3, 3]);
        let m = map_sequence(&s).unwrap();
        assert_eq!(m.spec.div_count, 3);
        assert_eq!(m.spec.num_flip_flops(), 1);
        let mut sim = SragSimulator::new(m.spec);
        assert_eq!(sim.collect_sequence(6).as_slice(), &[3, 3, 3, 3, 3, 3]);
    }

    #[test]
    fn paper_fig5_sequences_map() {
        let a = AddressSequence::from_vec(vec![5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]);
        let m = map_sequence(&a).unwrap();
        assert_eq!(m.spec.div_count, 2);
        let b = AddressSequence::from_vec(vec![5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2]);
        let m = map_sequence(&b).unwrap();
        assert_eq!(m.spec.div_count, 1);
        assert_eq!(m.spec.pass_count, 8);
        assert_eq!(m.spec.num_registers(), 2);
    }

    #[test]
    fn column_sequence_of_table1_maps() {
        let cols = AddressSequence::from_vec(vec![0, 1, 0, 1, 2, 3, 2, 3, 0, 1, 0, 1, 2, 3, 2, 3]);
        let m = map_sequence(&cols).unwrap();
        assert_eq!(m.spec.div_count, 1);
        assert_eq!(m.spec.pass_count, 4);
        let mut sim = SragSimulator::new(m.spec);
        assert_eq!(sim.collect_sequence(cols.len()), cols);
    }

    #[test]
    fn rotate90_maps_with_descending_line_order() {
        use adgen_seq::{workloads, ArrayShape, Layout};
        // The SRAG does not care about numeric line order: the
        // rotate-90 scan's descending row stream maps onto a ring
        // whose flip-flops are wired 7,6,…,0.
        let shape = ArrayShape::new(8, 8);
        let lin = workloads::rotate90(shape);
        let (rows, cols) = lin.decompose(shape, Layout::RowMajor).unwrap();
        let m = map_sequence(&rows).unwrap();
        assert_eq!(m.spec.num_registers(), 1);
        assert_eq!(
            m.spec.registers[0].lines(),
            &[7, 6, 5, 4, 3, 2, 1, 0],
            "descending ring"
        );
        let mut sim = SragSimulator::new(m.spec);
        assert_eq!(sim.collect_sequence(rows.len()), rows);
        // Column stream maps too (each column held H cycles).
        let mc = map_sequence(&cols).unwrap();
        assert_eq!(mc.spec.div_count, 8);
    }

    #[test]
    fn mapping_round_trip_property_examples() {
        use adgen_seq::{workloads, ArrayShape, Layout};
        // Every paper workload's row and column streams must map and
        // round-trip.
        let shape = ArrayShape::new(8, 8);
        let sequences = [
            workloads::motion_est_read(shape, 2, 2, 0),
            workloads::fifo(shape),
            workloads::zoom_by_two(shape),
            workloads::transpose_scan(shape),
        ];
        for lin in sequences {
            let (rows, cols) = lin.decompose(shape, Layout::RowMajor).unwrap();
            for dim in [rows, cols] {
                let m = map_sequence(&dim).expect("workload dimension must map");
                let mut sim = SragSimulator::new(m.spec);
                assert_eq!(sim.collect_sequence(dim.len()), dim);
            }
        }
    }
}
