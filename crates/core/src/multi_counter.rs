//! The multi-counter SRAG extension sketched at the end of paper §4:
//! "The restrictions on DivCnt and PassCnt … can be relaxed by using
//! multiple counters that provide more flexibility in the sequences
//! that can be generated."
//!
//! This module implements that relaxation concretely:
//!
//! * **per-address division counts** — every flip-flop (select line)
//!   carries its own hold count; a single division counter compares
//!   against a *steered* terminal value selected by the active line,
//! * **per-register pass counts** — each shift register has its own
//!   pass counter, enabled only while that register holds the token.
//!
//! Both counter-example sequences the paper uses to illustrate the
//! base restrictions (`5,5,5,1,1,…` for DivCnt and the 12-vs-8-pass
//! sequence for PassCnt) become mappable.

use adgen_netlist::{CellKind, NetId, Netlist, Simulator};
use adgen_seq::{AddressGenerator, AddressSequence};
use adgen_synth::fsm::MAX_FANOUT;
use adgen_synth::mapgen::build_mod_counter;
use adgen_synth::techmap::{and_tree, insert_fanout_buffers, or_tree};

use crate::arch::ShiftRegisterSpec;
use crate::error::SragError;
use crate::netlist::observed_one_hot;

/// Architecture of a multi-counter SRAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiCounterSragSpec {
    /// Shift registers in token order.
    pub registers: Vec<ShiftRegisterSpec>,
    /// Hold count for each flip-flop, parallel to
    /// `registers[i].lines()[j]` — the per-address `dC`.
    pub div_counts: Vec<Vec<usize>>,
    /// Shift-enables each register keeps the token for — the
    /// per-register `pC`.
    pub pass_counts: Vec<usize>,
    /// Number of select lines.
    pub num_lines: usize,
}

impl MultiCounterSragSpec {
    /// Validates and builds a specification.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree, a count is zero, a pass count is
    /// not a multiple of its register length, or a line repeats.
    pub fn new(
        registers: Vec<ShiftRegisterSpec>,
        div_counts: Vec<Vec<usize>>,
        pass_counts: Vec<usize>,
        num_lines: usize,
    ) -> Self {
        assert!(!registers.is_empty(), "need at least one register");
        assert_eq!(registers.len(), div_counts.len(), "div_counts shape");
        assert_eq!(registers.len(), pass_counts.len(), "pass_counts shape");
        let mut seen = std::collections::HashSet::new();
        for ((r, d), &p) in registers.iter().zip(&div_counts).zip(&pass_counts) {
            assert_eq!(r.len(), d.len(), "per-flip-flop div counts");
            assert!(d.iter().all(|&x| x > 0), "div counts must be nonzero");
            assert!(p > 0 && p % r.len() == 0, "pass count multiple of length");
            for &l in r.lines() {
                assert!((l as usize) < num_lines, "line out of range");
                assert!(seen.insert(l), "line mapped twice");
            }
        }
        MultiCounterSragSpec {
            registers,
            div_counts,
            pass_counts,
            num_lines,
        }
    }

    /// Total flip-flops.
    pub fn num_flip_flops(&self) -> usize {
        self.registers.iter().map(ShiftRegisterSpec::len).sum()
    }

    /// One full period of the generated sequence.
    pub fn period(&self) -> usize {
        let mut total = 0;
        for (i, r) in self.registers.iter().enumerate() {
            let iterations = self.pass_counts[i] / r.len();
            let per_pass: usize = self.div_counts[i].iter().sum();
            total += iterations * per_pass;
        }
        total
    }
}

/// Behavioural multi-counter SRAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiCounterSragSimulator {
    spec: MultiCounterSragSpec,
    register: usize,
    position: usize,
    div: usize,
    pass: usize,
}

impl MultiCounterSragSimulator {
    /// Creates a simulator in the reset state.
    pub fn new(spec: MultiCounterSragSpec) -> Self {
        MultiCounterSragSimulator {
            spec,
            register: 0,
            position: 0,
            div: 0,
            pass: 0,
        }
    }

    /// The architecture being simulated.
    pub fn spec(&self) -> &MultiCounterSragSpec {
        &self.spec
    }
}

impl AddressGenerator for MultiCounterSragSimulator {
    fn reset(&mut self) {
        self.register = 0;
        self.position = 0;
        self.div = 0;
        self.pass = 0;
    }

    fn advance(&mut self) {
        let hold = self.spec.div_counts[self.register][self.position];
        if self.div + 1 < hold {
            self.div += 1;
            return;
        }
        self.div = 0;
        let reg_len = self.spec.registers[self.register].len();
        let pass = self.pass + 1 == self.spec.pass_counts[self.register];
        if pass {
            self.pass = 0;
            self.register = (self.register + 1) % self.spec.registers.len();
            self.position = 0;
        } else {
            self.pass += 1;
            self.position = (self.position + 1) % reg_len;
        }
    }

    fn current(&self) -> u32 {
        self.spec.registers[self.register].lines()[self.position]
    }
}

/// Maps a sequence onto a multi-counter SRAG under the relaxed
/// restrictions.
///
/// Remaining requirements: every occurrence of an address must repeat
/// the same number of consecutive times (its personal `dC`), and the
/// initial-grouping heuristic plus verification must succeed — the
/// relaxation removes the *uniformity* requirements, not the
/// structural ones.
///
/// # Errors
///
/// * [`SragError::EmptySequence`] for an empty input.
/// * [`SragError::DivCntViolation`] if one address shows two
///   different repetition counts.
/// * [`SragError::PassCntViolation`] if a register's workload is not
///   a multiple of its length.
/// * [`SragError::GroupingFailure`] if verification fails.
pub fn map_sequence_relaxed(sequence: &AddressSequence) -> Result<MultiCounterSragSpec, SragError> {
    if sequence.is_empty() {
        return Err(SragError::EmptySequence);
    }
    let runs = sequence.run_length_encode();
    // Per-address division counts must be self-consistent.
    let mut per_address: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    {
        let mut position = 0usize;
        for &(address, len) in &runs {
            match per_address.get(&address) {
                Some(&d) if d != len => {
                    return Err(SragError::DivCntViolation {
                        expected: d,
                        found: len,
                        address,
                        position,
                    });
                }
                _ => {
                    per_address.insert(address, len);
                }
            }
            position += len;
        }
    }
    let reduced = sequence.collapse_runs();
    let entries = reduced.unique_in_order();
    let unique: Vec<u32> = entries.iter().map(|e| e.address).collect();
    let occurrences: Vec<usize> = entries.iter().map(|e| e.occurrences).collect();
    let first_positions: Vec<usize> = entries.iter().map(|e| e.first_position).collect();

    // Initial grouping, as in the base mapper.
    let mut groups: Vec<Vec<u32>> = vec![vec![unique[0]]];
    for k in 1..unique.len() {
        let joinable = occurrences[k] == occurrences[k - 1]
            && first_positions[k] == first_positions[k - 1] + 1;
        if joinable {
            groups.last_mut().expect("nonempty").push(unique[k]);
        } else {
            groups.push(vec![unique[k]]);
        }
    }
    // Per-register pass counts: every token visit of a register must
    // produce the same number of reduced elements, but different
    // registers may differ — that is the relaxation.
    let segments = crate::mapper::register_segments(&reduced, &groups);
    let mut pass_counts: Vec<Option<usize>> = vec![None; groups.len()];
    for &(register, len) in &segments {
        match pass_counts[register] {
            None => pass_counts[register] = Some(len),
            Some(expected) if expected != len => {
                return Err(SragError::PassCntViolation {
                    expected,
                    found: len,
                    register,
                });
            }
            Some(_) => {}
        }
    }
    let pass_counts: Vec<usize> = pass_counts
        .into_iter()
        .map(|p| p.expect("every group appears in R"))
        .collect();
    for (register, (g, &p)) in groups.iter().zip(&pass_counts).enumerate() {
        if p % g.len() != 0 {
            return Err(SragError::PassCntViolation {
                expected: p,
                found: g.len(),
                register,
            });
        }
    }
    let num_lines = sequence.max_address().expect("nonempty") as usize + 1;
    let div_counts: Vec<Vec<usize>> = groups
        .iter()
        .map(|g| g.iter().map(|a| per_address[a]).collect())
        .collect();
    let spec = MultiCounterSragSpec::new(
        groups.into_iter().map(ShiftRegisterSpec::new).collect(),
        div_counts,
        pass_counts,
        num_lines,
    );

    // Verification.
    let mut sim = MultiCounterSragSimulator::new(spec.clone());
    sim.reset();
    for (position, &(expected, len)) in runs.iter().enumerate() {
        let generated = sim.current();
        if generated != expected {
            return Err(SragError::GroupingFailure {
                position,
                expected,
                generated,
            });
        }
        for _ in 0..len {
            sim.advance();
        }
    }
    Ok(spec)
}

/// Gate-level multi-counter SRAG.
#[derive(Debug, Clone)]
pub struct MultiCounterSragNetlist {
    /// The implementation. Inputs: `reset`, `next`. Outputs: select
    /// lines in line order.
    pub netlist: Netlist,
    /// Select-line nets by line index.
    pub select_lines: Vec<NetId>,
}

impl MultiCounterSragNetlist {
    /// Elaborates a multi-counter SRAG: one steered division counter
    /// plus one pass counter per register.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn elaborate(spec: &MultiCounterSragSpec) -> Result<Self, SragError> {
        let mut n = Netlist::new(format!("mcsrag_{}ff", spec.num_flip_flops()));
        let next = n.add_input("next");
        let rst = n.reset();
        let num_regs = spec.registers.len();

        // Flip-flop output nets first.
        let q: Vec<Vec<NetId>> = spec
            .registers
            .iter()
            .enumerate()
            .map(|(i, r)| {
                (0..r.len())
                    .map(|j| n.add_net(format!("s{i}_{j}")))
                    .collect()
            })
            .collect();

        // --- Division side: one counter, steered terminal count. ---
        let max_hold = spec
            .div_counts
            .iter()
            .flatten()
            .copied()
            .max()
            .expect("nonempty spec");
        let enable = if max_hold == 1 {
            next
        } else {
            let width = (usize::BITS - (max_hold - 1).leading_zeros()) as usize;
            let divq: Vec<NetId> = (0..width).map(|b| n.add_net(format!("divq{b}"))).collect();
            // Steered terminal value: bit b = OR of active lines whose
            // (hold-1) has bit b set.
            let mut target = Vec::with_capacity(width);
            for b in 0..width {
                let mut contributors = Vec::new();
                for (i, r) in spec.registers.iter().enumerate() {
                    for (j, &line_q) in q[i].iter().enumerate().take(r.len()) {
                        let t = spec.div_counts[i][j] - 1;
                        if (t >> b) & 1 == 1 {
                            contributors.push(line_q);
                        }
                    }
                }
                target.push(or_tree(&mut n, &contributors).map_err(SragError::from)?);
            }
            // enable = next & (divq == target).
            let mut eq_bits = Vec::with_capacity(width);
            for b in 0..width {
                eq_bits.push(
                    n.gate(CellKind::Xnor2, &[divq[b], target[b]])
                        .map_err(SragError::from)?,
                );
            }
            let eq = and_tree(&mut n, &eq_bits).map_err(SragError::from)?;
            let enable = n
                .gate(CellKind::And2, &[next, eq])
                .map_err(SragError::from)?;
            // Counter: increments on next, clears on enable.
            let not_enable = n.gate(CellKind::Inv, &[enable]).map_err(SragError::from)?;
            let mut p: Vec<NetId> = divq.clone();
            let mut stride = 1;
            while stride < width {
                for i in (stride..width).rev() {
                    p[i] = n
                        .gate(CellKind::And2, &[p[i], p[i - stride]])
                        .map_err(SragError::from)?;
                }
                stride *= 2;
            }
            let mut c = Vec::with_capacity(width);
            c.push(next);
            for i in 1..width {
                c.push(
                    n.gate(CellKind::And2, &[next, p[i - 1]])
                        .map_err(SragError::from)?,
                );
            }
            for b in 0..width {
                let inc = n
                    .gate(CellKind::Xor2, &[divq[b], c[b]])
                    .map_err(SragError::from)?;
                let d = n
                    .gate(CellKind::And2, &[not_enable, inc])
                    .map_err(SragError::from)?;
                n.add_instance(format!("div_ff{b}"), CellKind::Dffr, &[d, rst], &[divq[b]])?;
            }
            enable
        };

        // --- Pass side: one counter per register, gated by token
        // residency. ---
        let mut pass: Vec<NetId> = Vec::with_capacity(num_regs);
        if num_regs == 1 {
            // Never passes to another register; recirculation only.
            let lo = n.gate(CellKind::TieLo, &[]).map_err(SragError::from)?;
            pass.push(lo);
        } else {
            for (i, r) in spec.registers.iter().enumerate() {
                let token_here = or_tree(&mut n, &q[i][..r.len()]).map_err(SragError::from)?;
                let count_en = n
                    .gate(CellKind::And2, &[enable, token_here])
                    .map_err(SragError::from)?;
                let pc = build_mod_counter(
                    &mut n,
                    spec.pass_counts[i] as u64,
                    count_en,
                    &format!("pass{i}"),
                )?;
                pass.push(pc.wrap);
            }
        }

        // --- Shift registers with per-register pass steering. ---
        for (i, r) in spec.registers.iter().enumerate() {
            for j in 0..r.len() {
                let d = if j > 0 {
                    q[i][j - 1]
                } else if num_regs == 1 {
                    q[i][r.len() - 1]
                } else {
                    // Head flip-flop: recirculate own tail unless the
                    // token is leaving this register (own pass), and
                    // accept the previous register's tail when its
                    // pass fires. With per-register pass signals a
                    // plain mux would duplicate the token on
                    // departure, so the head uses gated OR steering.
                    let prev = (i + num_regs - 1) % num_regs;
                    let tail = q[prev][spec.registers[prev].len() - 1];
                    let recirc = q[i][r.len() - 1];
                    let stay = n.gate(CellKind::Inv, &[pass[i]]).map_err(SragError::from)?;
                    let kept = n
                        .gate(CellKind::And2, &[recirc, stay])
                        .map_err(SragError::from)?;
                    let incoming = n
                        .gate(CellKind::And2, &[tail, pass[prev]])
                        .map_err(SragError::from)?;
                    n.gate(CellKind::Or2, &[kept, incoming])
                        .map_err(SragError::from)?
                };
                let kind = if i == 0 && j == 0 {
                    CellKind::Dffse
                } else {
                    CellKind::Dffre
                };
                n.add_instance(format!("sr{i}_ff{j}"), kind, &[d, enable, rst], &[q[i][j]])?;
            }
        }

        // Select lines.
        let mut select = vec![None; spec.num_lines];
        for (i, r) in spec.registers.iter().enumerate() {
            for (j, &line) in r.lines().iter().enumerate() {
                select[line as usize] = Some(q[i][j]);
            }
        }
        let select_lines: Vec<NetId> = select
            .into_iter()
            .map(|s| match s {
                Some(net) => Ok(net),
                None => n.gate(CellKind::TieLo, &[]).map_err(SragError::from),
            })
            .collect::<Result<_, _>>()?;
        for &l in &select_lines {
            n.add_output(l);
        }
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate().map_err(SragError::from)?;
        Ok(MultiCounterSragNetlist {
            netlist: n,
            select_lines,
        })
    }

    /// Decodes the presented address from a running simulator.
    pub fn observed_address(&self, sim: &Simulator<'_>) -> Option<u32> {
        observed_one_hot(sim, &self.select_lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's DivCnt counter-example now maps.
    #[test]
    fn paper_divcnt_counterexample_maps() {
        let s = AddressSequence::from_vec(vec![5, 5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]);
        let spec = map_sequence_relaxed(&s).unwrap();
        let mut sim = MultiCounterSragSimulator::new(spec);
        assert_eq!(sim.collect_sequence(s.len()), s);
    }

    /// The paper's PassCnt counter-example now maps.
    #[test]
    fn paper_passcnt_counterexample_maps() {
        let s = AddressSequence::from_vec(vec![
            5, 1, 4, 0, 5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2,
        ]);
        let spec = map_sequence_relaxed(&s).unwrap();
        assert_eq!(spec.pass_counts, vec![12, 8]);
        let mut sim = MultiCounterSragSimulator::new(spec);
        assert_eq!(sim.collect_sequence(2 * s.len()), s.repeated(2));
    }

    #[test]
    fn inconsistent_per_address_repetition_rejected() {
        // Address 5 repeats 2× then 3×: not even per-address uniform.
        let s = AddressSequence::from_vec(vec![5, 5, 1, 5, 5, 5, 1]);
        assert!(matches!(
            map_sequence_relaxed(&s),
            Err(SragError::DivCntViolation { .. })
        ));
    }

    #[test]
    fn uniform_sequences_still_map() {
        let s = AddressSequence::from_vec(vec![0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3]);
        let spec = map_sequence_relaxed(&s).unwrap();
        let mut sim = MultiCounterSragSimulator::new(spec);
        assert_eq!(sim.collect_sequence(s.len()), s);
    }

    #[test]
    fn grouping_failure_still_detected() {
        let s = AddressSequence::from_vec(vec![1, 2, 3, 4, 3, 2, 1, 4]);
        assert!(matches!(
            map_sequence_relaxed(&s),
            Err(SragError::GroupingFailure { .. })
        ));
    }

    #[test]
    fn gate_level_matches_behaviour_divcnt_case() {
        let s = AddressSequence::from_vec(vec![5, 5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]);
        let spec = map_sequence_relaxed(&s).unwrap();
        let design = MultiCounterSragNetlist::elaborate(&spec).unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        let mut model = MultiCounterSragSimulator::new(spec);
        sim.step_bools(&[true, false]).unwrap();
        model.reset();
        for cycle in 0..(2 * s.len()) {
            sim.step_bools(&[false, true]).unwrap();
            assert_eq!(
                design.observed_address(&sim),
                Some(model.current()),
                "cycle {cycle}"
            );
            model.advance();
        }
    }

    #[test]
    fn gate_level_matches_behaviour_passcnt_case() {
        let s = AddressSequence::from_vec(vec![
            5, 1, 4, 0, 5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2,
        ]);
        let spec = map_sequence_relaxed(&s).unwrap();
        let design = MultiCounterSragNetlist::elaborate(&spec).unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        let mut model = MultiCounterSragSimulator::new(spec);
        sim.step_bools(&[true, false]).unwrap();
        model.reset();
        for cycle in 0..(2 * s.len()) {
            sim.step_bools(&[false, true]).unwrap();
            assert_eq!(
                design.observed_address(&sim),
                Some(model.current()),
                "cycle {cycle}"
            );
            model.advance();
        }
    }

    #[test]
    fn gate_level_with_next_gaps() {
        let s = AddressSequence::from_vec(vec![7, 7, 2, 2, 2, 4]);
        let spec = map_sequence_relaxed(&s).unwrap();
        let design = MultiCounterSragNetlist::elaborate(&spec).unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        let mut model = MultiCounterSragSimulator::new(spec);
        sim.step_bools(&[true, false]).unwrap();
        model.reset();
        let mut lcg = 99u64;
        for cycle in 0..40 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let advance = (lcg >> 33) & 1 == 1;
            sim.step_bools(&[false, advance]).unwrap();
            assert_eq!(
                design.observed_address(&sim),
                Some(model.current()),
                "cycle {cycle}"
            );
            if advance {
                model.advance();
            }
        }
    }

    #[test]
    fn period_accounts_for_non_uniform_counts() {
        let s = AddressSequence::from_vec(vec![5, 5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]);
        let spec = map_sequence_relaxed(&s).unwrap();
        assert_eq!(spec.period(), s.len());
    }
}
