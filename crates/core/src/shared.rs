//! Time-sharing one SRAG between two address sequences — the other
//! half of paper §7's future work: *"The reuse of address circuitry
//! between different address sequences in space and time can greatly
//! reduce the area resources required."*
//!
//! Two sequences are *share-compatible* when the mapping procedure
//! assigns them the same shift-register partition `S` (the token
//! visits the same lines in the same order); they may differ freely
//! in their `dC`/`pC` timing. A typical pair: the raster *write*
//! stream and the DCT-scan *read* stream of the same buffer — both
//! are plain rings over the row (and column) lines, one divided by
//! the row length, the other undivided.
//!
//! The shared implementation keeps a single set of shift flip-flops
//! (the dominant area term) and instantiates both control-counter
//! sets, steered by a `mode` input: `mode = 0` gives sequence A's
//! timing, `mode = 1` sequence B's. The design must be reset when
//! switching modes, exactly as a phase change between producing and
//! consuming a frame buffer would.

use adgen_netlist::{CellKind, NetId, Netlist, Simulator};
use adgen_synth::fsm::MAX_FANOUT;
use adgen_synth::mapgen::build_mod_counter;
use adgen_synth::techmap::insert_fanout_buffers;

use crate::arch::SragSpec;
use crate::error::SragError;
use crate::netlist::observed_one_hot;

/// Whether two specifications can share their shift registers: same
/// register partition (same lines in the same token order) and the
/// same select-line count.
pub fn share_compatible(a: &SragSpec, b: &SragSpec) -> bool {
    a.registers == b.registers && a.num_lines == b.num_lines
}

/// A gate-level SRAG serving two sequences through one set of shift
/// registers.
#[derive(Debug, Clone)]
pub struct TimeSharedSragNetlist {
    /// The implementation. Inputs: `reset` (index 0), `next`
    /// (index 1), `mode` (index 2). Outputs: the select lines.
    pub netlist: Netlist,
    /// Select-line nets by line index.
    pub select_lines: Vec<NetId>,
    /// Sequence A's specification (`mode = 0`).
    pub spec_a: SragSpec,
    /// Sequence B's specification (`mode = 1`).
    pub spec_b: SragSpec,
}

impl TimeSharedSragNetlist {
    /// Elaborates the shared design. Returns `None` when the two
    /// specifications are not [`share_compatible`].
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn elaborate(a: &SragSpec, b: &SragSpec) -> Result<Option<Self>, SragError> {
        if !share_compatible(a, b) {
            return Ok(None);
        }
        let mut n = Netlist::new(format!("srag_shared_{}ff", a.num_flip_flops()));
        let next = n.add_input("next");
        let mode = n.add_input("mode");
        let rst = n.reset();

        // Sequence A's stimulus is gated off while B is active and
        // vice versa, so the inactive counters hold.
        let not_mode = n.gate(CellKind::Inv, &[mode])?;
        let next_a = n.gate(CellKind::And2, &[next, not_mode])?;
        let next_b = n.gate(CellKind::And2, &[next, mode])?;

        // Two control-counter sets, one live enable.
        let div_a = build_mod_counter(&mut n, a.div_count as u64, next_a, "a_divcnt")?;
        let div_b = build_mod_counter(&mut n, b.div_count as u64, next_b, "b_divcnt")?;
        let enable = n.gate(CellKind::Mux2, &[div_a.wrap, div_b.wrap, mode])?;
        let pass = if a.num_registers() > 1 {
            let pa = build_mod_counter(&mut n, a.pass_count as u64, div_a.wrap, "a_passcnt")?;
            let pb = build_mod_counter(&mut n, b.pass_count as u64, div_b.wrap, "b_passcnt")?;
            Some(n.gate(CellKind::Mux2, &[pa.wrap, pb.wrap, mode])?)
        } else {
            None
        };

        // One shared set of shift registers (the partitions are
        // identical by construction).
        let q: Vec<Vec<NetId>> = a
            .registers
            .iter()
            .enumerate()
            .map(|(i, r)| {
                (0..r.len())
                    .map(|j| n.add_net(format!("s{i}_{j}")))
                    .collect()
            })
            .collect();
        let num_regs = a.num_registers();
        for (i, r) in a.registers.iter().enumerate() {
            for j in 0..r.len() {
                let d = if j > 0 {
                    q[i][j - 1]
                } else {
                    let recirc = q[i][r.len() - 1];
                    match pass {
                        Some(p) => {
                            let prev = (i + num_regs - 1) % num_regs;
                            let tail = q[prev][a.registers[prev].len() - 1];
                            n.gate(CellKind::Mux2, &[recirc, tail, p])?
                        }
                        None => recirc,
                    }
                };
                let kind = if i == 0 && j == 0 {
                    CellKind::Dffse
                } else {
                    CellKind::Dffre
                };
                n.add_instance(format!("sr{i}_ff{j}"), kind, &[d, enable, rst], &[q[i][j]])?;
            }
        }

        let mut select = vec![None; a.num_lines];
        for (i, r) in a.registers.iter().enumerate() {
            for (j, &line) in r.lines().iter().enumerate() {
                select[line as usize] = Some(q[i][j]);
            }
        }
        let select_lines: Vec<NetId> = select
            .into_iter()
            .map(|s| match s {
                Some(net) => Ok(net),
                None => n.gate(CellKind::TieLo, &[]).map_err(SragError::from),
            })
            .collect::<Result<_, _>>()?;
        for &l in &select_lines {
            n.add_output(l);
        }
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate().map_err(SragError::from)?;
        Ok(Some(TimeSharedSragNetlist {
            netlist: n,
            select_lines,
            spec_a: a.clone(),
            spec_b: b.clone(),
        }))
    }

    /// Decodes the presented address from a running simulator.
    pub fn observed_address(&self, sim: &Simulator<'_>) -> Option<u32> {
        observed_one_hot(sim, &self.select_lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::map_sequence;
    use crate::netlist::SragNetlist;
    use crate::sim::SragSimulator;
    use adgen_netlist::{AreaReport, Library};
    use adgen_seq::{workloads, AddressGenerator, ArrayShape, Layout};

    /// Row streams of a raster write and a DCT-scan read over the
    /// same buffer: identical ring partition, different timing.
    fn write_read_row_specs(n: u32) -> (SragSpec, SragSpec) {
        let shape = ArrayShape::new(n, n);
        let (write_rows, _) = workloads::fifo(shape)
            .decompose(shape, Layout::RowMajor)
            .unwrap();
        let (read_rows, _) = workloads::transpose_scan(shape)
            .decompose(shape, Layout::RowMajor)
            .unwrap();
        (
            map_sequence(&write_rows).unwrap().spec,
            map_sequence(&read_rows).unwrap().spec,
        )
    }

    #[test]
    fn raster_and_dct_rows_are_share_compatible() {
        let (a, b) = write_read_row_specs(8);
        assert!(share_compatible(&a, &b));
        assert_ne!(a.div_count, b.div_count, "they differ only in timing");
    }

    #[test]
    fn shared_design_realizes_both_sequences() {
        let (a, b) = write_read_row_specs(8);
        let shared = TimeSharedSragNetlist::elaborate(&a, &b).unwrap().unwrap();
        for (mode, spec) in [(false, &a), (true, &b)] {
            let mut sim = Simulator::new(&shared.netlist).unwrap();
            // inputs: reset, next, mode
            sim.step_bools(&[true, false, mode]).unwrap();
            let mut model = SragSimulator::new(spec.clone());
            model.reset();
            for step in 0..2 * spec.period() {
                sim.step_bools(&[false, true, mode]).unwrap();
                assert_eq!(
                    shared.observed_address(&sim),
                    Some(model.current()),
                    "mode {mode} step {step}"
                );
                model.advance();
            }
        }
    }

    #[test]
    fn mode_switch_after_reset_works() {
        let (a, b) = write_read_row_specs(4);
        let shared = TimeSharedSragNetlist::elaborate(&a, &b).unwrap().unwrap();
        let mut sim = Simulator::new(&shared.netlist).unwrap();
        // Phase 1: sequence A (raster write rows, each row held 4x).
        sim.step_bools(&[true, false, false]).unwrap();
        let mut model = SragSimulator::new(a.clone());
        for _ in 0..6 {
            sim.step_bools(&[false, true, false]).unwrap();
            assert_eq!(shared.observed_address(&sim), Some(model.current()));
            model.advance();
        }
        // Phase change: reset, then sequence B.
        sim.step_bools(&[true, false, true]).unwrap();
        let mut model = SragSimulator::new(b.clone());
        for _ in 0..6 {
            sim.step_bools(&[false, true, true]).unwrap();
            assert_eq!(shared.observed_address(&sim), Some(model.current()));
            model.advance();
        }
    }

    #[test]
    fn sharing_saves_substantial_area() {
        let (a, b) = write_read_row_specs(16);
        let lib = Library::vcl018();
        let shared = TimeSharedSragNetlist::elaborate(&a, &b).unwrap().unwrap();
        let sep_a = SragNetlist::elaborate(&a).unwrap();
        let sep_b = SragNetlist::elaborate(&b).unwrap();
        let shared_area = AreaReport::of(&shared.netlist, &lib).total();
        let separate_area = AreaReport::of(&sep_a.netlist, &lib).total()
            + AreaReport::of(&sep_b.netlist, &lib).total();
        assert!(
            shared_area < 0.75 * separate_area,
            "shared {shared_area} vs separate {separate_area}"
        );
    }

    #[test]
    fn incompatible_partitions_are_refused() {
        let shape = ArrayShape::new(8, 8);
        let (rows, _) = workloads::motion_est_read(shape, 2, 2, 0)
            .decompose(shape, Layout::RowMajor)
            .unwrap();
        let block = map_sequence(&rows).unwrap().spec;
        let (ring, _) = write_read_row_specs(8);
        assert!(!share_compatible(&ring, &block));
        assert!(TimeSharedSragNetlist::elaborate(&ring, &block)
            .unwrap()
            .is_none());
    }
}
