//! The Shift Register based Address Generator (SRAG) — the primary
//! contribution of *“Performance-Area Trade-Off of Address Generators
//! for Address Decoder-Decoupled Memory”* (Hettiaratchi, Cheung,
//! Clarke; DATE 2002).
//!
//! An SRAG (paper §4, Fig. 5) drives the select lines of an address
//! decoder-decoupled memory directly: a *token* travels through a set
//! of circularly linked shift registers, each flip-flop output mapped
//! to one select line. Two small counters steer it:
//!
//! * `DivCnt` divides the `next` stimulus by the common repetition
//!   count `dC` of each address,
//! * `PassCnt` counts shift-enables and asserts `pass` every `pC`
//!   enables, switching the inter-register multiplexers so the token
//!   hops from one shift register to the next.
//!
//! With *two-hot* encoding (one independent SRAG per memory
//! dimension, one-hot each), the 2-D memory array itself performs the
//! AND of row and column selects — no address decoder exists anywhere.
//!
//! This crate implements:
//!
//! * [`arch`] — the architectural description ([`SragSpec`]),
//! * [`mapper`] — the paper's §5 automatic mapping procedure (their
//!   `SRAdGen` tool): address sequence → `S`, `dC`, `pC`, with the
//!   intermediate `D, R, U, O, Z, P` sets exposed for paper Table 2,
//! * [`sim`] — a cycle-accurate behavioural model implementing the
//!   token/counter semantics,
//! * [`netlist`] — elaboration to a gate-level netlist in the
//!   `vcl018` library,
//! * [`composite`] — the full two-hot row × column SRAG for 2-D
//!   arrays,
//! * [`sfm`] — Aloqeely's Sequential FIFO Memory pointer generator,
//!   the prior art SRAG improves on (paper Fig. 6),
//! * [`multi_counter`] — the paper's §4 relaxation: per-register pass
//!   counts and per-address division counts via multiple/steered
//!   counters, widening the space of mappable sequences,
//! * [`shared`] — §7's circuit reuse between different address
//!   sequences: one set of shift registers serving two
//!   share-compatible sequences under a `mode` input.
//!
//! # Example
//!
//! Map the paper's running example (Table 2) and simulate it:
//!
//! ```
//! use adgen_core::mapper::map_sequence;
//! use adgen_seq::{AddressSequence, AddressGenerator};
//!
//! # fn main() -> Result<(), adgen_core::SragError> {
//! // RowAS of paper Table 1.
//! let rows = AddressSequence::from_vec(vec![0,0,1,1,0,0,1,1,2,2,3,3,2,2,3,3]);
//! let mapping = map_sequence(&rows)?;
//! assert_eq!(mapping.spec.div_count, 2);
//! assert_eq!(mapping.spec.pass_count, 4);
//! let mut sim = adgen_core::sim::SragSimulator::new(mapping.spec.clone());
//! assert_eq!(sim.collect_sequence(16), rows);
//! # Ok(())
//! # }
//! ```

pub mod arch;
pub mod composite;
pub mod error;
pub mod harden;
pub mod mapper;
pub mod multi_counter;
pub mod netlist;
pub mod sfm;
pub mod shared;
pub mod sim;

pub use arch::{ShiftRegisterSpec, SragSpec};
pub use composite::Srag2d;
pub use error::SragError;
pub use harden::{HardenedSrag2dNetlist, HardenedSragNetlist};
pub use mapper::{map_sequence, Mapping};
pub use netlist::SragNetlist;
pub use sim::SragSimulator;
