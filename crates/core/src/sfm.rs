//! Aloqeely's Sequential FIFO Memory (SFM) pointer generators —
//! the prior art the SRAG generalizes (paper Fig. 6).
//!
//! An SFM replaces the RAM address decoder with two single-bit
//! (one-hot) shift registers: a *tail* pointer selecting the cell to
//! write and a *head* pointer selecting the cell to read, each with
//! its own `next`/`reset`. The paper lists its three limitations —
//! one-dimensional memory, one-hot (not two-hot) encoding, and
//! FIFO-only access — all lifted by the SRAG. This module exists so
//! the workspace can demonstrate that the SRAG subsumes the SFM: an
//! SFM pointer is exactly a one-register SRAG ring.

use adgen_netlist::{CellKind, NetId, Netlist, Simulator};
use adgen_synth::fsm::MAX_FANOUT;
use adgen_synth::techmap::insert_fanout_buffers;

use crate::arch::SragSpec;
use crate::error::SragError;

/// Behavioural model of an SFM's pointer pair over `depth` cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SfmSimulator {
    depth: u32,
    head: u32,
    tail: u32,
}

impl SfmSimulator {
    /// Creates the pointer pair, both at cell 0.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: u32) -> Self {
        assert!(depth > 0, "FIFO depth must be nonzero");
        SfmSimulator {
            depth,
            head: 0,
            tail: 0,
        }
    }

    /// FIFO depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Returns both pointers to cell 0.
    pub fn reset(&mut self) {
        self.head = 0;
        self.tail = 0;
    }

    /// Cell currently selected for writing (tail pointer).
    pub fn write_cell(&self) -> u32 {
        self.tail
    }

    /// Cell currently selected for reading (head pointer).
    pub fn read_cell(&self) -> u32 {
        self.head
    }

    /// Advances the tail (write) pointer.
    pub fn advance_write(&mut self) {
        self.tail = (self.tail + 1) % self.depth;
    }

    /// Advances the head (read) pointer.
    pub fn advance_read(&mut self) {
        self.head = (self.head + 1) % self.depth;
    }
}

/// Gate-level SFM pointer pair.
#[derive(Debug, Clone)]
pub struct SfmNetlist {
    /// The implementation. Inputs: `reset`, `next_write`,
    /// `next_read`. Outputs: tail (write) select lines then head
    /// (read) select lines.
    pub netlist: Netlist,
    /// Tail-pointer select nets, one per cell.
    pub write_lines: Vec<NetId>,
    /// Head-pointer select nets, one per cell.
    pub read_lines: Vec<NetId>,
}

impl SfmNetlist {
    /// Elaborates the two one-hot pointer shift registers.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn elaborate(depth: u32) -> Result<Self, SragError> {
        assert!(depth > 0, "FIFO depth must be nonzero");
        let mut n = Netlist::new(format!("sfm_{depth}"));
        let next_write = n.add_input("next_write");
        let next_read = n.add_input("next_read");
        let write_lines = Self::pointer_ring(&mut n, depth, next_write, "tail")?;
        let read_lines = Self::pointer_ring(&mut n, depth, next_read, "head")?;
        for &l in write_lines.iter().chain(&read_lines) {
            n.add_output(l);
        }
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate().map_err(SragError::from)?;
        Ok(SfmNetlist {
            netlist: n,
            write_lines,
            read_lines,
        })
    }

    fn pointer_ring(
        n: &mut Netlist,
        depth: u32,
        next: NetId,
        prefix: &str,
    ) -> Result<Vec<NetId>, SragError> {
        let rst = n.reset();
        let q: Vec<NetId> = (0..depth)
            .map(|i| n.add_net(format!("{prefix}_{i}")))
            .collect();
        for i in 0..depth as usize {
            let d = q[(i + depth as usize - 1) % depth as usize];
            let kind = if i == 0 {
                CellKind::Dffse
            } else {
                CellKind::Dffre
            };
            n.add_instance(format!("{prefix}_ff{i}"), kind, &[d, next, rst], &[q[i]])?;
        }
        Ok(q)
    }

    /// Decodes the tail pointer from a running simulator.
    pub fn observed_write_cell(&self, sim: &Simulator<'_>) -> Option<u32> {
        crate::netlist::observed_one_hot(sim, &self.write_lines)
    }

    /// Decodes the head pointer from a running simulator.
    pub fn observed_read_cell(&self, sim: &Simulator<'_>) -> Option<u32> {
        crate::netlist::observed_one_hot(sim, &self.read_lines)
    }
}

/// The SRAG specification equivalent to one SFM pointer: a single
/// circular shift register over `depth` lines with `dC = 1` —
/// demonstrating that the SFM is a degenerate SRAG.
pub fn sfm_pointer_as_srag(depth: u32) -> SragSpec {
    SragSpec::ring(depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SragSimulator;
    use adgen_seq::AddressGenerator;

    #[test]
    fn pointers_advance_independently() {
        let mut sfm = SfmSimulator::new(4);
        sfm.advance_write();
        sfm.advance_write();
        sfm.advance_read();
        assert_eq!(sfm.write_cell(), 2);
        assert_eq!(sfm.read_cell(), 1);
        sfm.reset();
        assert_eq!((sfm.write_cell(), sfm.read_cell()), (0, 0));
    }

    #[test]
    fn pointers_wrap() {
        let mut sfm = SfmSimulator::new(3);
        for _ in 0..3 {
            sfm.advance_write();
        }
        assert_eq!(sfm.write_cell(), 0);
    }

    #[test]
    fn gate_level_matches_behaviour() {
        let depth = 5;
        let design = SfmNetlist::elaborate(depth).unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        let mut model = SfmSimulator::new(depth);
        // inputs: reset, next_write, next_read
        sim.step_bools(&[true, false, false]).unwrap();
        let mut lcg = 12345u64;
        for _ in 0..40 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let w = (lcg >> 33) & 1 == 1;
            let r = (lcg >> 34) & 1 == 1;
            sim.step_bools(&[false, w, r]).unwrap();
            assert_eq!(design.observed_write_cell(&sim), Some(model.write_cell()));
            assert_eq!(design.observed_read_cell(&sim), Some(model.read_cell()));
            if w {
                model.advance_write();
            }
            if r {
                model.advance_read();
            }
        }
    }

    #[test]
    fn sfm_is_a_degenerate_srag() {
        let spec = sfm_pointer_as_srag(6);
        let mut srag = SragSimulator::new(spec);
        let mut sfm = SfmSimulator::new(6);
        for _ in 0..15 {
            assert_eq!(srag.current(), sfm.write_cell());
            srag.advance();
            sfm.advance_write();
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_depth_rejected() {
        let _ = SfmSimulator::new(0);
    }

    #[test]
    fn sfm_pointer_costs_match_a_one_hot_srag_ring() {
        // The paper could not compare SRAG with SFM ("SFM is only a
        // FIFO memory"), but structurally one SFM pointer *is* the
        // degenerate SRAG ring: the per-pointer flip-flop count and
        // area must match the ring's within the ring's cycle-wrap
        // hook.
        use crate::netlist::SragNetlist;
        use adgen_netlist::{AreaReport, Library};
        let lib = Library::vcl018();
        let depth = 16;
        let sfm = SfmNetlist::elaborate(depth).unwrap();
        let ring = SragNetlist::elaborate(&sfm_pointer_as_srag(depth)).unwrap();
        // The SFM has two pointers; per pointer it has exactly the
        // ring's flip-flops.
        assert_eq!(
            sfm.netlist.num_flip_flops(),
            2 * ring.netlist.num_flip_flops()
        );
        let sfm_area_per_pointer = AreaReport::of(&sfm.netlist, &lib).total() / 2.0;
        let ring_area = AreaReport::of(&ring.netlist, &lib).total();
        let ratio = ring_area / sfm_area_per_pointer;
        assert!(
            (0.9..1.2).contains(&ratio),
            "ring {ring_area} vs SFM pointer {sfm_area_per_pointer}"
        );
    }

    #[test]
    fn one_dimensional_sfm_needs_quadratically_more_flip_flops() {
        // The paper's first SFM limitation: it is one-dimensional, so
        // covering an H×W array costs H·W flip-flops per pointer; the
        // two-hot SRAG pair needs only H+W.
        use crate::composite::Srag2d;
        use adgen_seq::{workloads, ArrayShape, Layout};
        let shape = ArrayShape::new(16, 16);
        let sfm = SfmNetlist::elaborate(shape.capacity()).unwrap();
        let pair = Srag2d::map(&workloads::fifo(shape), shape, Layout::RowMajor)
            .unwrap()
            .elaborate()
            .unwrap();
        let sfm_per_pointer = sfm.netlist.num_flip_flops() / 2;
        assert_eq!(sfm_per_pointer, 256);
        assert!(
            pair.netlist.num_flip_flops() < 48,
            "two-hot pair uses H+W+counters flip-flops, got {}",
            pair.netlist.num_flip_flops()
        );
    }
}
