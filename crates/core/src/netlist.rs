//! Elaboration of an [`SragSpec`] into a gate-level netlist.
//!
//! The structure follows paper Fig. 5 exactly:
//!
//! * `DivCnt` — a modulo-`dC` counter clocked by `next`; its wrap is
//!   the shift `enable`. When `dC = 1` the counter degenerates to a
//!   wire (`enable = next`), with no hardware cost.
//! * `PassCnt` — a modulo-`pC` counter of enables; its wrap is
//!   `pass`, steering the inter-register multiplexers. Omitted when
//!   there is a single register (paper: "If N = 1 multiplexors are
//!   not required").
//! * One enabled flip-flop per select line, connected as circular
//!   shift registers, with a 2-to-1 mux in front of each register's
//!   first flip-flop selecting between recirculation and the previous
//!   register's tail. The flip-flop holding the token after reset
//!   (`s₀,₀`) is a set-type flop; all others are reset-type.
//!
//! Select lines are the flip-flop `Q` outputs directly — no decoding
//! logic exists, which is the entire point of the architecture.

use adgen_netlist::{CellKind, NetId, Netlist, Simulator};
use adgen_synth::fsm::MAX_FANOUT;
use adgen_synth::mapgen::{build_mod_counter, build_ring_counter};
use adgen_synth::techmap::{insert_fanout_buffers, or_tree};
use adgen_synth::{Encoding, Fsm, OutputStyle};

use crate::arch::{ControlStyle, SragSpec};
use crate::error::SragError;

/// A gate-level SRAG: the netlist plus its interface nets.
#[derive(Debug, Clone)]
pub struct SragNetlist {
    /// The implementation. Primary inputs: `reset` (index 0), `next`
    /// (index 1). Primary outputs: the select lines, in line order.
    pub netlist: Netlist,
    /// Select-line nets, indexed by line number.
    pub select_lines: Vec<NetId>,
    /// The `next` input net.
    pub next_input: NetId,
    /// The architecture this netlist implements.
    pub spec: SragSpec,
}

impl SragNetlist {
    /// Elaborates `spec` to gates, inserting fanout buffers as a
    /// synthesis flow would.
    ///
    /// # Errors
    ///
    /// Propagates construction failures as
    /// [`SragError::Netlist`]/[`SragError::Synth`].
    pub fn elaborate(spec: &SragSpec) -> Result<Self, SragError> {
        Self::elaborate_with_style(spec, ControlStyle::BinaryCounters)
    }

    /// Elaborates `spec` with the chosen control-circuit style (the
    /// §4 ablation: binary counters vs one-hot rings for
    /// `DivCnt`/`PassCnt`).
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn elaborate_with_style(spec: &SragSpec, style: ControlStyle) -> Result<Self, SragError> {
        let mut n = Netlist::new(format!(
            "srag_{}r_{}ff",
            spec.num_registers(),
            spec.num_flip_flops()
        ));
        let next = n.add_input("next");
        let parts = build_into_parts(&mut n, spec, next, "", style, None)?;
        for &l in &parts.select_lines {
            n.add_output(l);
        }
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate().map_err(SragError::from)?;
        Ok(SragNetlist {
            netlist: n,
            select_lines: parts.select_lines,
            next_input: next,
            spec: spec.clone(),
        })
    }

    /// Decodes the select lines of a simulator over this netlist into
    /// the presented address. Returns `None` unless exactly one line
    /// is hot and all lines are defined.
    pub fn observed_address(&self, sim: &Simulator<'_>) -> Option<u32> {
        observed_one_hot(sim, &self.select_lines)
    }
}

/// Decodes a one-hot line vector from a running simulator: the index
/// of the single hot line, or `None` if any line is X or the vector
/// is not exactly one-hot.
pub fn observed_one_hot(sim: &Simulator<'_>, lines: &[NetId]) -> Option<u32> {
    let mut hot = None;
    for (i, &l) in lines.iter().enumerate() {
        match sim.value(l).to_bool()? {
            true if hot.is_none() => hot = Some(i as u32),
            true => return None,
            false => {}
        }
    }
    hot
}

/// Interface nets of one SRAG built into a shared netlist.
#[derive(Debug, Clone)]
pub struct SragParts {
    /// Select-line nets in line order.
    pub select_lines: Vec<NetId>,
    /// The shift-enable signal (the `DivCnt` wrap).
    pub enable: NetId,
    /// High during the enable on which the token completes a full
    /// tour and returns to `s₀,₀` — the hook for chaining a slower
    /// dimension's divider off a faster one (paper §7: reuse of
    /// control circuitry between the row and column sequences).
    pub cycle_wrap: NetId,
    /// The shift-register Q nets in token order (register by
    /// register) — the nets a select-ring fault campaign targets.
    pub ring_ffs: Vec<NetId>,
    /// One-hot violation flag of the hardening checker; `Some` only
    /// when built with [`BuildOptions::harden`].
    pub alarm: Option<NetId>,
}

/// Construction options for [`build_into_parts_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildOptions {
    /// Control-circuit style for `DivCnt`/`PassCnt`.
    pub style: ControlStyle,
    /// Replaces the internal `DivCnt` with an externally divided
    /// enable; `next` is then ignored for enable generation.
    pub external_enable: Option<NetId>,
    /// Elaborates the self-checking ring: an exactly-one-hot checker
    /// over the shift-register Q nets whose violation flag (`alarm`)
    /// is ORed into the ring flip-flops' reset/set pins, so an
    /// invalid state both raises the alarm and reloads the reset
    /// token pattern on the next clock edge (watchdog resync).
    pub harden: bool,
}

/// Builds an SRAG for `spec` into an existing netlist, driven by the
/// given `next` net, with `prefix` applied to all instance names so
/// that several SRAGs (e.g. a row and a column generator) can share
/// one netlist. Returns the select-line nets in line order; the
/// caller decides which nets become primary outputs and runs fanout
/// buffering.
///
/// # Errors
///
/// Propagates construction failures.
pub fn build_into(
    n: &mut Netlist,
    spec: &SragSpec,
    next: NetId,
    prefix: &str,
) -> Result<Vec<NetId>, SragError> {
    build_into_parts(n, spec, next, prefix, ControlStyle::BinaryCounters, None)
        .map(|p| p.select_lines)
}

/// Full-control variant of [`build_into`]: selects the control style
/// and optionally replaces the internal `DivCnt` with an external
/// pre-divided enable (`external_enable`), in which case `next` is
/// ignored for enable generation.
///
/// # Errors
///
/// Propagates construction failures.
pub fn build_into_parts(
    n: &mut Netlist,
    spec: &SragSpec,
    next: NetId,
    prefix: &str,
    style: ControlStyle,
    external_enable: Option<NetId>,
) -> Result<SragParts, SragError> {
    build_into_parts_with(
        n,
        spec,
        next,
        prefix,
        &BuildOptions {
            style,
            external_enable,
            harden: false,
        },
    )
}

/// Option-struct variant of [`build_into_parts`]; the only way to
/// request the hardened (self-checking) ring.
///
/// # Errors
///
/// Propagates construction failures.
pub fn build_into_parts_with(
    n: &mut Netlist,
    spec: &SragSpec,
    next: NetId,
    prefix: &str,
    opts: &BuildOptions,
) -> Result<SragParts, SragError> {
    let style = opts.style;
    let external_enable = opts.external_enable;
    let rst = n.reset();

    // A modulo-`count` divider of `stimulus` in the chosen control
    // style; returns the wrap signal (high when the divider is at its
    // terminal count and the stimulus is asserted).
    let divider = |n: &mut Netlist,
                   count: usize,
                   stimulus: NetId,
                   name: String|
     -> Result<NetId, SragError> {
        Ok(match style {
            ControlStyle::BinaryCounters => {
                build_mod_counter(n, count as u64, stimulus, &name)?.wrap
            }
            ControlStyle::RingCounters => {
                build_ring_counter(n, count as u64, stimulus, &name)?.wrap
            }
            ControlStyle::InteractingFsms => {
                if count == 1 {
                    stimulus
                } else {
                    // A cyclic FSM whose single output bit flags the
                    // terminal state; espresso-minimized and binary
                    // encoded, advancing on the stimulus.
                    let fsm = Fsm::new(
                        (0..count).map(|s| (s + 1) % count).collect(),
                        (0..count).map(|s| u64::from(s == count - 1)).collect(),
                    )?;
                    let flag = fsm.build_into(
                        n,
                        stimulus,
                        Encoding::Binary,
                        OutputStyle::BinaryAddress { bits: 1 },
                        &format!("{name}_"),
                    )?[0];
                    n.gate(CellKind::And2, &[stimulus, flag])
                        .map_err(SragError::from)?
                }
            }
        })
    };

    // DivCnt: divide `next` by dC (or adopt the caller's divider).
    let enable = match external_enable {
        Some(e) => e,
        None => divider(n, spec.div_count, next, format!("{prefix}divcnt"))?,
    };

    // PassCnt: count enables up to pC (only needed with >1 register).
    let pass = if spec.num_registers() > 1 {
        Some(divider(
            n,
            spec.pass_count,
            enable,
            format!("{prefix}passcnt"),
        )?)
    } else {
        None
    };

    // Shift-register flip-flops. Create all Q nets first so the
    // inter-register wiring can refer to them.
    let q: Vec<Vec<NetId>> = spec
        .registers
        .iter()
        .enumerate()
        .map(|(i, r)| {
            (0..r.len())
                .map(|j| n.add_net(format!("{prefix}s{i}_{j}")))
                .collect()
        })
        .collect();
    let flat_q: Vec<NetId> = q.iter().flatten().copied().collect();

    // Hardening: a chained exactly-one-hot checker over the ring Q
    // nets. `p1` = at least one hot so far, `p2` = at least two;
    // `alarm` = ¬p1 ∨ p2 (not exactly one token). The alarm is ORed
    // into the ring flip-flops' reset/set pins, so the cycle after an
    // invalid state becomes visible the ring reloads its reset token
    // pattern — detection and resync in one mechanism. The loop
    // Q → checker → reset pin is broken by the flip-flops, so the
    // combinational network stays acyclic.
    let (ring_rst, alarm) = if opts.harden {
        let mut p1 = flat_q[0];
        let mut p2: Option<NetId> = None;
        for &l in &flat_q[1..] {
            let both = n.gate(CellKind::And2, &[p1, l]).map_err(SragError::from)?;
            p2 = Some(match p2 {
                None => both,
                Some(prev) => n
                    .gate(CellKind::Or2, &[prev, both])
                    .map_err(SragError::from)?,
            });
            p1 = n.gate(CellKind::Or2, &[p1, l]).map_err(SragError::from)?;
        }
        let none_hot = n.gate(CellKind::Inv, &[p1]).map_err(SragError::from)?;
        let alarm = match p2 {
            Some(p2) => n
                .gate(CellKind::Or2, &[none_hot, p2])
                .map_err(SragError::from)?,
            None => none_hot,
        };
        let resync = n
            .gate(CellKind::Or2, &[rst, alarm])
            .map_err(SragError::from)?;
        (resync, Some(alarm))
    } else {
        (rst, None)
    };

    let num_regs = spec.num_registers();
    for (i, r) in spec.registers.iter().enumerate() {
        for j in 0..r.len() {
            let d = if j > 0 {
                q[i][j - 1]
            } else {
                let recirc = q[i][r.len() - 1];
                match pass {
                    Some(p) => {
                        let prev = (i + num_regs - 1) % num_regs;
                        let tail = q[prev][spec.registers[prev].len() - 1];
                        n.gate(CellKind::Mux2, &[recirc, tail, p])
                            .map_err(SragError::from)?
                    }
                    None => recirc,
                }
            };
            let kind = if i == 0 && j == 0 {
                CellKind::Dffse
            } else {
                CellKind::Dffre
            };
            n.add_instance(
                format!("{prefix}sr{i}_ff{j}"),
                kind,
                &[d, enable, ring_rst],
                &[q[i][j]],
            )?;
        }
    }

    // Map flip-flop outputs onto select lines; unused lines tie low.
    let mut select_lines = vec![None; spec.num_lines];
    for (i, r) in spec.registers.iter().enumerate() {
        for (j, &line) in r.lines().iter().enumerate() {
            select_lines[line as usize] = Some(q[i][j]);
        }
    }
    let select_lines: Vec<NetId> = select_lines
        .into_iter()
        .map(|s| match s {
            Some(net) => Ok(net),
            None => n.gate(CellKind::TieLo, &[]).map_err(SragError::from),
        })
        .collect::<Result<_, _>>()?;

    // Full-cycle wrap: the token leaves the *last* register's tail
    // back to s₀,₀. With one register that is simply the wrap of its
    // recirculation; with several, the pass firing while the token
    // sits in the last register.
    let last = spec.num_registers() - 1;
    let tail = q[last][spec.registers[last].len() - 1];
    let cycle_wrap = match pass {
        None => n
            .gate(CellKind::And2, &[enable, tail])
            .map_err(SragError::from)?,
        Some(p) => {
            let token_in_last = or_tree(n, &q[last]).map_err(SragError::from)?;

            n.gate(CellKind::And2, &[p, token_in_last])
                .map_err(SragError::from)?
        }
    };

    Ok(SragParts {
        select_lines,
        enable,
        cycle_wrap,
        ring_ffs: flat_q,
        alarm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ShiftRegisterSpec;
    use crate::mapper::map_sequence;
    use crate::sim::SragSimulator;
    use adgen_seq::{AddressGenerator, AddressSequence};

    /// Drives the netlist through reset + `steps` nexts and collects
    /// the presented addresses (including the initial one).
    fn run_gate_level(design: &SragNetlist, steps: usize) -> Vec<u32> {
        let mut sim = Simulator::new(&design.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            sim.step_bools(&[false, true]).unwrap();
            out.push(
                design
                    .observed_address(&sim)
                    .expect("select lines must be one-hot"),
            );
        }
        out
    }

    fn behavioural(spec: &SragSpec, steps: usize) -> Vec<u32> {
        let mut sim = SragSimulator::new(spec.clone());
        sim.collect_sequence(steps).into_iter().collect()
    }

    #[test]
    fn ring_matches_behaviour() {
        let spec = SragSpec::ring(6);
        let design = SragNetlist::elaborate(&spec).unwrap();
        assert_eq!(run_gate_level(&design, 13), behavioural(&spec, 13));
    }

    #[test]
    fn paper_fig5_div2_matches_behaviour() {
        let spec = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![5, 1, 4, 0]),
                ShiftRegisterSpec::new(vec![3, 7, 6, 2]),
            ],
            2,
            4,
            8,
        );
        let design = SragNetlist::elaborate(&spec).unwrap();
        assert_eq!(run_gate_level(&design, 32), behavioural(&spec, 32));
    }

    #[test]
    fn paper_fig5_pass8_matches_behaviour() {
        let spec = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![5, 1, 4, 0]),
                ShiftRegisterSpec::new(vec![3, 7, 6, 2]),
            ],
            1,
            8,
            8,
        );
        let design = SragNetlist::elaborate(&spec).unwrap();
        assert_eq!(run_gate_level(&design, 32), behavioural(&spec, 32));
    }

    #[test]
    fn mapped_table2_machine_matches_gate_level() {
        let rows = AddressSequence::from_vec(vec![0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3]);
        let m = map_sequence(&rows).unwrap();
        let design = SragNetlist::elaborate(&m.spec).unwrap();
        let got = run_gate_level(&design, rows.len());
        assert_eq!(got, rows.as_slice());
    }

    #[test]
    fn one_hot_invariant_holds_at_gate_level() {
        let spec = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![2, 0]),
                ShiftRegisterSpec::new(vec![1, 3]),
            ],
            3,
            4,
            4,
        );
        let design = SragNetlist::elaborate(&spec).unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        for cycle in 0..60 {
            sim.step_bools(&[false, true]).unwrap();
            let hot = design
                .select_lines
                .iter()
                .filter(|&&l| sim.value(l).to_bool() == Some(true))
                .count();
            assert_eq!(hot, 1, "cycle {cycle}");
        }
    }

    #[test]
    fn next_low_holds_address() {
        let spec = SragSpec::ring(4);
        let design = SragNetlist::elaborate(&spec).unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(0));
        sim.step_bools(&[false, false]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(1));
        sim.step_bools(&[false, false]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(1), "held");
    }

    #[test]
    fn no_decoder_cells_in_srag() {
        // The point of the architecture: flip-flops, muxes, counters
        // and buffers only — wide AND/OR decode trees appear solely in
        // the small counters' compare logic.
        let spec = SragSpec::ring(16);
        let design = SragNetlist::elaborate(&spec).unwrap();
        assert_eq!(design.netlist.num_flip_flops(), 16);
        // Ring with dC=1 needs no counters at all: only FFs, fanout
        // buffers on enable/reset, and the single AND of the
        // cycle-wrap hook.
        let mut comb_gates = 0;
        for inst in design.netlist.instances() {
            if inst.kind().is_sequential() || inst.kind() == CellKind::Buf {
                continue;
            }
            assert_eq!(
                inst.kind(),
                CellKind::And2,
                "unexpected cell {} in pure ring",
                inst.kind()
            );
            comb_gates += 1;
        }
        assert!(comb_gates <= 1, "only the cycle-wrap AND is allowed");
    }

    #[test]
    fn ring_control_matches_binary_control() {
        let spec = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![5, 1, 4, 0]),
                ShiftRegisterSpec::new(vec![3, 7, 6, 2]),
            ],
            3,
            8,
            8,
        );
        let binary =
            SragNetlist::elaborate_with_style(&spec, ControlStyle::BinaryCounters).unwrap();
        let ring = SragNetlist::elaborate_with_style(&spec, ControlStyle::RingCounters).unwrap();
        assert_eq!(run_gate_level(&binary, 60), run_gate_level(&ring, 60));
        // Ring control trades flip-flops for logic: more FFs than the
        // binary-counter version.
        assert!(ring.netlist.num_flip_flops() > binary.netlist.num_flip_flops());
    }

    #[test]
    fn interacting_fsm_control_matches_binary_control() {
        let spec = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![2, 0, 3]),
                ShiftRegisterSpec::new(vec![1, 4, 5]),
            ],
            4,
            6,
            6,
        );
        let binary =
            SragNetlist::elaborate_with_style(&spec, ControlStyle::BinaryCounters).unwrap();
        let fsm = SragNetlist::elaborate_with_style(&spec, ControlStyle::InteractingFsms).unwrap();
        assert_eq!(run_gate_level(&binary, 96), run_gate_level(&fsm, 96));
    }

    #[test]
    fn ring_control_is_faster() {
        use adgen_netlist::{Library, TimingAnalysis};
        // Large counters: dC = 16, pC = 32 make the binary carry and
        // compare trees deep enough for the single-AND ring wrap to
        // win.
        let spec = SragSpec::new(
            vec![
                ShiftRegisterSpec::new((0..16).collect()),
                ShiftRegisterSpec::new((16..32).collect()),
            ],
            16,
            32,
            32,
        );
        let lib = Library::vcl018();
        let binary =
            SragNetlist::elaborate_with_style(&spec, ControlStyle::BinaryCounters).unwrap();
        let ring = SragNetlist::elaborate_with_style(&spec, ControlStyle::RingCounters).unwrap();
        let tb = TimingAnalysis::run(&binary.netlist, &lib).unwrap();
        let tr = TimingAnalysis::run(&ring.netlist, &lib).unwrap();
        assert!(
            tr.critical_path_ps() < tb.critical_path_ps(),
            "ring {} vs binary {}",
            tr.critical_path_ps(),
            tb.critical_path_ps()
        );
    }

    #[test]
    fn cycle_wrap_fires_once_per_period() {
        // Single register ring of 4 with dC = 1.
        let spec = SragSpec::ring(4);
        let mut n = Netlist::new("wrap");
        let next = n.add_input("next");
        let parts =
            build_into_parts(&mut n, &spec, next, "", ControlStyle::BinaryCounters, None).unwrap();
        n.add_output(parts.cycle_wrap);
        insert_fanout_buffers(&mut n, MAX_FANOUT).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        let mut fired = Vec::new();
        for _ in 0..12 {
            sim.step_bools(&[false, true]).unwrap();
            fired.push(sim.value(parts.cycle_wrap).to_bool().unwrap());
        }
        assert_eq!(
            fired,
            vec![false, false, false, true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn external_enable_replaces_divider() {
        // An SRAG with dC = 4 driven by an externally divided enable
        // behaves like next/4.
        let spec = SragSpec::new(vec![ShiftRegisterSpec::new(vec![0, 1, 2])], 4, 3, 3);
        let mut n = Netlist::new("ext");
        let next = n.add_input("next");
        let div = adgen_synth::mapgen::build_mod_counter(&mut n, 4, next, "extdiv").unwrap();
        let parts = build_into_parts(
            &mut n,
            &spec,
            next,
            "",
            ControlStyle::BinaryCounters,
            Some(div.wrap),
        )
        .unwrap();
        for &l in &parts.select_lines {
            n.add_output(l);
        }
        insert_fanout_buffers(&mut n, MAX_FANOUT).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        let mut got = Vec::new();
        for _ in 0..24 {
            sim.step_bools(&[false, true]).unwrap();
            got.push(observed_one_hot(&sim, &parts.select_lines).unwrap());
        }
        let expected: Vec<u32> = (0..24).map(|i| (i / 4) % 3).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn sparse_lines_tie_low() {
        // Lines 0 and 2 used, line 1 unused.
        let spec = SragSpec::new(vec![ShiftRegisterSpec::new(vec![0, 2])], 1, 2, 3);
        let design = SragNetlist::elaborate(&spec).unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        for _ in 0..6 {
            sim.step_bools(&[false, true]).unwrap();
            assert_eq!(
                sim.value(design.select_lines[1]),
                adgen_netlist::Logic::Zero
            );
        }
    }

    #[test]
    fn workload_round_trips_at_gate_level() {
        use adgen_seq::{workloads, ArrayShape, Layout};
        let shape = ArrayShape::new(8, 8);
        let lin = workloads::motion_est_read(shape, 2, 2, 0);
        let (rows, cols) = lin.decompose(shape, Layout::RowMajor).unwrap();
        for dim in [rows, cols] {
            let m = map_sequence(&dim).unwrap();
            let design = SragNetlist::elaborate(&m.spec).unwrap();
            let got = run_gate_level(&design, dim.len());
            assert_eq!(got, dim.as_slice());
        }
    }
}
