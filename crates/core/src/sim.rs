//! Cycle-accurate behavioural model of an SRAG.
//!
//! Implements the token/counter semantics of paper §4 exactly: on
//! every `next` stimulus the `DivCnt` advances; every `div_count`-th
//! stimulus enables a shift, moving the token one flip-flop onward;
//! every `pass_count`-th shift asserts `pass`, hopping the token to
//! the following register. After reset the token sits on flip-flop
//! `s₀,₀`, i.e. the first address of the sequence is presented
//! immediately — the same convention as the synthesized netlists.

use adgen_seq::AddressGenerator;

use crate::arch::SragSpec;

/// Behavioural SRAG simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SragSimulator {
    spec: SragSpec,
    register: usize,
    position: usize,
    div_count: usize,
    pass_count: usize,
}

impl SragSimulator {
    /// Creates a simulator in the reset state.
    pub fn new(spec: SragSpec) -> Self {
        SragSimulator {
            spec,
            register: 0,
            position: 0,
            div_count: 0,
            pass_count: 0,
        }
    }

    /// The architecture being simulated.
    pub fn spec(&self) -> &SragSpec {
        &self.spec
    }

    /// Index of the register currently holding the token.
    pub fn token_register(&self) -> usize {
        self.register
    }

    /// Flip-flop position of the token within its register.
    pub fn token_position(&self) -> usize {
        self.position
    }

    /// Current `DivCnt` value.
    pub fn div_counter(&self) -> usize {
        self.div_count
    }

    /// Current `PassCnt` value.
    pub fn pass_counter(&self) -> usize {
        self.pass_count
    }

    /// The select-line vector at this cycle: exactly one line is hot.
    pub fn select_lines(&self) -> Vec<bool> {
        let mut v = vec![false; self.spec.num_lines];
        v[self.current() as usize] = true;
        v
    }
}

impl AddressGenerator for SragSimulator {
    fn reset(&mut self) {
        self.register = 0;
        self.position = 0;
        self.div_count = 0;
        self.pass_count = 0;
    }

    fn advance(&mut self) {
        // DivCnt counts next pulses up to div_count.
        if self.div_count + 1 < self.spec.div_count {
            self.div_count += 1;
            return;
        }
        self.div_count = 0;
        // Shift enable fires; PassCnt counts enables up to pass_count.
        let pass = self.pass_count + 1 == self.spec.pass_count;
        self.pass_count = (self.pass_count + 1) % self.spec.pass_count;
        // Token moves one flip-flop; at the end of a register it
        // recirculates, unless `pass` hops it to the next register.
        let reg_len = self.spec.registers[self.register].len();
        if pass {
            debug_assert_eq!(
                self.position,
                reg_len - 1,
                "pass must coincide with the register boundary (pC = Mi x iterations)"
            );
            self.register = (self.register + 1) % self.spec.num_registers();
            self.position = 0;
        } else if self.position + 1 == reg_len {
            self.position = 0;
        } else {
            self.position += 1;
        }
    }

    fn current(&self) -> u32 {
        self.spec.registers[self.register].lines()[self.position]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ShiftRegisterSpec;

    /// The SRAG of paper Fig. 5 with `dC = 2`, always passing:
    /// S = ((5,1,4,0),(3,7,6,2)), pC = 4 gives
    /// `5,5,1,1,4,4,0,0,3,3,7,7,6,6,2,2`.
    #[test]
    fn paper_example_div_two() {
        let spec = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![5, 1, 4, 0]),
                ShiftRegisterSpec::new(vec![3, 7, 6, 2]),
            ],
            2,
            4,
            8,
        );
        let mut sim = SragSimulator::new(spec);
        let got = sim.collect_sequence(16);
        assert_eq!(
            got.as_slice(),
            &[5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]
        );
    }

    /// The SRAG of paper Fig. 5 with `pC = 8`, `dC = 1`:
    /// `5,1,4,0,5,1,4,0,3,7,6,2,3,7,6,2`.
    #[test]
    fn paper_example_pass_eight() {
        let spec = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![5, 1, 4, 0]),
                ShiftRegisterSpec::new(vec![3, 7, 6, 2]),
            ],
            1,
            8,
            8,
        );
        let mut sim = SragSimulator::new(spec);
        let got = sim.collect_sequence(16);
        assert_eq!(
            got.as_slice(),
            &[5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2]
        );
    }

    #[test]
    fn sequence_is_periodic() {
        let spec = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![0, 1]),
                ShiftRegisterSpec::new(vec![2, 3]),
            ],
            2,
            4,
            4,
        );
        let period = spec.period();
        let mut sim = SragSimulator::new(spec);
        let two = sim.collect_sequence(2 * period);
        assert_eq!(&two.as_slice()[..period], &two.as_slice()[period..]);
    }

    #[test]
    fn exactly_one_line_hot_every_cycle() {
        let spec = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![5, 1, 4, 0]),
                ShiftRegisterSpec::new(vec![3, 7, 6, 2]),
            ],
            3,
            8,
            8,
        );
        let mut sim = SragSimulator::new(spec);
        for _ in 0..100 {
            let hot = sim.select_lines().iter().filter(|&&b| b).count();
            assert_eq!(hot, 1);
            sim.advance();
        }
    }

    #[test]
    fn ring_generates_incremental() {
        let mut sim = SragSimulator::new(SragSpec::ring(5));
        assert_eq!(
            sim.collect_sequence(10).as_slice(),
            &[0, 1, 2, 3, 4, 0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn reset_mid_sequence_restarts() {
        let mut sim = SragSimulator::new(SragSpec::ring(4));
        sim.advance();
        sim.advance();
        assert_eq!(sim.current(), 2);
        sim.reset();
        assert_eq!(sim.current(), 0);
        assert_eq!(sim.div_counter(), 0);
        assert_eq!(sim.pass_counter(), 0);
    }

    #[test]
    fn token_introspection() {
        let spec = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![9, 8]),
                ShiftRegisterSpec::new(vec![7, 6]),
            ],
            1,
            2,
            10,
        );
        let mut sim = SragSimulator::new(spec);
        assert_eq!((sim.token_register(), sim.token_position()), (0, 0));
        sim.advance();
        assert_eq!((sim.token_register(), sim.token_position()), (0, 1));
        sim.advance();
        assert_eq!((sim.token_register(), sim.token_position()), (1, 0));
        sim.advance();
        sim.advance();
        assert_eq!((sim.token_register(), sim.token_position()), (0, 0));
    }
}
