//! Architectural description of an SRAG (paper §4, Fig. 5).

use std::fmt;

/// How the SRAG's `enable`/`pass` steering signals are derived
/// (paper §4, last paragraph: "it is not necessary to use counters
/// for deriving the enable and the pass signals. It is possible to
/// use shift registers or interacting FSMs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ControlStyle {
    /// `DivCnt`/`PassCnt` as binary modulo counters with carry
    /// networks and terminal-count comparators — the structure of
    /// paper Fig. 5, minimal state bits.
    #[default]
    BinaryCounters,
    /// One-hot ring counters: `dC` and `pC` flip-flops respectively,
    /// but the wrap detection is a single AND gate — faster control
    /// at higher flip-flop cost.
    RingCounters,
    /// Small synthesized (binary-encoded, espresso-minimized) state
    /// machines emitting a terminal-count flag — the "interacting
    /// FSMs" option; what a behavioural-synthesis flow would produce
    /// from an RTL `if (count == dC-1)` description.
    InteractingFsms,
}

/// One shift register `Sᵢ`: an ordered list of select-line indices,
/// one per flip-flop, in token-travel order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShiftRegisterSpec {
    lines: Vec<u32>,
}

impl ShiftRegisterSpec {
    /// Creates a register mapping the given select lines to its
    /// flip-flops `sᵢ,₀ … sᵢ,ₘ₋₁`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is empty or contains duplicates (an address
    /// maps to exactly one flip-flop, paper §5).
    pub fn new(lines: Vec<u32>) -> Self {
        assert!(!lines.is_empty(), "shift register must have flip-flops");
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            lines.len(),
            "duplicate select line in register"
        );
        ShiftRegisterSpec { lines }
    }

    /// The select lines in flip-flop order.
    pub fn lines(&self) -> &[u32] {
        &self.lines
    }

    /// Number of flip-flops (`Mᵢ`).
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the register is empty (never true for constructed
    /// registers; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Complete architecture of one (one-dimensional) SRAG.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SragSpec {
    /// The shift registers `S₀ … S_N₋₁` in token order.
    pub registers: Vec<ShiftRegisterSpec>,
    /// The common division count `dC`: how many `next` pulses each
    /// address is held for.
    pub div_count: usize,
    /// The common pass count `pC`: how many shift-enables each
    /// register keeps the token for before passing it on.
    pub pass_count: usize,
    /// Number of select lines the SRAG drives (at least
    /// `max(line) + 1`).
    pub num_lines: usize,
}

impl SragSpec {
    /// Builds and validates a specification.
    ///
    /// # Panics
    ///
    /// Panics if there are no registers, `div_count` or `pass_count`
    /// is zero, a line index is `>= num_lines`, a line appears in more
    /// than one register, or `pass_count` is not a multiple of every
    /// register length (the paper's `pC = Mᵢ × iterationsᵢ`
    /// restriction).
    pub fn new(
        registers: Vec<ShiftRegisterSpec>,
        div_count: usize,
        pass_count: usize,
        num_lines: usize,
    ) -> Self {
        assert!(!registers.is_empty(), "SRAG needs at least one register");
        assert!(div_count > 0, "div_count must be nonzero");
        assert!(pass_count > 0, "pass_count must be nonzero");
        let mut seen = std::collections::HashSet::new();
        for r in &registers {
            assert!(
                pass_count.is_multiple_of(r.len()),
                "pass_count {pass_count} must be a multiple of register length {}",
                r.len()
            );
            for &l in r.lines() {
                assert!((l as usize) < num_lines, "line {l} out of range");
                assert!(seen.insert(l), "line {l} mapped twice");
            }
        }
        SragSpec {
            registers,
            div_count,
            pass_count,
            num_lines,
        }
    }

    /// A single circular shift register over lines `0..n` — the
    /// degenerate SRAG that implements the incremental sequence of
    /// paper §3's shift-register arm.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn ring(n: u32) -> Self {
        SragSpec::new(
            vec![ShiftRegisterSpec::new((0..n).collect())],
            1,
            n as usize,
            n as usize,
        )
    }

    /// Total number of flip-flops across all registers.
    pub fn num_flip_flops(&self) -> usize {
        self.registers.iter().map(ShiftRegisterSpec::len).sum()
    }

    /// Number of shift registers (`N`).
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// The length of one full period of the generated address
    /// sequence: every register emits `pass_count` reduced elements,
    /// each held for `div_count` next pulses.
    pub fn period(&self) -> usize {
        self.num_registers() * self.pass_count * self.div_count
    }

    /// Number of `next` pulses between consecutive visits of the
    /// token to flip-flop `s₀,₀`: one ring lap (`M₀ × dC`) for a
    /// single register, a full period otherwise. This is the firing
    /// interval of the elaborated netlist's cycle-wrap hook.
    pub fn token_return_interval(&self) -> usize {
        if self.num_registers() == 1 {
            self.registers[0].len() * self.div_count
        } else {
            self.period()
        }
    }

    /// Iterations each register keeps the token
    /// (`pass_count / Mᵢ`), per register.
    pub fn iterations(&self) -> Vec<usize> {
        self.registers
            .iter()
            .map(|r| self.pass_count / r.len())
            .collect()
    }
}

impl fmt::Display for SragSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SRAG{{S=")?;
        for (i, r) in self.registers.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "(")?;
            for (j, l) in r.lines().iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        write!(
            f,
            " dC={} pC={} lines={}}}",
            self.div_count, self.pass_count, self.num_lines
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_spec_is_valid() {
        let spec = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![0, 1]),
                ShiftRegisterSpec::new(vec![2, 3]),
            ],
            2,
            4,
            4,
        );
        assert_eq!(spec.num_flip_flops(), 4);
        assert_eq!(spec.num_registers(), 2);
        assert_eq!(spec.period(), 16);
        assert_eq!(spec.iterations(), vec![2, 2]);
    }

    #[test]
    fn ring_spec() {
        let s = SragSpec::ring(8);
        assert_eq!(s.num_registers(), 1);
        assert_eq!(s.num_flip_flops(), 8);
        assert_eq!(s.period(), 8);
        assert_eq!(s.div_count, 1);
    }

    #[test]
    fn display_formats() {
        let s = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![5, 1]),
                ShiftRegisterSpec::new(vec![4, 0]),
            ],
            2,
            2,
            8,
        );
        let t = s.to_string();
        assert!(t.contains("(5,1);(4,0)"));
        assert!(t.contains("dC=2"));
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn pass_count_must_divide() {
        let _ = SragSpec::new(vec![ShiftRegisterSpec::new(vec![0, 1, 2])], 1, 4, 3);
    }

    #[test]
    #[should_panic(expected = "mapped twice")]
    fn duplicate_line_across_registers() {
        let _ = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![0, 1]),
                ShiftRegisterSpec::new(vec![1, 2]),
            ],
            1,
            2,
            3,
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_line_within_register() {
        let _ = ShiftRegisterSpec::new(vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn line_out_of_range() {
        let _ = SragSpec::new(vec![ShiftRegisterSpec::new(vec![9])], 1, 1, 4);
    }
}
