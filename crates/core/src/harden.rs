//! Hardened (self-checking) SRAG variants.
//!
//! The SRAG's strength — select lines driven straight from flip-flop
//! outputs, no decoder anywhere — is also its weakness: almost every
//! register state is *illegal* (anything but exactly one hot), and a
//! single stuck-at or particle strike silently corrupts every
//! subsequent memory access because no decoder exists to mask or trap
//! it. The hardened variants close that gap with two circuits,
//! elaborated by [`build_into_parts_with`] when
//! [`BuildOptions::harden`] is set:
//!
//! * **Two-hot checker** — a chained exactly-one-hot detector over
//!   the ring Q nets (`p1` = "≥ 1 hot", `p2` = "≥ 2 hot", `alarm` =
//!   `¬p1 ∨ p2`), exported as an extra primary output. Any
//!   single-bit ring corruption leaves the zero-hot or two-hot
//!   region, so the alarm is raised the very cycle the bad state
//!   becomes visible.
//! * **Watchdog resync** — the alarm is ORed into the ring
//!   flip-flops' reset/set pins, reloading the reset token pattern
//!   (`s₀,₀` hot) on the next clock edge. The reset/set pin has
//!   priority over the shift enable, so recovery happens even while
//!   the generator is stalled. The address stream restarts from the
//!   first line rather than staying corrupt forever; the one-cycle
//!   alarm pulse tells the system the stream was resynchronized.
//!
//! The control counters (`DivCnt`/`PassCnt`) are deliberately *not*
//! covered: a corrupted counter perturbs timing but never violates
//! the one-hot select discipline, so it cannot silently write the
//! wrong cell pattern into an ADDM array the way a ring fault can.
//! The fault-injection campaigns in `adgen-fault` quantify exactly
//! that split.

use adgen_netlist::{CellKind, Logic, NetId, Netlist, Simulator};
use adgen_seq::{ArrayShape, Layout};
use adgen_synth::fsm::MAX_FANOUT;
use adgen_synth::techmap::insert_fanout_buffers;

use crate::arch::SragSpec;
use crate::composite::Srag2d;
use crate::error::SragError;
use crate::netlist::{build_into_parts_with, observed_one_hot, BuildOptions};

/// A gate-level self-checking SRAG: the plain generator plus the
/// one-hot checker and watchdog resync path.
#[derive(Debug, Clone)]
pub struct HardenedSragNetlist {
    /// The implementation. Primary inputs: `reset` (index 0), `next`
    /// (index 1). Primary outputs: the select lines in line order,
    /// then `alarm` as the last output.
    pub netlist: Netlist,
    /// Select-line nets, indexed by line number.
    pub select_lines: Vec<NetId>,
    /// The shift-register Q nets in token order — the fault targets
    /// the checker protects.
    pub ring_ffs: Vec<NetId>,
    /// The `next` input net.
    pub next_input: NetId,
    /// One-hot violation flag (combinational over the ring Q nets).
    pub alarm: NetId,
    /// The architecture this netlist implements.
    pub spec: SragSpec,
}

impl HardenedSragNetlist {
    /// Elaborates the hardened variant of `spec`.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn elaborate(spec: &SragSpec) -> Result<Self, SragError> {
        let mut n = Netlist::new(format!(
            "srag_hard_{}r_{}ff",
            spec.num_registers(),
            spec.num_flip_flops()
        ));
        let next = n.add_input("next");
        let parts = build_into_parts_with(
            &mut n,
            spec,
            next,
            "",
            &BuildOptions {
                harden: true,
                ..BuildOptions::default()
            },
        )?;
        for &l in &parts.select_lines {
            n.add_output(l);
        }
        let alarm = parts.alarm.expect("hardened build produces an alarm");
        n.add_output(alarm);
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate().map_err(SragError::from)?;
        Ok(HardenedSragNetlist {
            netlist: n,
            select_lines: parts.select_lines,
            ring_ffs: parts.ring_ffs,
            next_input: next,
            alarm,
            spec: spec.clone(),
        })
    }

    /// Output index of the alarm (the last primary output).
    pub fn alarm_output_index(&self) -> usize {
        self.select_lines.len()
    }

    /// Decodes the presented address; `None` unless exactly one-hot.
    pub fn observed_address(&self, sim: &Simulator<'_>) -> Option<u32> {
        observed_one_hot(sim, &self.select_lines)
    }

    /// Whether the checker flags the current cycle.
    pub fn alarm_raised(&self, sim: &Simulator<'_>) -> bool {
        sim.value(self.alarm) == Logic::One
    }
}

/// The hardened two-hot pair: one netlist, two checked rings, one
/// combined alarm.
#[derive(Debug, Clone)]
pub struct HardenedSrag2dNetlist {
    /// The implementation. Inputs: `reset`, `next`. Outputs: row
    /// lines, then column lines, then `alarm`.
    pub netlist: Netlist,
    /// Row select nets (RS), indexed by row.
    pub row_lines: Vec<NetId>,
    /// Column select nets (CS), indexed by column.
    pub col_lines: Vec<NetId>,
    /// Row-ring Q nets in token order.
    pub row_ring_ffs: Vec<NetId>,
    /// Column-ring Q nets in token order.
    pub col_ring_ffs: Vec<NetId>,
    /// The `next` input net.
    pub next_input: NetId,
    /// Combined alarm: row checker OR column checker.
    pub alarm: NetId,
    /// Array geometry.
    pub shape: ArrayShape,
    /// Data layout.
    pub layout: Layout,
}

impl HardenedSrag2dNetlist {
    /// Output index of the alarm (the last primary output).
    pub fn alarm_output_index(&self) -> usize {
        self.row_lines.len() + self.col_lines.len()
    }

    /// Decodes the currently presented linear address, or `None` if
    /// either dimension is not exactly one-hot.
    pub fn observed_address(&self, sim: &Simulator<'_>) -> Option<u32> {
        let r = observed_one_hot(sim, &self.row_lines)?;
        let c = observed_one_hot(sim, &self.col_lines)?;
        self.shape.to_linear(r, c, self.layout).ok()
    }

    /// Whether the combined checker flags the current cycle.
    pub fn alarm_raised(&self, sim: &Simulator<'_>) -> bool {
        sim.value(self.alarm) == Logic::One
    }
}

impl Srag2d {
    /// Elaborates the hardened variant of both SRAGs into a single
    /// netlist: each ring gets its own checker and resync path, and
    /// the two alarms are ORed into one output.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn elaborate_hardened(&self) -> Result<HardenedSrag2dNetlist, SragError> {
        let mut n = Netlist::new(format!(
            "srag2d_hard_{}x{}",
            self.shape().width(),
            self.shape().height()
        ));
        let next = n.add_input("next");
        let opts = BuildOptions {
            harden: true,
            ..BuildOptions::default()
        };
        let row = build_into_parts_with(&mut n, &self.row().spec, next, "row_", &opts)?;
        let col = build_into_parts_with(&mut n, &self.col().spec, next, "col_", &opts)?;
        for &l in row.select_lines.iter().chain(&col.select_lines) {
            n.add_output(l);
        }
        let alarm = n
            .gate(
                CellKind::Or2,
                &[
                    row.alarm.expect("hardened row alarm"),
                    col.alarm.expect("hardened col alarm"),
                ],
            )
            .map_err(SragError::from)?;
        n.add_output(alarm);
        insert_fanout_buffers(&mut n, MAX_FANOUT)?;
        n.validate().map_err(SragError::from)?;
        Ok(HardenedSrag2dNetlist {
            netlist: n,
            row_lines: row.select_lines,
            col_lines: col.select_lines,
            row_ring_ffs: row.ring_ffs,
            col_ring_ffs: col.ring_ffs,
            next_input: next,
            alarm,
            shape: self.shape(),
            layout: self.layout(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ShiftRegisterSpec, SragSpec};
    use crate::netlist::SragNetlist;
    use adgen_netlist::{AreaReport, Library};
    use adgen_seq::workloads;

    fn ring_ff_inst(design: &HardenedSragNetlist, name: &str) -> adgen_netlist::InstId {
        let idx = design
            .netlist
            .instances()
            .iter()
            .position(|i| i.name() == name)
            .expect("ring flip-flop exists");
        design.netlist.inst_id_from_index(idx)
    }

    #[test]
    fn hardened_ring_matches_plain_behaviour_fault_free() {
        let spec = SragSpec::new(
            vec![
                ShiftRegisterSpec::new(vec![5, 1, 4, 0]),
                ShiftRegisterSpec::new(vec![3, 7, 6, 2]),
            ],
            2,
            4,
            8,
        );
        let plain = SragNetlist::elaborate(&spec).unwrap();
        let hard = HardenedSragNetlist::elaborate(&spec).unwrap();
        let mut ps = Simulator::new(&plain.netlist).unwrap();
        let mut hs = Simulator::new(&hard.netlist).unwrap();
        ps.step_bools(&[true, false]).unwrap();
        hs.step_bools(&[true, false]).unwrap();
        for cycle in 0..64 {
            ps.step_bools(&[false, true]).unwrap();
            hs.step_bools(&[false, true]).unwrap();
            assert_eq!(
                plain.observed_address(&ps),
                hard.observed_address(&hs),
                "cycle {cycle}"
            );
            assert!(!hard.alarm_raised(&hs), "spurious alarm at cycle {cycle}");
        }
    }

    #[test]
    fn seu_on_ring_raises_alarm_and_resyncs() {
        let spec = SragSpec::ring(6);
        let hard = HardenedSragNetlist::elaborate(&spec).unwrap();
        let mut sim = Simulator::new(&hard.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        for _ in 0..3 {
            sim.step_bools(&[false, true]).unwrap();
        }
        // Flip a ring flip-flop that does not hold the token: the
        // state becomes two-hot.
        let victim = ring_ff_inst(&hard, "sr0_ff4");
        assert!(sim.upset_flip_flop(victim));
        sim.step_bools(&[false, true]).unwrap();
        assert!(hard.alarm_raised(&sim), "two-hot state must raise alarm");
        assert_eq!(hard.observed_address(&sim), None);
        // Next cycle the watchdog reload has taken effect: alarm low,
        // token back at line 0.
        sim.step_bools(&[false, true]).unwrap();
        assert!(!hard.alarm_raised(&sim), "alarm clears after resync");
        assert_eq!(hard.observed_address(&sim), Some(0), "token reloaded");
        // One-hot discipline holds from here on.
        for cycle in 0..12 {
            sim.step_bools(&[false, true]).unwrap();
            assert!(hard.observed_address(&sim).is_some(), "cycle {cycle}");
            assert!(!hard.alarm_raised(&sim), "cycle {cycle}");
        }
    }

    #[test]
    fn stuck_at_on_select_line_keeps_alarm_asserted() {
        let spec = SragSpec::ring(4);
        let hard = HardenedSragNetlist::elaborate(&spec).unwrap();
        let mut sim = Simulator::new(&hard.netlist).unwrap();
        // Stuck-at-1 on line 2 from power-on.
        sim.force_net(hard.select_lines[2], Logic::One);
        sim.step_bools(&[true, false]).unwrap();
        let mut alarmed = 0;
        for _ in 0..8 {
            sim.step_bools(&[false, true]).unwrap();
            alarmed += usize::from(hard.alarm_raised(&sim));
        }
        // The token is elsewhere at least half the time, so the
        // two-hot condition (and the alarm) recurs.
        assert!(alarmed >= 4, "alarm fired only {alarmed}/8 cycles");
    }

    #[test]
    fn hardening_costs_area_but_keeps_interface() {
        let spec = SragSpec::ring(8);
        let plain = SragNetlist::elaborate(&spec).unwrap();
        let hard = HardenedSragNetlist::elaborate(&spec).unwrap();
        let lib = Library::vcl018();
        let pa = AreaReport::of(&plain.netlist, &lib).total();
        let ha = AreaReport::of(&hard.netlist, &lib).total();
        assert!(ha > pa, "checker and resync gates cost area");
        assert_eq!(
            hard.netlist.num_flip_flops(),
            plain.netlist.num_flip_flops(),
            "hardening adds no state bits"
        );
        assert_eq!(hard.alarm_output_index(), 8);
    }

    #[test]
    fn hardened_pair_round_trips_paper_example() {
        let shape = ArrayShape::new(4, 4);
        let lin = workloads::motion_est_read(shape, 2, 2, 0);
        let pair = Srag2d::map(&lin, shape, Layout::RowMajor).unwrap();
        let design = pair.elaborate_hardened().unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        for (i, &expected) in lin.iter().enumerate() {
            sim.step_bools(&[false, true]).unwrap();
            assert_eq!(design.observed_address(&sim), Some(expected), "step {i}");
            assert!(!design.alarm_raised(&sim), "step {i}");
        }
    }

    #[test]
    fn hardened_pair_flags_column_ring_fault() {
        let shape = ArrayShape::new(4, 4);
        let lin = workloads::motion_est_read(shape, 2, 2, 0);
        let pair = Srag2d::map(&lin, shape, Layout::RowMajor).unwrap();
        let design = pair.elaborate_hardened().unwrap();
        let mut sim = Simulator::new(&design.netlist).unwrap();
        sim.force_net(design.col_lines[1], Logic::Zero);
        sim.step_bools(&[true, false]).unwrap();
        let mut alarmed = false;
        for _ in 0..lin.len() {
            sim.step_bools(&[false, true]).unwrap();
            alarmed |= design.alarm_raised(&sim);
        }
        assert!(alarmed, "zero-hot column state must raise the alarm");
    }
}
