//! A scoped thread pool with deterministic result ordering.
//!
//! Work items are claimed by an atomic cursor, so threads self-balance
//! across items of very different cost (a 256×256 synthesis next to a
//! 16×16 one). Results are written back into per-item slots, so the
//! output order is the input order — byte-identical to a serial run —
//! no matter how the items were scheduled.
//!
//! When an [`adgen_obs`] session is active, every item runs inside an
//! obs [`capture`](adgen_obs::capture) on its worker thread and the
//! per-item recordings are [`splice`](adgen_obs::splice)d back into
//! the caller **in input order** after the join, so the merged span
//! tree and counter totals are identical at any job count. Worker
//! busy time and per-worker item counts land in the nondeterministic
//! timing-metric map (redacted in byte-compared reports).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use adgen_obs as obs;

/// Number of hardware threads available, with a serial fallback of 1.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing jobs knob: `0` means "use every core".
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        available_jobs()
    } else {
        jobs
    }
}

/// Maps `f` over `items` on up to `jobs` threads (`0` = all cores),
/// returning results in input order.
///
/// Equivalent to `items.iter().enumerate().map(|(i, t)| f(i, t))`,
/// including the ordering of the output — parallelism is purely a
/// wall-clock optimization, never a semantic one.
///
/// # Panics
///
/// If `f` panics on any item the panic is propagated to the caller
/// once all threads have stopped (the behaviour of
/// [`std::thread::scope`]).
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len().max(1));
    let observing = obs::enabled();
    let _pm = if observing {
        obs::add(obs::Ctr::ParMapCalls, 1);
        obs::add(obs::Ctr::ParMapItems, items.len() as u64);
        Some(obs::span("par_map"))
    } else {
        None
    };
    if jobs <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let _item = obs::span_arg("par_map.item", i as u64);
                f(i, t)
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(R, obs::Recording)>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    // Shared state enters the workers by reference so `f` itself only
    // needs `Sync`, exactly as before instrumentation.
    let (f, cursor, slot_refs) = (&f, &cursor, &slots);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                scope.spawn(move || {
                    let mut busy_ns = 0u64;
                    let mut claimed = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        let started = Instant::now();
                        // Record the item's spans/counters on this
                        // worker; the caller splices them back in
                        // input order below.
                        let pair = obs::capture(|| {
                            let _item = obs::span_arg("par_map.item", i as u64);
                            f(i, item)
                        });
                        busy_ns = busy_ns.saturating_add(
                            started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                        );
                        claimed += 1;
                        *slot_refs[i].lock().expect("result slot poisoned") = Some(pair);
                    }
                    (w, busy_ns, claimed)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok((w, busy_ns, claimed)) => {
                    if observing {
                        obs::timing(format!("par_map.worker{w}.busy_ns"), busy_ns);
                        obs::timing(format!("par_map.worker{w}.items"), claimed);
                    }
                }
                Err(payload) => {
                    // Re-raise the worker's own panic payload so callers
                    // (and #[should_panic] tests) see the original message.
                    std::panic::resume_unwind(payload);
                }
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            let (r, rec) = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot");
            obs::splice(rec);
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(&items, 1, |i, &x| (i as u64) * 1000 + x * x);
        let parallel = par_map(&items, 8, |i, &x| (i as u64) * 1000 + x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_jobs_means_all_cores() {
        assert_eq!(resolve_jobs(0), available_jobs());
        assert_eq!(resolve_jobs(3), 3);
        let out = par_map(&[1, 2, 3], 0, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7], 4, |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn unbalanced_items_self_schedule() {
        // Items of wildly different cost still come back in order.
        let items: Vec<u64> = vec![1_000_000, 1, 1, 1, 500_000, 1, 1, 1];
        let out = par_map(&items, 4, |i, &n| {
            let mut acc = 0u64;
            for k in 0..n {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            (i, acc)
        });
        for (i, pair) in out.iter().enumerate() {
            assert_eq!(pair.0, i);
        }
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let _ = par_map(&items, 4, |_, &x| {
            if x == 9 {
                panic!("worker boom");
            }
            x
        });
    }
}
