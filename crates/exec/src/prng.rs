//! A small, seedable, copyable PRNG (splitmix64 seeding into
//! xorshift64*), good enough for randomized property tests and
//! synthetic workload generation. Not cryptographic.

/// One round of splitmix64: a bijective scramble of `x` with good
/// avalanche behaviour. The workhorse for deriving independent
/// per-stream seeds from a (seed, index) pair — e.g. the fuzzer's
/// per-case seeds, which must not depend on scheduling.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic pseudo-random number generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a seed. Any seed (including 0) is
    /// valid: seeds are scrambled through splitmix64 first.
    pub fn new(seed: u64) -> Self {
        // One splitmix64 round guarantees a non-zero xorshift state.
        Prng {
            state: splitmix64(seed) | 1, // never zero
        }
    }

    /// A generator for stream `index` of master seed `seed`: two
    /// chained splitmix64 rounds decorrelate neighbouring indices, so
    /// `for_stream(s, 0)` and `for_stream(s, 1)` are statistically
    /// independent while remaining pure functions of their arguments.
    pub fn for_stream(seed: u64, index: u64) -> Self {
        Prng::new(splitmix64(seed) ^ splitmix64(index.wrapping_mul(0xa076_1d64_78bd_642f)))
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna).
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_range bound must be positive");
        // Rejection-free multiply-shift; the bias is < 2^-32 for the
        // small bounds used in tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn next_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_range(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `1/n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn one_in(&mut self, n: u64) -> bool {
        self.next_range(n) == 0
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        let mut c = Prng::new(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Prng::new(7);
        for _ in 0..1000 {
            assert!(r.next_range(10) < 10);
            let v = r.next_in(5, 8);
            assert!((5..8).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = Prng::for_stream(1, 7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Prng::for_stream(1, 7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Prng::for_stream(1, 8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let d: Vec<u64> = {
            let mut r = Prng::for_stream(2, 7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn splitmix_scrambles() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Prng::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Prng::new(99);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn rough_uniformity() {
        let mut r = Prng::new(1234);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.next_range(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket {b} far from uniform");
        }
    }
}
