//! Execution substrate for the workspace, with no external
//! dependencies so the whole tree builds offline.
//!
//! * [`pool`] — a scoped thread pool built on [`std::thread::scope`]
//!   with atomic work distribution and *deterministic result
//!   ordering*: `par_map(items, jobs, f)` returns exactly the vector
//!   the serial `items.iter().map(f).collect()` would, regardless of
//!   the execution interleaving. Every experiment sweep in
//!   `adgen-bench` and the candidate enumeration in `adgen-explorer`
//!   fan out through it.
//! * [`prng`] — a small splitmix64/xorshift PRNG used by the
//!   randomized test suites (replacing the former `rand`/`proptest`
//!   dev-dependencies, which are unreachable offline).

pub mod pool;
pub mod prng;

pub use pool::{available_jobs, par_map, resolve_jobs};
pub use prng::{splitmix64, Prng};
