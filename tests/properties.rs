//! Property-based tests on the core invariants, spanning crates:
//! mapper round-trips, logic-minimizer correctness, structural
//! generator equivalence and timing-model monotonicity.

use adgen::prelude::*;
use proptest::prelude::*;

/// Strategy: an SRAG-mappable sequence built from its own generative
/// model (register partition × iterations × dC), so the mapper can be
/// round-tripped against arbitrary valid inputs.
fn mappable_sequence() -> impl Strategy<Value = Vec<u32>> {
    // num_registers in 1..4, register length 1..5, iterations 1..4,
    // dC 1..4; visits cycle registers in order.
    (
        1usize..4,
        1usize..5,
        1usize..4,
        1usize..4,
        1usize..3, // full periods emitted
    )
        .prop_map(|(regs, len, iters, dc, periods)| {
            let mut out = Vec::new();
            for _ in 0..periods {
                for r in 0..regs {
                    for _ in 0..iters {
                        for j in 0..len {
                            let address = (r * len + j) as u32;
                            for _ in 0..dc {
                                out.push(address);
                            }
                        }
                    }
                }
            }
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mapper_round_trips_generated_sequences(seq in mappable_sequence()) {
        let s = AddressSequence::from_vec(seq);
        let m = map_sequence(&s).expect("generatively valid sequences must map");
        let mut sim = SragSimulator::new(m.spec);
        prop_assert_eq!(sim.collect_sequence(s.len()), s);
    }

    #[test]
    fn relaxed_mapper_accepts_whatever_base_accepts(seq in mappable_sequence()) {
        use adgen::core::multi_counter::{map_sequence_relaxed, MultiCounterSragSimulator};
        let s = AddressSequence::from_vec(seq);
        if map_sequence(&s).is_ok() {
            let spec = map_sequence_relaxed(&s)
                .expect("relaxed mapper must accept base-mappable sequences");
            let mut sim = MultiCounterSragSimulator::new(spec);
            prop_assert_eq!(sim.collect_sequence(s.len()), s);
        }
    }

    #[test]
    fn espresso_preserves_function(minterms in proptest::collection::btree_set(0u64..32, 0..20)) {
        use adgen::synth::cover::Cover;
        use adgen::synth::espresso;
        let on_list: Vec<u64> = minterms.iter().copied().collect();
        let on = Cover::from_minterms(5, &on_list);
        let minimized = espresso::minimize(on.clone(), Cover::empty(5));
        for m in 0..32u64 {
            prop_assert_eq!(minimized.eval(m), on.eval(m), "minterm {}", m);
        }
        prop_assert!(minimized.num_cubes() <= on.num_cubes().max(1));
    }

    #[test]
    fn complement_is_involutive_on_care_set(minterms in proptest::collection::btree_set(0u64..16, 0..16)) {
        use adgen::synth::cover::Cover;
        let on_list: Vec<u64> = minterms.iter().copied().collect();
        let f = Cover::from_minterms(4, &on_list);
        let ff = f.complement().complement();
        for m in 0..16u64 {
            prop_assert_eq!(ff.eval(m), f.eval(m));
        }
    }

    #[test]
    fn decoder_matches_arithmetic(bits in 1usize..6, value in 0u64..64) {
        use adgen::synth::mapgen::build_decoder;
        prop_assume!(value < (1u64 << bits));
        let mut n = Netlist::new("dec");
        let addr: Vec<_> = (0..bits).map(|b| n.add_input(format!("a{b}"))).collect();
        let outs = build_decoder(&mut n, &addr).unwrap();
        for &o in &outs {
            n.add_output(o);
        }
        let mut sim = Simulator::new(&n).unwrap();
        let mut ins = vec![Logic::Zero];
        for b in 0..bits {
            ins.push(Logic::from_bool((value >> b) & 1 == 1));
        }
        sim.step(&ins).unwrap();
        for (i, &o) in outs.iter().enumerate() {
            prop_assert_eq!(sim.value(o).to_bool(), Some(i as u64 == value));
        }
    }

    #[test]
    fn counter_is_a_counter(width in 1u32..7, steps in 1usize..40) {
        use adgen::synth::mapgen::build_counter;
        let mut n = Netlist::new("cnt");
        let en = n.add_input("en");
        let c = build_counter(&mut n, width, en, "c").unwrap();
        for &q in &c.q {
            n.add_output(q);
        }
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        let modulus = 1u64 << width;
        for step in 0..steps {
            sim.step_bools(&[false, true]).unwrap();
            let value: u64 = c
                .q
                .iter()
                .enumerate()
                .map(|(i, &b)| (sim.value(b).to_bool().unwrap() as u64) << i)
                .sum();
            prop_assert_eq!(value, step as u64 % modulus);
        }
    }

    #[test]
    fn sta_output_load_is_monotone(load_a in 0.0f64..50.0, load_b in 0.0f64..50.0) {
        let spec = SragSpec::ring(8);
        let design = SragNetlist::elaborate(&spec).unwrap();
        let lib = Library::vcl018();
        let (lo, hi) = if load_a <= load_b { (load_a, load_b) } else { (load_b, load_a) };
        let t_lo = TimingAnalysis::run_with_output_load(&design.netlist, &lib, lo).unwrap();
        let t_hi = TimingAnalysis::run_with_output_load(&design.netlist, &lib, hi).unwrap();
        prop_assert!(t_hi.critical_path_ps() >= t_lo.critical_path_ps());
    }

    #[test]
    fn decompose_compose_round_trip(width in 1u32..12, height in 1u32..12, seed in 0u64..1000) {
        let shape = ArrayShape::new(width, height);
        let mut lcg = seed.wrapping_mul(2654435761).wrapping_add(1);
        let seq: Vec<u32> = (0..50)
            .map(|_| {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((lcg >> 33) % u64::from(shape.capacity())) as u32
            })
            .collect();
        let s = AddressSequence::from_vec(seq);
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let (rows, cols) = s.decompose(shape, layout).unwrap();
            let back = AddressSequence::compose(&rows, &cols, shape, layout).unwrap();
            prop_assert_eq!(&back, &s);
        }
    }

    #[test]
    fn addm_rejects_every_multi_hot_pattern(
        width in 2u32..8,
        height in 2u32..8,
        a in 0usize..8,
        b in 0usize..8,
    ) {
        use adgen::memory::Addm;
        prop_assume!(a != b);
        prop_assume!((a as u32) < height && (b as u32) < height);
        let shape = ArrayShape::new(width, height);
        let mut mem = Addm::new(shape);
        let mut rows = vec![false; height as usize];
        rows[a] = true;
        rows[b] = true;
        let mut cols = vec![false; width as usize];
        cols[0] = true;
        let err = mem.write(&rows, &cols, 1).unwrap_err();
        let is_multi_hot = matches!(err, MemError::MultiHotRowSelect { asserted: 2 });
        prop_assert!(is_multi_hot);
    }

    #[test]
    fn random_srag_specs_are_gate_level_equivalent(
        regs in 1usize..4,
        len in 1usize..4,
        iters in 1usize..3,
        dc in 1usize..4,
        shuffle_seed in 0u64..1000,
    ) {
        use adgen::core::arch::ShiftRegisterSpec;
        // Random line assignment: a permutation of 0..regs*len driven
        // by a small LCG, so registers hold arbitrary (not
        // consecutive) lines.
        let total = regs * len;
        let mut lines: Vec<u32> = (0..total as u32).collect();
        let mut lcg = shuffle_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..total).rev() {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = ((lcg >> 33) % (i as u64 + 1)) as usize;
            lines.swap(i, j);
        }
        let registers: Vec<ShiftRegisterSpec> = lines
            .chunks(len)
            .map(|c| ShiftRegisterSpec::new(c.to_vec()))
            .collect();
        let spec = SragSpec::new(registers, dc, len * iters, total);
        let design = SragNetlist::elaborate(&spec).unwrap();
        let mut gate = Simulator::new(&design.netlist).unwrap();
        gate.step_bools(&[true, false]).unwrap();
        let mut model = SragSimulator::new(spec.clone());
        model.reset();
        for step in 0..2 * spec.period() {
            gate.step_bools(&[false, true]).unwrap();
            prop_assert_eq!(
                design.observed_address(&gate),
                Some(model.current()),
                "step {}",
                step
            );
            model.advance();
        }
    }

    #[test]
    fn arith_generator_handles_any_short_period_sequence(
        seed in 0u64..5000,
        len in 1usize..24,
    ) {
        use adgen::cntag::{ArithAgSimulator, ArithAgSpec};
        let shape = ArrayShape::new(8, 8);
        let mut lcg = seed.wrapping_mul(2654435761).wrapping_add(7);
        let seq: AddressSequence = (0..len)
            .map(|_| {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((lcg >> 33) % 64) as u32
            })
            .collect();
        let spec = ArithAgSpec::from_sequence(&seq, shape).unwrap();
        let mut model = ArithAgSimulator::new(spec);
        prop_assert_eq!(model.collect_sequence(2 * seq.len()), seq.repeated(2));
    }

    #[test]
    fn srag_simulator_is_always_one_hot(seq in mappable_sequence(), stalls in 0usize..3) {
        let s = AddressSequence::from_vec(seq);
        let m = map_sequence(&s).expect("valid");
        let mut sim = SragSimulator::new(m.spec);
        for _ in 0..(s.len() * (stalls + 1)) {
            let hot = sim.select_lines().iter().filter(|&&b| b).count();
            prop_assert_eq!(hot, 1);
            sim.advance();
        }
    }
}
