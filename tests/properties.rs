//! Randomized property tests on the core invariants, spanning crates:
//! mapper round-trips, logic-minimizer correctness, structural
//! generator equivalence and timing-model monotonicity.
//!
//! Each property draws its cases from the deterministic
//! [`adgen::exec::Prng`] (fixed seeds), so the suite is reproducible,
//! offline and dependency-free while still covering the same input
//! space the former `proptest` strategies did.

use adgen::exec::Prng;
use adgen::prelude::*;

/// Generator: an SRAG-mappable sequence built from its own generative
/// model (register partition × iterations × dC), so the mapper can be
/// round-tripped against arbitrary valid inputs.
fn mappable_sequence(rng: &mut Prng) -> Vec<u32> {
    let regs = rng.next_in(1, 4) as usize;
    let len = rng.next_in(1, 5) as usize;
    let iters = rng.next_in(1, 4) as usize;
    let dc = rng.next_in(1, 4) as usize;
    let periods = rng.next_in(1, 3) as usize;
    let mut out = Vec::new();
    for _ in 0..periods {
        for r in 0..regs {
            for _ in 0..iters {
                for j in 0..len {
                    let address = (r * len + j) as u32;
                    for _ in 0..dc {
                        out.push(address);
                    }
                }
            }
        }
    }
    out
}

#[test]
fn mapper_round_trips_generated_sequences() {
    let mut rng = Prng::new(1);
    for _ in 0..64 {
        let s = AddressSequence::from_vec(mappable_sequence(&mut rng));
        let m = map_sequence(&s).expect("generatively valid sequences must map");
        let mut sim = SragSimulator::new(m.spec);
        assert_eq!(sim.collect_sequence(s.len()), s);
    }
}

#[test]
fn relaxed_mapper_accepts_whatever_base_accepts() {
    use adgen::core::multi_counter::{map_sequence_relaxed, MultiCounterSragSimulator};
    let mut rng = Prng::new(2);
    for _ in 0..64 {
        let s = AddressSequence::from_vec(mappable_sequence(&mut rng));
        if map_sequence(&s).is_ok() {
            let spec = map_sequence_relaxed(&s)
                .expect("relaxed mapper must accept base-mappable sequences");
            let mut sim = MultiCounterSragSimulator::new(spec);
            assert_eq!(sim.collect_sequence(s.len()), s);
        }
    }
}

#[test]
fn espresso_preserves_function() {
    use adgen::synth::cover::Cover;
    use adgen::synth::espresso;
    let mut rng = Prng::new(3);
    for _ in 0..64 {
        let count = rng.next_range(20) as usize;
        let mut minterms: Vec<u64> = (0..count).map(|_| rng.next_range(32)).collect();
        minterms.sort_unstable();
        minterms.dedup();
        let on = Cover::from_minterms(5, &minterms);
        let minimized = espresso::minimize(on.clone(), Cover::empty(5));
        for m in 0..32u64 {
            assert_eq!(minimized.eval(m), on.eval(m), "minterm {m}");
        }
        assert!(minimized.num_cubes() <= on.num_cubes().max(1));
    }
}

#[test]
fn complement_is_involutive_on_care_set() {
    use adgen::synth::cover::Cover;
    let mut rng = Prng::new(4);
    for _ in 0..64 {
        let count = rng.next_range(16) as usize;
        let mut minterms: Vec<u64> = (0..count).map(|_| rng.next_range(16)).collect();
        minterms.sort_unstable();
        minterms.dedup();
        let f = Cover::from_minterms(4, &minterms);
        let ff = f.complement().complement();
        for m in 0..16u64 {
            assert_eq!(ff.eval(m), f.eval(m));
        }
    }
}

#[test]
fn decoder_matches_arithmetic() {
    use adgen::synth::mapgen::build_decoder;
    let mut rng = Prng::new(5);
    for _ in 0..64 {
        let bits = rng.next_in(1, 6) as usize;
        let value = rng.next_range(1 << bits);
        let mut n = Netlist::new("dec");
        let addr: Vec<_> = (0..bits).map(|b| n.add_input(format!("a{b}"))).collect();
        let outs = build_decoder(&mut n, &addr).unwrap();
        for &o in &outs {
            n.add_output(o);
        }
        let mut sim = Simulator::new(&n).unwrap();
        let mut ins = vec![Logic::Zero];
        for b in 0..bits {
            ins.push(Logic::from_bool((value >> b) & 1 == 1));
        }
        sim.step(&ins).unwrap();
        for (i, &o) in outs.iter().enumerate() {
            assert_eq!(sim.value(o).to_bool(), Some(i as u64 == value));
        }
    }
}

#[test]
fn counter_is_a_counter() {
    use adgen::synth::mapgen::build_counter;
    let mut rng = Prng::new(6);
    for _ in 0..32 {
        let width = rng.next_in(1, 7) as u32;
        let steps = rng.next_in(1, 40) as usize;
        let mut n = Netlist::new("cnt");
        let en = n.add_input("en");
        let c = build_counter(&mut n, width, en, "c").unwrap();
        for &q in &c.q {
            n.add_output(q);
        }
        let mut sim = Simulator::new(&n).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        let modulus = 1u64 << width;
        for step in 0..steps {
            sim.step_bools(&[false, true]).unwrap();
            let value: u64 =
                c.q.iter()
                    .enumerate()
                    .map(|(i, &b)| u64::from(sim.value(b).to_bool().unwrap()) << i)
                    .sum();
            assert_eq!(value, step as u64 % modulus);
        }
    }
}

#[test]
fn sta_output_load_is_monotone() {
    let spec = SragSpec::ring(8);
    let design = SragNetlist::elaborate(&spec).unwrap();
    let lib = Library::vcl018();
    let mut rng = Prng::new(7);
    for _ in 0..32 {
        let load_a = rng.next_f64() * 50.0;
        let load_b = rng.next_f64() * 50.0;
        let (lo, hi) = if load_a <= load_b {
            (load_a, load_b)
        } else {
            (load_b, load_a)
        };
        let t_lo = TimingAnalysis::run_with_output_load(&design.netlist, &lib, lo).unwrap();
        let t_hi = TimingAnalysis::run_with_output_load(&design.netlist, &lib, hi).unwrap();
        assert!(t_hi.critical_path_ps() >= t_lo.critical_path_ps());
    }
}

#[test]
fn decompose_compose_round_trip() {
    let mut rng = Prng::new(8);
    for _ in 0..64 {
        let width = rng.next_in(1, 12) as u32;
        let height = rng.next_in(1, 12) as u32;
        let shape = ArrayShape::new(width, height);
        let seq: Vec<u32> = (0..50)
            .map(|_| rng.next_range(u64::from(shape.capacity())) as u32)
            .collect();
        let s = AddressSequence::from_vec(seq);
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let (rows, cols) = s.decompose(shape, layout).unwrap();
            let back = AddressSequence::compose(&rows, &cols, shape, layout).unwrap();
            assert_eq!(&back, &s);
        }
    }
}

#[test]
fn addm_rejects_every_multi_hot_pattern() {
    use adgen::memory::Addm;
    let mut rng = Prng::new(9);
    for _ in 0..64 {
        let width = rng.next_in(2, 8) as u32;
        let height = rng.next_in(2, 8) as u32;
        let a = rng.next_range(u64::from(height)) as usize;
        let mut b = rng.next_range(u64::from(height)) as usize;
        if a == b {
            b = (b + 1) % height as usize;
        }
        let shape = ArrayShape::new(width, height);
        let mut mem = Addm::new(shape);
        let mut rows = vec![false; height as usize];
        rows[a] = true;
        rows[b] = true;
        let mut cols = vec![false; width as usize];
        cols[0] = true;
        let err = mem.write(&rows, &cols, 1).unwrap_err();
        assert!(matches!(err, MemError::MultiHotRowSelect { asserted: 2 }));
    }
}

#[test]
fn random_srag_specs_are_gate_level_equivalent() {
    use adgen::core::arch::ShiftRegisterSpec;
    let mut rng = Prng::new(10);
    for _ in 0..24 {
        let regs = rng.next_in(1, 4) as usize;
        let len = rng.next_in(1, 4) as usize;
        let iters = rng.next_in(1, 3) as usize;
        let dc = rng.next_in(1, 4) as usize;
        // Random line assignment: a permutation of 0..regs*len, so
        // registers hold arbitrary (not consecutive) lines.
        let total = regs * len;
        let mut lines: Vec<u32> = (0..total as u32).collect();
        rng.shuffle(&mut lines);
        let registers: Vec<ShiftRegisterSpec> = lines
            .chunks(len)
            .map(|c| ShiftRegisterSpec::new(c.to_vec()))
            .collect();
        let spec = SragSpec::new(registers, dc, len * iters, total);
        let design = SragNetlist::elaborate(&spec).unwrap();
        let mut gate = Simulator::new(&design.netlist).unwrap();
        gate.step_bools(&[true, false]).unwrap();
        let mut model = SragSimulator::new(spec.clone());
        model.reset();
        for step in 0..2 * spec.period() {
            gate.step_bools(&[false, true]).unwrap();
            assert_eq!(
                design.observed_address(&gate),
                Some(model.current()),
                "step {step}"
            );
            model.advance();
        }
    }
}

#[test]
fn arith_generator_handles_any_short_period_sequence() {
    use adgen::cntag::{ArithAgSimulator, ArithAgSpec};
    let shape = ArrayShape::new(8, 8);
    let mut rng = Prng::new(11);
    for _ in 0..64 {
        let len = rng.next_in(1, 24) as usize;
        let seq: AddressSequence = (0..len).map(|_| rng.next_range(64) as u32).collect();
        let spec = ArithAgSpec::from_sequence(&seq, shape).unwrap();
        let mut model = ArithAgSimulator::new(spec);
        assert_eq!(model.collect_sequence(2 * seq.len()), seq.repeated(2));
    }
}

#[test]
fn srag_simulator_is_always_one_hot() {
    let mut rng = Prng::new(12);
    for _ in 0..64 {
        let s = AddressSequence::from_vec(mappable_sequence(&mut rng));
        let stalls = rng.next_range(3) as usize;
        let m = map_sequence(&s).expect("valid");
        let mut sim = SragSimulator::new(m.spec);
        for _ in 0..(s.len() * (stalls + 1)) {
            let hot = sim.select_lines().iter().filter(|&&b| b).count();
            assert_eq!(hot, 1);
            sim.advance();
        }
    }
}
