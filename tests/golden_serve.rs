//! Golden tests for the `adgen-serve` wire protocol.
//!
//! The protocol doc promises canonical encodings: one byte string per
//! distinct request/response value, stable across releases (the
//! on-disk result cache and any deployed client both depend on it).
//! This test renders the encoding of every request and response kind
//! — plus the two handshake messages — as a labelled hex dump and
//! byte-compares it against `tests/golden/serve_wire.txt`. Each entry
//! is also decoded back and re-encoded, so the goldens double as
//! round-trip witnesses.
//!
//! A byte difference here is a wire-format change: if intentional,
//! bump [`PROTOCOL_VERSION`] and regenerate with
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test --test golden_serve
//! ```

use std::fs;
use std::path::PathBuf;

use adgen::serve::protocol::{
    encode_request_frame, write_hello, write_hello_reply, CandidateRow, HANDSHAKE_REJECT_VERSION,
};
use adgen::serve::{
    Generator, MapOutcome, Request, Response, ServeError, StatsSnapshot, SynthReport,
    PROTOCOL_VERSION,
};
use adgen::synth::Encoding;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with BLESS_GOLDEN=1 cargo test --test golden_serve",
            path.display()
        )
    });
    assert_eq!(
        expected,
        actual,
        "wire encoding diverged from {} — this breaks deployed clients and the \
         on-disk cache; if intentional, bump PROTOCOL_VERSION and regenerate \
         with BLESS_GOLDEN=1 cargo test --test golden_serve",
        path.display()
    );
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// One fixed value per request tag — every `match` arm of the
/// encoder is covered, and adding a request kind without extending
/// this list fails the exhaustiveness assertions below.
fn request_fixtures() -> Vec<(&'static str, Request)> {
    vec![
        ("req.ping", Request::Ping),
        (
            "req.map_sequence",
            Request::MapSequence {
                sequence: vec![0, 0, 1, 1, 2, 2, 3, 3],
            },
        ),
        (
            "req.synthesize",
            Request::Synthesize {
                sequence: vec![0, 2, 1, 3],
                encoding: Encoding::Gray,
                num_lines: 4,
                effort_steps: 50_000_000,
                generator: Generator::Fsm,
            },
        ),
        (
            "req.synthesize_affine",
            Request::Synthesize {
                sequence: vec![0, 2, 1, 3],
                encoding: Encoding::Binary,
                num_lines: 4,
                effort_steps: 0,
                generator: Generator::Affine,
            },
        ),
        (
            "req.explore",
            Request::Explore {
                sequence: vec![0, 1, 2, 3, 4, 5, 6, 7],
                width: 4,
                height: 2,
                fsm_state_limit: 16,
            },
        ),
        ("req.stats", Request::Stats),
        ("req.shutdown", Request::Shutdown),
    ]
}

/// One fixed value per response tag (and per error variant).
fn response_fixtures() -> Vec<(&'static str, Response)> {
    vec![
        ("resp.pong", Response::Pong),
        (
            "resp.mapped",
            Response::Mapped(MapOutcome::Mapped {
                registers: vec![vec![0, 1], vec![2, 3]],
                div_count: 2,
                pass_count: 2,
                num_lines: 4,
            }),
        ),
        (
            "resp.violation",
            Response::Mapped(MapOutcome::Violation {
                reason: "division counts differ".to_string(),
            }),
        ),
        (
            "resp.synthesized",
            Response::Synthesized(SynthReport {
                area: 42.5,
                delay_ps: 812.25,
                flip_flops: 3,
                truncated: false,
            }),
        ),
        (
            "resp.explored",
            Response::Explored {
                pareto: vec![
                    CandidateRow {
                        architecture: "SRAG".to_string(),
                        delay_ps: 350.0,
                        area: 120.0,
                        flip_flops: 8,
                    },
                    CandidateRow {
                        architecture: "CntAG".to_string(),
                        delay_ps: 640.0,
                        area: 75.5,
                        flip_flops: 3,
                    },
                ],
                rejected: 1,
            },
        ),
        (
            "resp.stats",
            Response::Stats(StatsSnapshot {
                req_map: 1,
                req_synthesize: 2,
                req_explore: 3,
                req_control: 4,
                cache_hit_mem: 5,
                cache_hit_disk: 6,
                cache_miss: 7,
                deadline_expired: 8,
                queue_high_water: 9,
                batches: 10,
                shed: 11,
                coalesce_leaders: 12,
                coalesce_waiters: 13,
                disk_evictions: 14,
                reactor_wakeups: 15,
                cache_corrupt: 16,
                disk_write_errors: 17,
                conn_malformed: 18,
                conn_timed_out: 19,
            }),
        ),
        ("resp.shutting_down", Response::ShuttingDown),
        (
            "resp.err.deadline",
            Response::Error(ServeError::Deadline { waited_ms: 250 }),
        ),
        (
            "resp.err.queue_full",
            Response::Error(ServeError::QueueFull { capacity: 256 }),
        ),
        (
            "resp.err.version_mismatch",
            Response::Error(ServeError::VersionMismatch {
                client: 2,
                server: 1,
            }),
        ),
        (
            "resp.err.protocol",
            Response::Error(ServeError::Protocol("unknown request tag 99".to_string())),
        ),
        (
            "resp.err.bad_request",
            Response::Error(ServeError::BadRequest("sequence is empty".to_string())),
        ),
        (
            "resp.err.internal",
            Response::Error(ServeError::Internal("server is shutting down".to_string())),
        ),
        (
            "resp.err.worker_panicked",
            Response::Error(ServeError::WorkerPanicked("dispatcher".to_string())),
        ),
        (
            "resp.err.malformed_frame",
            Response::Error(ServeError::MalformedFrame(
                "frame length 99999999 exceeds cap 16777216".to_string(),
            )),
        ),
        (
            "resp.err.io_timeout",
            Response::Error(ServeError::IoTimeout { idle_ms: 5000 }),
        ),
    ]
}

/// The labelled hex dump the golden file holds.
fn wire_dump() -> String {
    let mut out = String::new();
    out.push_str(&format!("protocol_version: {PROTOCOL_VERSION}\n"));

    let mut hello = Vec::new();
    write_hello(&mut hello, PROTOCOL_VERSION).expect("vec write");
    out.push_str(&format!("handshake.hello: {}\n", hex(&hello)));
    let mut reply = Vec::new();
    write_hello_reply(&mut reply, HANDSHAKE_REJECT_VERSION, PROTOCOL_VERSION).expect("vec write");
    out.push_str(&format!("handshake.reject: {}\n", hex(&reply)));

    for (name, req) in request_fixtures() {
        out.push_str(&format!("{name}: {}\n", hex(&req.encode())));
    }
    // One framed request, deadline in the envelope: proves the
    // envelope sits outside the canonical bytes.
    let framed = encode_request_frame(&Request::Ping, 1500);
    out.push_str(&format!("req.ping.framed_1500ms: {}\n", hex(&framed)));

    for (name, resp) in response_fixtures() {
        out.push_str(&format!("{name}: {}\n", hex(&resp.encode())));
    }
    out
}

#[test]
fn wire_encodings_match_golden() {
    assert_matches_golden("serve_wire.txt", &wire_dump());
}

#[test]
fn every_request_kind_round_trips_through_its_golden_bytes() {
    for (name, req) in request_fixtures() {
        let bytes = req.encode();
        let decoded = Request::decode(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(decoded, req, "{name}");
        assert_eq!(decoded.encode(), bytes, "{name}: re-encode is canonical");
    }
}

#[test]
fn every_response_kind_round_trips_through_its_golden_bytes() {
    for (name, resp) in response_fixtures() {
        let bytes = resp.encode();
        let decoded = Response::decode(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(decoded, resp, "{name}");
        assert_eq!(decoded.encode(), bytes, "{name}: re-encode is canonical");
    }
}

#[test]
fn fixtures_cover_every_tag() {
    // Guards the golden set against silently falling behind the
    // protocol: first payload byte is the tag, and the fixture lists
    // must cover a contiguous tag range starting at 0.
    let mut req_tags: Vec<u8> = request_fixtures()
        .iter()
        .map(|(_, r)| r.encode()[0])
        .collect();
    req_tags.sort_unstable();
    req_tags.dedup();
    assert_eq!(req_tags, (0..=5).collect::<Vec<u8>>(), "request tags 0..=5");

    let mut resp_tags: Vec<u8> = response_fixtures()
        .iter()
        .map(|(_, r)| r.encode()[0])
        .collect();
    resp_tags.sort_unstable();
    resp_tags.dedup();
    assert_eq!(
        resp_tags,
        (0..=6).collect::<Vec<u8>>(),
        "response tags 0..=6"
    );

    // Error payloads carry a sub-tag in their second byte; the
    // fixture list must cover every variant, contiguously from 0.
    let mut err_tags: Vec<u8> = response_fixtures()
        .iter()
        .filter(|(_, r)| matches!(r, Response::Error(_)))
        .map(|(_, r)| r.encode()[1])
        .collect();
    err_tags.sort_unstable();
    err_tags.dedup();
    assert_eq!(err_tags, (0..=8).collect::<Vec<u8>>(), "error tags 0..=8");
}
