//! Golden tests for the two observability exporters
//! (`obs::chrome_trace`, `obs::profile_report`).
//!
//! Each test replays a deterministic instrumented scenario and
//! byte-compares the *redacted* exporter output — the `OBS_REDACT=1`
//! form, with every timestamp/duration elided — against a checked-in
//! golden under `tests/golden/`. Span trees, arguments, counter
//! totals and event ordering are pure functions of the scenario
//! inputs, so any byte difference is a real change to the exported
//! format — review it, then regenerate with
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test --test golden_obs
//! ```

use std::fs;
use std::path::PathBuf;

use adgen::exec::par_map;
use adgen::netlist::{Library, TimingAnalysis};
use adgen::obs;
use adgen::obs::json::validate_chrome_trace;
use adgen::prelude::*;
use adgen::synth::espresso::minimize_budgeted;
use adgen::synth::{Cover, EffortBudget};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Byte-compares `actual` against `tests/golden/<name>`, or rewrites
/// the golden when `BLESS_GOLDEN` is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with BLESS_GOLDEN=1 cargo test --test golden_obs",
            path.display()
        )
    });
    assert_eq!(
        expected,
        actual,
        "exporter output diverged from {} — if intentional, regenerate with \
         BLESS_GOLDEN=1 cargo test --test golden_obs",
        path.display()
    );
}

/// One espresso minimization of a fixed 4-input cover: exercises the
/// `espresso.minimize` → expand/irredundant/reduce span hierarchy and
/// the steps/word-ops counters.
fn minimize_recording() -> obs::Recording {
    obs::start();
    let on = Cover::from_minterms(4, &[0, 1, 2, 3, 8, 9, 10, 11]);
    let outcome = minimize_budgeted(on, Cover::empty(4), EffortBudget::UNLIMITED);
    assert!(!outcome.truncated);
    obs::take()
}

/// A `par_map` STA sweep: four load points over a ring-8 SRAG at
/// `--jobs 2`, exercising the capture/splice stitching that makes the
/// recorded tree jobs-invariant.
fn sweep_recording() -> obs::Recording {
    let design = SragNetlist::elaborate(&SragSpec::ring(8)).expect("ring elaborates");
    let library = Library::vcl018();
    obs::start();
    let loads = [0.0f64, 40.0, 80.0, 120.0];
    let critical: Vec<f64> = par_map(&loads, 2, |_, &load| {
        TimingAnalysis::run_with_output_load(&design.netlist, &library, load)
            .expect("sta runs")
            .critical_path_ps()
    });
    assert!(critical.iter().all(|&ps| ps > 0.0));
    obs::take()
}

#[test]
fn minimize_trace_matches_golden() {
    let rec = minimize_recording();
    let text = obs::chrome_trace(&rec, true);
    validate_chrome_trace(&text).expect("golden trace passes the schema check");
    assert_matches_golden("trace_minimize.json", &text);
}

#[test]
fn minimize_profile_matches_golden() {
    let rec = minimize_recording();
    assert_matches_golden("profile_minimize.txt", &obs::profile_report(&rec, true));
}

#[test]
fn sweep_trace_matches_golden() {
    let rec = sweep_recording();
    let text = obs::chrome_trace(&rec, true);
    validate_chrome_trace(&text).expect("golden trace passes the schema check");
    assert_matches_golden("trace_sweep.json", &text);
}

#[test]
fn sweep_profile_matches_golden() {
    let rec = sweep_recording();
    assert_matches_golden("profile_sweep.txt", &obs::profile_report(&rec, true));
}
