//! Integration tests pinning the paper's exact worked examples:
//! Table 1 (address sequences), Table 2 (mapping parameters) and the
//! §4 example sequences of Fig. 5.

use adgen::prelude::*;

#[test]
fn table1_linear_row_and_column_sequences() {
    let shape = ArrayShape::new(4, 4);
    let lin = workloads::motion_est_read(shape, 2, 2, 0);
    assert_eq!(
        lin.as_slice(),
        &[0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15],
        "LinAS"
    );
    let (rows, cols) = lin.decompose(shape, Layout::RowMajor).unwrap();
    assert_eq!(
        rows.as_slice(),
        &[0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3],
        "RowAS"
    );
    assert_eq!(
        cols.as_slice(),
        &[0, 1, 0, 1, 2, 3, 2, 3, 0, 1, 0, 1, 2, 3, 2, 3],
        "ColAS"
    );
}

#[test]
fn table2_mapping_parameters_for_row_stream() {
    let rows = AddressSequence::from_vec(vec![0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3]);
    let m = map_sequence(&rows).unwrap();
    assert_eq!(m.division_counts, vec![2; 8], "D");
    assert_eq!(m.reduced.as_slice(), &[0, 1, 0, 1, 2, 3, 2, 3], "R");
    assert_eq!(m.unique, vec![0, 1, 2, 3], "U");
    assert_eq!(m.occurrences, vec![2, 2, 2, 2], "O");
    assert_eq!(m.first_positions, vec![0, 1, 4, 5], "Z");
    let registers: Vec<Vec<u32>> = m
        .spec
        .registers
        .iter()
        .map(|r| r.lines().to_vec())
        .collect();
    assert_eq!(registers, vec![vec![0, 1], vec![2, 3]], "S");
    assert_eq!(m.pass_counts, vec![4, 4], "P");
    assert_eq!(m.spec.div_count, 2, "dC");
    assert_eq!(m.spec.pass_count, 4, "pC");
}

#[test]
fn fig5_example_sequences() {
    use adgen::core::arch::ShiftRegisterSpec;
    // dC = 2, pass always asserted (pC = 4 per visit).
    let spec = SragSpec::new(
        vec![
            ShiftRegisterSpec::new(vec![5, 1, 4, 0]),
            ShiftRegisterSpec::new(vec![3, 7, 6, 2]),
        ],
        2,
        4,
        8,
    );
    let mut sim = SragSimulator::new(spec);
    assert_eq!(
        sim.collect_sequence(16).as_slice(),
        &[5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]
    );
    // pC = 8, dC = 1.
    let spec = SragSpec::new(
        vec![
            ShiftRegisterSpec::new(vec![5, 1, 4, 0]),
            ShiftRegisterSpec::new(vec![3, 7, 6, 2]),
        ],
        1,
        8,
        8,
    );
    let mut sim = SragSimulator::new(spec);
    assert_eq!(
        sim.collect_sequence(16).as_slice(),
        &[5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2]
    );
}

#[test]
fn paper_restriction_counterexamples_fail_exactly_as_described() {
    // §4: per-address dC mismatch (3 for address 5, 2 elsewhere).
    let s = AddressSequence::from_vec(vec![5, 5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]);
    assert!(matches!(
        map_sequence(&s),
        Err(SragError::DivCntViolation { .. })
    ));
    // §4: pC mismatch (12 for S0, 8 for S1).
    let s = AddressSequence::from_vec(vec![
        5, 1, 4, 0, 5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2,
    ]);
    assert!(matches!(
        map_sequence(&s),
        Err(SragError::PassCntViolation { .. })
    ));
    // §5: initial grouping failure example.
    let s = AddressSequence::from_vec(vec![1, 2, 3, 4, 3, 2, 1, 4]);
    assert!(matches!(
        map_sequence(&s),
        Err(SragError::GroupingFailure { .. })
    ));
}

#[test]
fn relaxed_mapper_accepts_both_counterexamples() {
    use adgen::core::multi_counter::map_sequence_relaxed;
    let a = AddressSequence::from_vec(vec![5, 5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]);
    assert!(map_sequence_relaxed(&a).is_ok());
    let b = AddressSequence::from_vec(vec![
        5, 1, 4, 0, 5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2,
    ]);
    assert!(map_sequence_relaxed(&b).is_ok());
}
