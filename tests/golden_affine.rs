//! Golden tests for the affine AGU's emitted artifacts: the
//! structural Verilog netlist and a VCD trace of a full serial
//! programming sequence followed by the first emitted addresses.
//!
//! Elaboration, chain serialization, naming and emission are all pure
//! functions of the spec, so any byte difference is a real change to
//! the circuit or the emitters — review it, then regenerate with
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test --test golden_affine
//! ```

use std::fs;
use std::path::PathBuf;

use adgen::affine::netlist::{program_inputs, reset_inputs, tick_inputs};
use adgen::netlist::{to_verilog, Simulator, VcdTrace};
use adgen::prelude::*;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Byte-compares `actual` against `tests/golden/<name>`, or rewrites
/// the golden when `BLESS_GOLDEN` is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with BLESS_GOLDEN=1 cargo test --test golden_affine",
            path.display()
        )
    });
    assert_eq!(
        expected,
        actual,
        "affine artifact diverged from {} — if intentional, regenerate with \
         BLESS_GOLDEN=1 cargo test --test golden_affine",
        path.display()
    );
}

/// The reviewable running example: the fitted program of a 4×4 raster
/// scan — a 16-address ramp on a 4-bit datapath, small enough to read
/// the netlist by eye but exercising both loop levels' counters and
/// the full configuration chain.
fn raster_fit() -> AffineFit {
    let seq = workloads::raster(ArrayShape::new(4, 4));
    let fit = fit_sequence(seq.as_slice()).expect("a raster ramp fits");
    assert!(fit.is_exact());
    fit
}

#[test]
fn affine_verilog_matches_golden() {
    let design = AffineAgNetlist::elaborate(&raster_fit().spec).expect("elaborates");
    let text = to_verilog(&design.netlist, false);
    assert_eq!(
        text.matches("module ").count(),
        text.matches("endmodule").count()
    );
    assert_matches_golden("affine_raster4x4.v", &text);
}

#[test]
fn affine_programming_vcd_matches_golden() {
    // A blank (trivially-defaulted) circuit of the raster program's
    // widths: the trace witnesses the reset, every serial programming
    // bit marching down the chain, and the first eight emitted
    // addresses of the freshly-loaded program.
    let fit = raster_fit();
    let blank = AffineAgNetlist::elaborate(&AffineSpec::trivial(
        fit.spec.addr_width,
        fit.spec.cnt_width,
    ))
    .expect("blank circuit elaborates");
    let bits = blank.program_bits(&fit.spec).expect("program serializes");

    let mut sim = Simulator::new(&blank.netlist).expect("simulates");
    let mut trace = VcdTrace::new(&blank.netlist);
    sim.step_bools(&reset_inputs()).expect("reset");
    trace.sample(&sim);
    for &bit in &bits {
        sim.step_bools(&program_inputs(bit)).expect("program step");
        trace.sample(&sim);
    }
    for _ in 0..8 {
        sim.step_bools(&tick_inputs()).expect("tick");
        trace.sample(&sim);
    }
    assert_eq!(trace.steps() as usize, 1 + bits.len() + 8);
    let text = trace.finish();
    assert!(text.starts_with("$timescale"));
    assert!(text.contains("$enddefinitions $end"));
    assert_matches_golden("affine_program4x4.vcd", &text);
}
