//! The three simulation engines (levelized, event-driven, and the
//! bit-sliced 64-lane kernel under a broadcast stimulus) must be
//! observationally identical on every real generator netlist, under
//! streaming, stalling and mid-stream-reset stimulus.

use adgen::netlist::{EventSimulator, SlicedSimulator};
use adgen::prelude::*;

fn cross_check(netlist: &Netlist, cycles: usize, seed: u64) {
    let mut reference = Simulator::new(netlist).unwrap();
    let mut event = EventSimulator::new(netlist).unwrap();
    // 65 lanes puts the last broadcast lane in the second word, so the
    // word-seam path is exercised on every netlist here too.
    let mut sliced = SlicedSimulator::new(netlist, 65).unwrap();
    let num_inputs = netlist.inputs().len();
    let mut lcg = seed;
    for cycle in 0..cycles {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
        let r = lcg >> 33;
        let mut inputs = vec![Logic::Zero; num_inputs];
        inputs[0] = Logic::from_bool(cycle == 0 || r.is_multiple_of(23)); // reset
        if num_inputs > 1 {
            inputs[1] = Logic::from_bool(!r.is_multiple_of(4)); // next, mostly on
        }
        for (k, v) in inputs.iter_mut().enumerate().skip(2) {
            *v = Logic::from_bool((r >> k) & 1 == 1);
        }
        reference.step(&inputs).unwrap();
        event.step(&inputs).unwrap();
        sliced.step(&inputs).unwrap();
        for (i, _) in netlist.nets().iter().enumerate() {
            let id = netlist.net_id_from_index(i);
            assert_eq!(
                reference.value(id),
                event.value(id),
                "cycle {cycle}, net {}",
                netlist.net(id).name()
            );
            for lane in [0, 64] {
                assert_eq!(
                    reference.value(id),
                    sliced.value_lane(id, lane),
                    "cycle {cycle}, net {}, sliced lane {lane}",
                    netlist.net(id).name()
                );
            }
        }
    }
}

#[test]
fn srag_pair_netlists_simulate_identically() {
    let shape = ArrayShape::new(8, 8);
    for seq in [
        workloads::motion_est_read(shape, 2, 2, 0),
        workloads::zoom_by_two(ArrayShape::new(8, 4)),
    ] {
        let max = seq.max_address().unwrap();
        let shape = if max < 64 {
            ArrayShape::new(8, (max / 8 + 1).max(1).next_power_of_two())
        } else {
            shape
        };
        let pair = Srag2d::map(&seq, shape, Layout::RowMajor).unwrap();
        let design = pair.elaborate().unwrap();
        cross_check(&design.netlist, 150, 7 + u64::from(max));
    }
}

#[test]
fn cntag_and_arith_netlists_simulate_identically() {
    let shape = ArrayShape::new(8, 8);
    let cnt = CntAgNetlist::elaborate(&CntAgSpec::motion_est(shape, 2, 2, 0)).unwrap();
    cross_check(&cnt.netlist, 150, 99);
    let seq = workloads::serpentine(shape);
    let arith =
        ArithAgNetlist::elaborate(&ArithAgSpec::from_sequence(&seq, shape).unwrap()).unwrap();
    cross_check(&arith.netlist, 150, 5);
}

#[test]
fn fsm_netlists_simulate_identically() {
    let seq: Vec<u32> = vec![5, 1, 4, 0, 3, 7, 6, 2];
    for encoding in [Encoding::Binary, Encoding::Gray, Encoding::OneHot] {
        let design = Fsm::cyclic_sequence(&seq)
            .unwrap()
            .synthesize(encoding, OutputStyle::SelectLines { num_lines: 8 })
            .unwrap();
        cross_check(&design.netlist, 120, 13);
    }
}

#[test]
fn event_simulation_is_sparse_on_srag() {
    // The token architecture's selling point in simulation: a 32x32
    // SRAG pair touches only a handful of gates per cycle.
    let shape = ArrayShape::new(32, 32);
    let seq = workloads::fifo(shape);
    let design = Srag2d::map(&seq, shape, Layout::RowMajor)
        .unwrap()
        .elaborate()
        .unwrap();
    let comb_gates = design.netlist.num_instances() - design.netlist.num_flip_flops();
    let mut sim = EventSimulator::new(&design.netlist).unwrap();
    sim.step_bools(&[true, false]).unwrap();
    let after_reset = sim.evaluations();
    let cycles = 500u64;
    for _ in 0..cycles {
        sim.step_bools(&[false, true]).unwrap();
    }
    let per_cycle = (sim.evaluations() - after_reset) as f64 / cycles as f64;
    assert!(
        per_cycle < comb_gates as f64 / 2.0,
        "event sim should evaluate a minority of the {comb_gates} gates per cycle, got {per_cycle:.1}"
    );
}
