//! Round-trip golden tests for the text emitters
//! (`netlist::verilog`, `netlist::vcd`).
//!
//! Each test renders a deterministic design and byte-compares the
//! output against a checked-in golden file under `tests/golden/`.
//! Elaboration, naming and emission are all pure functions of the
//! input spec, so any byte difference is a real change to the emitted
//! format — review it, then regenerate the goldens with
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test --test golden_emitters
//! ```

use std::fs;
use std::path::PathBuf;

use adgen::core::composite::Srag2dNetlist;
use adgen::netlist::{to_verilog, Simulator, VcdTrace};
use adgen::prelude::*;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Byte-compares `actual` against `tests/golden/<name>`, or rewrites
/// the golden when `BLESS_GOLDEN` is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with BLESS_GOLDEN=1 cargo test --test golden_emitters",
            path.display()
        )
    });
    assert_eq!(
        expected,
        actual,
        "emitter output diverged from {} — if intentional, regenerate with \
         BLESS_GOLDEN=1 cargo test --test golden_emitters",
        path.display()
    );
}

/// The paper's running example (Table 2): a 4×4 FIFO pair — small
/// enough to review by eye, large enough to exercise counters, token
/// chains and fanout buffering.
fn paper_design() -> Srag2dNetlist {
    let shape = ArrayShape::new(4, 4);
    let seq = workloads::fifo(shape);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).expect("fifo maps");
    pair.elaborate().expect("elaborates")
}

#[test]
fn verilog_structural_matches_golden() {
    let design = paper_design();
    assert_matches_golden("fifo4x4.v", &to_verilog(&design.netlist, false));
}

#[test]
fn verilog_with_primitives_matches_golden() {
    let design = paper_design();
    let text = to_verilog(&design.netlist, true);
    // Structural sanity before the byte comparison: balanced
    // module/endmodule and self-contained primitive definitions.
    assert_eq!(
        text.matches("module ").count(),
        text.matches("endmodule").count()
    );
    assert!(text.contains("module vcl018_"));
    assert_matches_golden("fifo4x4_with_primitives.v", &text);
}

#[test]
fn vcd_trace_matches_golden() {
    let design = paper_design();
    let mut sim = Simulator::new(&design.netlist).expect("simulates");
    let mut trace = VcdTrace::new(&design.netlist);
    sim.step_bools(&[true, false]).expect("reset");
    trace.sample(&sim);
    // One full 16-access period plus two wrap cycles.
    for _ in 0..18 {
        sim.step_bools(&[false, true]).expect("step");
        trace.sample(&sim);
    }
    assert_eq!(trace.steps(), 19);
    let text = trace.finish();
    // Well-formedness: header sections present and every value-change
    // line uses a defined identifier code.
    assert!(text.starts_with("$timescale"));
    assert!(text.contains("$enddefinitions $end"));
    assert_matches_golden("fifo4x4.vcd", &text);
}
