//! Cross-crate gate-level equivalence: for every paper workload and
//! several array sizes, the elaborated netlists of the SRAG pair, the
//! CntAG and the symbolic FSM must generate exactly the workload's
//! address sequence, cycle by cycle, under logic simulation.

use adgen::prelude::*;

fn workload_cases(shape: ArrayShape) -> Vec<(&'static str, AddressSequence, CntAgSpec)> {
    let mb = (shape.width() / 4).max(2);
    vec![
        ("fifo", workloads::fifo(shape), CntAgSpec::raster(shape)),
        (
            "motion_est",
            workloads::motion_est_read(shape, mb, mb, 0),
            CntAgSpec::motion_est(shape, mb, mb, 0),
        ),
        (
            "dct",
            workloads::transpose_scan(shape),
            CntAgSpec::transpose(shape),
        ),
        (
            "zoombytwo",
            workloads::zoom_by_two(shape),
            CntAgSpec::zoom_by_two(shape),
        ),
    ]
}

#[test]
fn srag_netlists_generate_every_workload() {
    for n in [4u32, 8, 16] {
        let shape = ArrayShape::new(n, n);
        for (name, seq, _) in workload_cases(shape) {
            let pair = Srag2d::map(&seq, shape, Layout::RowMajor)
                .unwrap_or_else(|e| panic!("{name}@{n}: {e}"));
            let design = pair.elaborate().unwrap();
            let mut sim = Simulator::new(&design.netlist).unwrap();
            sim.step_bools(&[true, false]).unwrap();
            for (step, &expected) in seq.iter().enumerate() {
                sim.step_bools(&[false, true]).unwrap();
                assert_eq!(
                    design.observed_address(&sim),
                    Some(expected),
                    "{name}@{n} step {step}"
                );
            }
        }
    }
}

#[test]
fn cntag_netlists_generate_every_workload() {
    for n in [4u32, 8] {
        let shape = ArrayShape::new(n, n);
        for (name, seq, program) in workload_cases(shape) {
            let design = CntAgNetlist::elaborate(&program).unwrap();
            let mut sim = Simulator::new(&design.netlist).unwrap();
            sim.step_bools(&[true, false]).unwrap();
            for (step, &expected) in seq.iter().enumerate() {
                sim.step_bools(&[false, true]).unwrap();
                assert_eq!(
                    design.observed_address(&sim),
                    Some(expected),
                    "{name}@{n} step {step}"
                );
            }
        }
    }
}

#[test]
fn symbolic_fsm_generates_row_stream() {
    let shape = ArrayShape::new(8, 8);
    let seq = workloads::motion_est_read(shape, 2, 2, 0);
    let (rows, _) = seq.decompose(shape, Layout::RowMajor).unwrap();
    let design = adgen::synth::fsm::synthesize_verified(
        rows.as_slice(),
        Encoding::Binary,
        OutputStyle::SelectLines {
            num_lines: shape.height() as usize,
        },
    )
    .unwrap();
    assert!(design.netlist.num_flip_flops() >= 6);
}

#[test]
fn all_three_architectures_agree_cycle_by_cycle() {
    let shape = ArrayShape::new(8, 8);
    let seq = workloads::motion_est_read(shape, 4, 4, 0);

    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).unwrap();
    let srag = pair.elaborate().unwrap();
    let cnt = CntAgNetlist::elaborate(&CntAgSpec::motion_est(shape, 4, 4, 0)).unwrap();

    let mut srag_sim = Simulator::new(&srag.netlist).unwrap();
    let mut cnt_sim = Simulator::new(&cnt.netlist).unwrap();
    srag_sim.step_bools(&[true, false]).unwrap();
    cnt_sim.step_bools(&[true, false]).unwrap();
    for step in 0..2 * seq.len() {
        srag_sim.step_bools(&[false, true]).unwrap();
        cnt_sim.step_bools(&[false, true]).unwrap();
        let a = srag.observed_address(&srag_sim);
        let b = cnt.observed_address(&cnt_sim);
        assert_eq!(a, b, "architectures disagree at step {step}");
        assert!(a.is_some(), "undefined output at step {step}");
    }
}

#[test]
fn srag_two_hot_discipline_holds_for_thousands_of_cycles() {
    let shape = ArrayShape::new(16, 16);
    let seq = workloads::zoom_by_two(shape);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).unwrap();
    let design = pair.elaborate().unwrap();
    let mut sim = Simulator::new(&design.netlist).unwrap();
    sim.step_bools(&[true, false]).unwrap();
    let mut lcg = 7u64;
    for cycle in 0..3000u32 {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
        let advance = !(lcg >> 33).is_multiple_of(4); // mostly advancing, some stalls
        sim.step_bools(&[false, advance]).unwrap();
        let hot_rows = design
            .row_lines
            .iter()
            .filter(|&&l| sim.value(l).to_bool() == Some(true))
            .count();
        let hot_cols = design
            .col_lines
            .iter()
            .filter(|&&l| sim.value(l).to_bool() == Some(true))
            .count();
        assert_eq!(
            (hot_rows, hot_cols),
            (1, 1),
            "select-discipline violation at cycle {cycle}"
        );
    }
}

#[test]
fn mid_stream_reset_recovers_all_architectures() {
    let shape = ArrayShape::new(4, 4);
    let seq = workloads::motion_est_read(shape, 2, 2, 0);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).unwrap();
    let srag = pair.elaborate().unwrap();
    let cnt = CntAgNetlist::elaborate(&CntAgSpec::motion_est(shape, 2, 2, 0)).unwrap();
    for netlist_and_decode in [
        (
            &srag.netlist,
            Box::new(|s: &Simulator<'_>| srag.observed_address(s))
                as Box<dyn Fn(&Simulator<'_>) -> Option<u32>>,
        ),
        (
            &cnt.netlist,
            Box::new(|s: &Simulator<'_>| cnt.observed_address(s)),
        ),
    ] {
        let (netlist, decode) = netlist_and_decode;
        let mut sim = Simulator::new(netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        for _ in 0..7 {
            sim.step_bools(&[false, true]).unwrap();
        }
        // Reset mid-stream; the machine must restart from the first
        // address.
        sim.step_bools(&[true, false]).unwrap();
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(decode(&sim), Some(seq.as_slice()[0]));
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(decode(&sim), Some(seq.as_slice()[1]));
    }
}
