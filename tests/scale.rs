//! Large-configuration stress tests. The default suite keeps the
//! 512×512/256×256 cases `#[ignore]`d to stay fast (run them with
//! `cargo test -- --ignored`, e.g. via `CI_SLOW=1 scripts/ci.sh`);
//! each has a bounded 64×64 twin below that always runs, so the same
//! code paths are exercised on every `cargo test`.

use adgen::prelude::*;

#[test]
fn srag_64x64_maps_elaborates_and_times() {
    // Bounded twin of `srag_512x512_maps_elaborates_and_times`.
    let shape = ArrayShape::new(64, 64);
    let seq = workloads::fifo(shape);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).unwrap();
    let design = pair.elaborate().unwrap();
    assert_eq!(design.row_lines.len(), 64);
    assert_eq!(design.col_lines.len(), 64);
    let lib = Library::vcl018();
    let t = TimingAnalysis::run(&design.netlist, &lib).unwrap();
    let a = AreaReport::of(&design.netlist, &lib);
    assert!(t.critical_path_ns() > 0.0);
    assert!(a.total() > 1_000.0);
    // Spot-check the first 500 cycles at gate level.
    let mut sim = Simulator::new(&design.netlist).unwrap();
    sim.step_bools(&[true, false]).unwrap();
    for (i, &expected) in seq.iter().take(500).enumerate() {
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(expected), "step {i}");
    }
}

#[test]
fn cntag_64x64_components() {
    // Bounded twin of `cntag_512x512_components`.
    use adgen::cntag::component_delays;
    let shape = ArrayShape::new(64, 64);
    let lib = Library::vcl018();
    let c = component_delays(&CntAgSpec::raster(shape), &lib).unwrap();
    assert!(c.row_decoder_ps > 0.0);
    assert!(c.total_ps() > c.counter_ps);
}

#[test]
fn full_period_verification_64x64() {
    // Bounded twin of `full_period_verification_256x256`: one
    // complete 4096-access period, gate level.
    let shape = ArrayShape::new(64, 64);
    let mb = 8;
    let seq = workloads::motion_est_read(shape, mb, mb, 0);
    assert_eq!(seq.len(), 4096);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).unwrap();
    let design = pair.elaborate().unwrap();
    let mut sim = Simulator::new(&design.netlist).unwrap();
    sim.step_bools(&[true, false]).unwrap();
    for (i, &expected) in seq.iter().enumerate() {
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(expected), "step {i}");
    }
}

#[test]
fn affine_64x64_fits_elaborates_and_replays() {
    // Bounded twin of `affine_256x256_full_period_replay`.
    let shape = ArrayShape::new(64, 64);
    let seq = workloads::raster(shape);
    let fit = fit_sequence(seq.as_slice()).unwrap();
    assert!(fit.is_exact(), "a raster ramp is affine");
    let design = AffineAgNetlist::elaborate(&fit.spec).unwrap();
    let lib = Library::vcl018();
    let t = TimingAnalysis::run(&design.netlist, &lib).unwrap();
    let a = AreaReport::of(&design.netlist, &lib);
    assert!(t.critical_path_ns() > 0.0);
    assert!(a.total() > 500.0);
    assert!(design.config_bits() > 0, "programming chain present");
    // Spot-check the first 500 emitted addresses at gate level.
    let max_ticks = 2 * fit.spec.program_ticks() + 8;
    let mut sim = Simulator::new(&design.netlist).unwrap();
    design.reset_sim(&mut sim).unwrap();
    let got = design.collect_emitted(&mut sim, 500, max_ticks).unwrap();
    assert_eq!(&got[..], &seq.as_slice()[..500]);
}

#[test]
fn affine_64x64_chain_programming_replays() {
    // Bounded twin of `affine_256x256_chain_programming_replays`:
    // shift the fitted program into a blank (trivially-defaulted)
    // circuit over the serial configuration chain, then replay.
    let shape = ArrayShape::new(64, 64);
    let seq = workloads::raster(shape);
    let fit = fit_sequence(seq.as_slice()).unwrap();
    let blank = AffineAgNetlist::elaborate(&AffineSpec::trivial(
        fit.spec.addr_width,
        fit.spec.cnt_width,
    ))
    .unwrap();
    let mut sim = Simulator::new(&blank.netlist).unwrap();
    blank.reset_sim(&mut sim).unwrap();
    blank.program(&mut sim, &fit.spec).unwrap();
    let max_ticks = 2 * fit.spec.program_ticks() + 8;
    let got = blank.collect_emitted(&mut sim, 500, max_ticks).unwrap();
    assert_eq!(&got[..], &seq.as_slice()[..500]);
}

#[test]
#[ignore = "large configuration; run with --ignored"]
fn srag_512x512_maps_elaborates_and_times() {
    let shape = ArrayShape::new(512, 512);
    let seq = workloads::fifo(shape);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).unwrap();
    let design = pair.elaborate().unwrap();
    assert_eq!(design.row_lines.len(), 512);
    assert_eq!(design.col_lines.len(), 512);
    let lib = Library::vcl018();
    let t = TimingAnalysis::run(&design.netlist, &lib).unwrap();
    let a = AreaReport::of(&design.netlist, &lib);
    assert!(t.critical_path_ns() > 0.0);
    assert!(a.total() > 20_000.0);
    // Spot-check the first 2000 cycles at gate level.
    let mut sim = Simulator::new(&design.netlist).unwrap();
    sim.step_bools(&[true, false]).unwrap();
    for (i, &expected) in seq.iter().take(2000).enumerate() {
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(expected), "step {i}");
    }
}

#[test]
#[ignore = "large configuration; run with --ignored"]
fn cntag_512x512_components() {
    use adgen::cntag::component_delays;
    let shape = ArrayShape::new(512, 512);
    let lib = Library::vcl018();
    let c = component_delays(&CntAgSpec::raster(shape), &lib).unwrap();
    assert!(c.row_decoder_ps > 0.0);
    assert!(c.total_ps() > c.counter_ps);
}

#[test]
#[ignore = "large configuration; run with --ignored"]
fn affine_256x256_full_period_replay() {
    // One complete 65 536-access raster period through the fitted
    // affine AGU, gate level.
    let shape = ArrayShape::new(256, 256);
    let seq = workloads::raster(shape);
    let fit = fit_sequence(seq.as_slice()).unwrap();
    assert!(fit.is_exact());
    let design = AffineAgNetlist::elaborate(&fit.spec).unwrap();
    let max_ticks = 2 * fit.spec.program_ticks() + 8;
    let mut sim = Simulator::new(&design.netlist).unwrap();
    design.reset_sim(&mut sim).unwrap();
    let got = design
        .collect_emitted(&mut sim, seq.len(), max_ticks)
        .unwrap();
    assert_eq!(&got[..], seq.as_slice());
}

#[test]
#[ignore = "large configuration; run with --ignored"]
fn affine_256x256_chain_programming_replays() {
    // The full-size serial-programming path: a 256x256 raster program
    // shifted into a blank circuit bit by bit, then one full period.
    let shape = ArrayShape::new(256, 256);
    let seq = workloads::raster(shape);
    let fit = fit_sequence(seq.as_slice()).unwrap();
    let blank = AffineAgNetlist::elaborate(&AffineSpec::trivial(
        fit.spec.addr_width,
        fit.spec.cnt_width,
    ))
    .unwrap();
    let mut sim = Simulator::new(&blank.netlist).unwrap();
    blank.reset_sim(&mut sim).unwrap();
    blank.program(&mut sim, &fit.spec).unwrap();
    let max_ticks = 2 * fit.spec.program_ticks() + 8;
    let got = blank
        .collect_emitted(&mut sim, seq.len(), max_ticks)
        .unwrap();
    assert_eq!(&got[..], seq.as_slice());
}

#[test]
#[ignore = "large configuration; run with --ignored"]
fn full_period_verification_256x256() {
    // One complete 65 536-access period, gate level.
    let shape = ArrayShape::new(256, 256);
    let mb = 32;
    let seq = workloads::motion_est_read(shape, mb, mb, 0);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).unwrap();
    let design = pair.elaborate().unwrap();
    let mut sim = Simulator::new(&design.netlist).unwrap();
    sim.step_bools(&[true, false]).unwrap();
    for (i, &expected) in seq.iter().enumerate() {
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(expected), "step {i}");
    }
}
