//! Large-configuration stress tests. The default suite keeps the
//! 512×512/256×256 cases `#[ignore]`d to stay fast (run them with
//! `cargo test -- --ignored`, e.g. via `CI_SLOW=1 scripts/ci.sh`);
//! each has a bounded 64×64 twin below that always runs, so the same
//! code paths are exercised on every `cargo test`.

use adgen::prelude::*;

#[test]
fn srag_64x64_maps_elaborates_and_times() {
    // Bounded twin of `srag_512x512_maps_elaborates_and_times`.
    let shape = ArrayShape::new(64, 64);
    let seq = workloads::fifo(shape);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).unwrap();
    let design = pair.elaborate().unwrap();
    assert_eq!(design.row_lines.len(), 64);
    assert_eq!(design.col_lines.len(), 64);
    let lib = Library::vcl018();
    let t = TimingAnalysis::run(&design.netlist, &lib).unwrap();
    let a = AreaReport::of(&design.netlist, &lib);
    assert!(t.critical_path_ns() > 0.0);
    assert!(a.total() > 1_000.0);
    // Spot-check the first 500 cycles at gate level.
    let mut sim = Simulator::new(&design.netlist).unwrap();
    sim.step_bools(&[true, false]).unwrap();
    for (i, &expected) in seq.iter().take(500).enumerate() {
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(expected), "step {i}");
    }
}

#[test]
fn cntag_64x64_components() {
    // Bounded twin of `cntag_512x512_components`.
    use adgen::cntag::component_delays;
    let shape = ArrayShape::new(64, 64);
    let lib = Library::vcl018();
    let c = component_delays(&CntAgSpec::raster(shape), &lib).unwrap();
    assert!(c.row_decoder_ps > 0.0);
    assert!(c.total_ps() > c.counter_ps);
}

#[test]
fn full_period_verification_64x64() {
    // Bounded twin of `full_period_verification_256x256`: one
    // complete 4096-access period, gate level.
    let shape = ArrayShape::new(64, 64);
    let mb = 8;
    let seq = workloads::motion_est_read(shape, mb, mb, 0);
    assert_eq!(seq.len(), 4096);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).unwrap();
    let design = pair.elaborate().unwrap();
    let mut sim = Simulator::new(&design.netlist).unwrap();
    sim.step_bools(&[true, false]).unwrap();
    for (i, &expected) in seq.iter().enumerate() {
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(expected), "step {i}");
    }
}

#[test]
#[ignore = "large configuration; run with --ignored"]
fn srag_512x512_maps_elaborates_and_times() {
    let shape = ArrayShape::new(512, 512);
    let seq = workloads::fifo(shape);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).unwrap();
    let design = pair.elaborate().unwrap();
    assert_eq!(design.row_lines.len(), 512);
    assert_eq!(design.col_lines.len(), 512);
    let lib = Library::vcl018();
    let t = TimingAnalysis::run(&design.netlist, &lib).unwrap();
    let a = AreaReport::of(&design.netlist, &lib);
    assert!(t.critical_path_ns() > 0.0);
    assert!(a.total() > 20_000.0);
    // Spot-check the first 2000 cycles at gate level.
    let mut sim = Simulator::new(&design.netlist).unwrap();
    sim.step_bools(&[true, false]).unwrap();
    for (i, &expected) in seq.iter().take(2000).enumerate() {
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(expected), "step {i}");
    }
}

#[test]
#[ignore = "large configuration; run with --ignored"]
fn cntag_512x512_components() {
    use adgen::cntag::component_delays;
    let shape = ArrayShape::new(512, 512);
    let lib = Library::vcl018();
    let c = component_delays(&CntAgSpec::raster(shape), &lib).unwrap();
    assert!(c.row_decoder_ps > 0.0);
    assert!(c.total_ps() > c.counter_ps);
}

#[test]
#[ignore = "large configuration; run with --ignored"]
fn full_period_verification_256x256() {
    // One complete 65 536-access period, gate level.
    let shape = ArrayShape::new(256, 256);
    let mb = 32;
    let seq = workloads::motion_est_read(shape, mb, mb, 0);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).unwrap();
    let design = pair.elaborate().unwrap();
    let mut sim = Simulator::new(&design.netlist).unwrap();
    sim.step_bools(&[true, false]).unwrap();
    for (i, &expected) in seq.iter().enumerate() {
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(expected), "step {i}");
    }
}
