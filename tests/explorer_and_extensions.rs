//! Integration tests for the exploration layer and the extension
//! studies: architecture fallbacks on hard patterns, Verilog export
//! of real designs, power measurement plumbing, and the control
//! ablations.

use adgen::cntag::{ArithAgNetlist, ArithAgSpec};
use adgen::core::arch::ControlStyle;
use adgen::netlist::power::{measure_power_with_clock, ClockModel};
use adgen::netlist::verilog;
use adgen::prelude::*;

#[test]
fn serpentine_rejects_srag_but_keeps_fallbacks() {
    let lib = Library::vcl018();
    let shape = ArrayShape::new(8, 8);
    let seq = workloads::serpentine(shape);
    let options = EvaluateOptions {
        fsm_state_limit: 128,
        ..EvaluateOptions::default()
    };
    let eval = evaluate(&seq, shape, &lib, &options);
    // The SRAG cannot reverse its shift direction mid-pattern.
    assert!(
        eval.rejected.iter().any(|(a, _)| *a == Architecture::Srag),
        "SRAG should reject serpentine; got {:?}",
        eval.candidates
            .iter()
            .map(|c| c.architecture)
            .collect::<Vec<_>>()
    );
    // The FSM implements anything; the arithmetic generator handles
    // the periodic delta stream.
    assert!(eval
        .candidate(Architecture::SymbolicFsm(Encoding::Binary))
        .is_some());
    assert!(eval.candidate(Architecture::ArithAg).is_some());
}

#[test]
fn arithmetic_generator_round_trips_serpentine_at_gate_level() {
    let shape = ArrayShape::new(8, 4);
    let seq = workloads::serpentine(shape);
    let spec = ArithAgSpec::from_sequence(&seq, shape).unwrap();
    let design = ArithAgNetlist::elaborate(&spec).unwrap();
    let mut sim = Simulator::new(&design.netlist).unwrap();
    sim.step_bools(&[true, false]).unwrap();
    for (i, &expected) in seq.iter().enumerate() {
        sim.step_bools(&[false, true]).unwrap();
        assert_eq!(design.observed_address(&sim), Some(expected), "step {i}");
    }
}

#[test]
fn verilog_export_of_mapped_srag_is_structurally_sound() {
    let rows = AddressSequence::from_vec(vec![0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3]);
    let mapping = map_sequence(&rows).unwrap();
    let design = SragNetlist::elaborate(&mapping.spec).unwrap();
    let text = verilog::to_verilog(&design.netlist, true);
    // One top module plus one primitive per used cell kind; balanced
    // module/endmodule; every instance printed.
    assert_eq!(
        text.matches("\nmodule ").count(),
        text.matches("endmodule").count(),
        "balanced modules"
    );
    for i in 0..design.netlist.num_instances() {
        assert!(text.contains(&format!(" u{i} ")), "instance u{i} missing");
    }
    assert!(text.contains("input wire next"));
    assert!(text.contains("vcl018_dffse"));
}

#[test]
fn power_measurement_runs_on_every_architecture() {
    let lib = Library::vcl018();
    let shape = ArrayShape::new(8, 8);
    let seq = workloads::fifo(shape);
    let srag = Srag2d::map(&seq, shape, Layout::RowMajor)
        .unwrap()
        .elaborate()
        .unwrap();
    let cnt = CntAgNetlist::elaborate(&CntAgSpec::raster(shape)).unwrap();
    let arith =
        ArithAgNetlist::elaborate(&ArithAgSpec::from_sequence(&seq, shape).unwrap()).unwrap();
    for netlist in [&srag.netlist, &cnt.netlist, &arith.netlist] {
        for model in [ClockModel::FreeRunning, ClockModel::Gated] {
            let report = measure_power_with_clock(netlist, &lib, 100.0, 64, model, |_| {
                vec![Logic::Zero, Logic::One]
            })
            .unwrap();
            assert!(report.total_uw() > 0.0);
            assert!(report.toggles_per_cycle > 0.0);
        }
    }
}

#[test]
fn control_styles_and_chaining_preserve_the_sequence() {
    let shape = ArrayShape::new(8, 8);
    let seq = workloads::fifo(shape);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor).unwrap();
    let designs = [
        pair.elaborate_with_style(ControlStyle::BinaryCounters)
            .unwrap(),
        pair.elaborate_with_style(ControlStyle::RingCounters)
            .unwrap(),
        pair.elaborate_chained()
            .unwrap()
            .expect("fifo is chainable"),
    ];
    for (variant, design) in designs.iter().enumerate() {
        let mut sim = Simulator::new(&design.netlist).unwrap();
        sim.step_bools(&[true, false]).unwrap();
        for (i, &expected) in seq.iter().enumerate() {
            sim.step_bools(&[false, true]).unwrap();
            assert_eq!(
                design.observed_address(&sim),
                Some(expected),
                "variant {variant} step {i}"
            );
        }
    }
}

#[test]
fn explorer_puts_srag_on_the_frontier_for_paper_workloads() {
    let lib = Library::vcl018();
    let shape = ArrayShape::new(16, 16);
    for (name, seq, program) in [
        ("fifo", workloads::fifo(shape), CntAgSpec::raster(shape)),
        (
            "motion_est",
            workloads::motion_est_read(shape, 2, 2, 0),
            CntAgSpec::motion_est(shape, 2, 2, 0),
        ),
    ] {
        let options = EvaluateOptions {
            cntag_program: Some(program),
            ..EvaluateOptions::default()
        };
        let eval = evaluate(&seq, shape, &lib, &options);
        let frontier = pareto_frontier(&eval.candidates);
        assert!(
            frontier
                .iter()
                .any(|c| c.architecture == Architecture::Srag),
            "{name}: SRAG missing from frontier"
        );
        // Constraint-driven selection picks the SRAG when delay is
        // everything.
        let fastest = select(&eval.candidates, Constraint::MinDelay).unwrap();
        assert_eq!(fastest.architecture, Architecture::Srag, "{name}");
    }
}
