//! API-guideline conformance checks: common-trait availability,
//! `Send`/`Sync` markers on the data types users move across threads,
//! and error-type ergonomics.

use adgen::prelude::*;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
fn assert_clone_debug<T: Clone + std::fmt::Debug>() {}

#[test]
fn data_types_are_send_and_sync() {
    assert_send_sync::<AddressSequence>();
    assert_send_sync::<ArrayShape>();
    assert_send_sync::<Netlist>();
    assert_send_sync::<Library>();
    assert_send_sync::<SragSpec>();
    assert_send_sync::<CntAgSpec>();
    assert_send_sync::<ArithAgSpec>();
    assert_send_sync::<Addm>();
    assert_send_sync::<Ram>();
    assert_send_sync::<PowerReport>();
    assert_send_sync::<AreaReport>();
}

#[test]
fn error_types_are_well_behaved() {
    assert_error::<NetlistError>();
    assert_error::<SragError>();
    assert_error::<MemError>();
    assert_error::<adgen::synth::SynthError>();
    assert_error::<adgen::seq::SeqError>();
}

#[test]
fn specs_are_cloneable_and_debuggable() {
    assert_clone_debug::<SragSpec>();
    assert_clone_debug::<CntAgSpec>();
    assert_clone_debug::<ArithAgSpec>();
    assert_clone_debug::<Mapping>();
    assert_clone_debug::<Netlist>();
    assert_clone_debug::<ComparisonRow>();
}

#[test]
fn error_display_is_lowercase_without_trailing_punctuation() {
    let errors: Vec<Box<dyn std::error::Error>> = vec![
        Box::new(NetlistError::UndrivenNet { net: "x".into() }),
        Box::new(SragError::EmptySequence),
        Box::new(MemError::NoSelect),
        Box::new(adgen::seq::SeqError::EmptyGeometry { what: "w" }),
        Box::new(adgen::synth::SynthError::EmptyStateSpace),
    ];
    for e in errors {
        let msg = e.to_string();
        assert!(
            msg.chars().next().unwrap().is_lowercase(),
            "`{msg}` should start lowercase"
        );
        assert!(
            !msg.ends_with('.') && !msg.ends_with('!'),
            "`{msg}` should not end with punctuation"
        );
    }
}

#[test]
fn sequence_error_carries_useful_sources() {
    // From-conversions chain into SragError with source() intact.
    let seq_err = adgen::seq::SeqError::EmptyGeometry { what: "t" };
    let wrapped = SragError::from(seq_err);
    assert!(std::error::Error::source(&wrapped).is_some());
}

#[test]
fn default_constructors_match_new() {
    assert_eq!(AddressSequence::new(), AddressSequence::default());
    // Library::default is the vcl018 library.
    assert_eq!(Library::default().name(), Library::vcl018().name());
}
