#!/usr/bin/env bash
# Offline-safe CI gate for the adgen workspace.
#
# Runs the same checks the PR driver enforces:
#   1. formatting        (cargo fmt --check)
#   2. lints             (clippy, warnings are errors)
#   3. tier-1 build      (release, all targets)
#   4. tier-1 tests      (full workspace)
#   5. fuzz smoke        (fixed-seed differential fuzz, 200 cases)
#   6. fault smoke       (fixed-seed fault campaign, 4x4 array,
#                         full select-line stuck-at list)
#   7. fault sweep       (exhaustive 8x8 fault campaign — affordable
#                         by default now that replays are bit-sliced)
#   8. simbench smoke    (bit-sliced vs scalar fault replay on the
#                         4x4 universe; fails if the two engines
#                         classify any fault differently)
#   9. obs stage         (exporter goldens + jobs-invariance tests,
#                         then an overhead guard: the instrumented
#                         fuzz smoke must stay within 5% + 1s of the
#                         uninstrumented baseline)
#  10. serve smoke       (adgen-serve on an ephemeral loopback port,
#                         loadgen --smoke against it: warm-cache hit
#                         rate >= 90%, byte-identical warm responses,
#                         clean client-initiated shutdown)
#  11. overload smoke    (loadgen --overload against BOTH reactor
#                         backends — epoll and threaded — with a
#                         2-slot admission queue: every response must
#                         be a result or a typed queue-full shed, and
#                         the warm pass must still hit >= 90%; then a
#                         schema check of the new BENCH_serve.json
#                         fields)
#  12. chaos smoke       (chaoscamp --smoke on both backends: servers
#                         killed at disk-tier fault-plan kill points
#                         and disk entries corrupted offline; every
#                         restart must serve byte-identical payloads,
#                         quarantine the damage, and re-warm to full
#                         hit rate; then a BENCH_chaos.json schema
#                         check)
#  13. affine stage      (adgen-affine unit/property tests, an
#                         affine-vs-reference differential fuzz smoke,
#                         and explore4 --smoke: the four-way
#                         FSM/SRAG/CntAG/affine comparison whose
#                         bit-exactness gate must pass on every
#                         workload; then a BENCH_explore.json schema
#                         check)
#  14. bank stage        (adgen-bank unit tests, a bank-vs-reference
#                         differential fuzz smoke, and bankcamp
#                         --smoke: the QPP interleaver must schedule
#                         conflict-free across 4 banks with the
#                         decompose-picked generators strictly
#                         cheaper than monolithic per-bank FSMs; then
#                         a BENCH_bank.json schema check)
#
# Set CI_SLOW=1 to additionally run the #[ignore]d large
# configurations (512x512 / 256x256 scale tests), the full-size
# simbench run with its 8x speedup contract, a 1000-connection
# overload run against the reactor, and the full-size 8-bank
# interleaver campaign.
#
# The workspace has zero external dependencies, so every step works
# without network access. Run from anywhere inside the repo.

set -euo pipefail
cd "$(dirname "$0")/.."

# check_schema FILE FIELD... — every per-stage BENCH_*.json record
# must carry the fields its consumers key on.
check_schema() {
  local file="$1"
  shift
  local field
  for field in "$@"; do
    grep -q "\"$field\"" "$file" || {
      echo "FAIL: $file is missing \"$field\"" >&2
      exit 1
    }
  done
}

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace --all-targets

echo "==> cargo test"
cargo test --workspace -q

echo "==> fuzz smoke (fixed seed, deterministic)"
cargo run --release -p adgen-fuzz -- --iters 200 --seed 1

echo "==> fault-campaign smoke (fixed seed, 4x4, full select-line fault list)"
cargo run --release -p adgen-bench --bin faultcamp -- --smoke --seed 2026

echo "==> exhaustive 8x8 fault campaign (bit-sliced replay)"
cargo run --release -p adgen-bench --bin faultcamp -- --seed 2026

echo "==> simbench smoke (sliced vs scalar classification agreement)"
cargo run --release -p adgen-bench --bin simbench -- --smoke --seed 2026

echo "==> obs: exporter goldens + jobs-invariance + trace schema"
cargo test --release -q -p adgen-obs
cargo test --release -q -p adgen-bench --test trace_schema
cargo test --release -q --test golden_obs

echo "==> obs: instrumentation overhead guard (<5% + 1s on the fuzz smoke)"
fuzz_bin="target/release/fuzz"
now_ns() { date +%s%N; }
t0=$(now_ns)
"$fuzz_bin" --iters 200 --seed 1 > /dev/null
base_ns=$(( $(now_ns) - t0 ))
t0=$(now_ns)
"$fuzz_bin" --iters 200 --seed 1 --metrics > /dev/null
obs_ns=$(( $(now_ns) - t0 ))
limit_ns=$(( base_ns + base_ns / 20 + 1000000000 ))
echo "    baseline ${base_ns}ns, instrumented ${obs_ns}ns, limit ${limit_ns}ns"
if (( obs_ns > limit_ns )); then
  echo "FAIL: instrumented fuzz smoke exceeded the overhead budget" >&2
  exit 1
fi

echo "==> serve smoke (ephemeral loopback server + loadgen --smoke)"
serve_cache="$(mktemp -d)"
serve_log="$(mktemp)"
target/release/adgen-serve --cache-dir "$serve_cache" > "$serve_log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^adgen-serve listening on //p' "$serve_log")"
  [[ -n "$addr" ]] && break
  sleep 0.1
done
if [[ -z "$addr" ]]; then
  echo "FAIL: adgen-serve never reported readiness" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
# loadgen exits nonzero unless every warm pass hits >= 90% and warm
# responses byte-match the cold ones; --shutdown then asks the server
# to exit, which `wait` turns into a clean-shutdown assertion.
target/release/loadgen --smoke --addr "$addr" --shutdown
wait "$serve_pid"
grep -q "adgen-serve shut down:" "$serve_log" || {
  echo "FAIL: server exited without its shutdown summary" >&2
  exit 1
}
rm -rf "$serve_cache" "$serve_log"

echo "==> overload smoke (typed shedding on both reactor backends)"
for backend in epoll threaded; do
  echo "    --reactor $backend"
  target/release/loadgen --smoke --conns 32 --queue-cap 2 --overload \
    --reactor "$backend"
done
# Schema check: the bench record carries the new latency/overload
# fields consumers key on.
check_schema BENCH_serve.json p999_ms shed overload conns

echo "==> chaos smoke (kill-point crashes + offline corruption, both backends)"
# chaoscamp spawns its own adgen-serve per scenario, kills it at
# fault-plan kill points, corrupts disk entries between runs, and
# exits nonzero unless every restart serves byte-identical payloads,
# re-enforces the disk bound, and quarantines every mutation.
for backend in epoll threaded; do
  echo "    --reactor $backend"
  target/release/chaoscamp --smoke --reactor "$backend"
done
check_schema BENCH_chaos.json scenarios classification corrupt_quarantined recovered failures

echo "==> affine: mapper property tests"
cargo test --release -q -p adgen-affine

echo "==> affine: affine-vs-reference differential fuzz smoke"
# Seed 11 draws ~20 affine-vs-reference cases in 400; the family's
# deterministic anchors also run as part of the adgen-fuzz unit tests.
cargo run --release -p adgen-fuzz -- --iters 400 --seed 11

echo "==> affine: four-way comparison smoke (bit-exactness gate)"
target/release/explore4 --smoke --seed 2026
check_schema BENCH_explore.json affine_fit bit_exact_three_engines program_flip_flops \
  fault_coverage_pct

echo "==> bank: multi-bank ADDM + decompose unit tests"
cargo test --release -q -p adgen-bank

echo "==> bank: bank-vs-reference differential fuzz smoke"
# Seed 17 draws 12 bank-vs-reference cases in 400 (plus the rest of
# the matrix); the family's deterministic anchors also run in the
# adgen-bank unit tests.
cargo run --release -p adgen-fuzz -- --iters 400 --seed 17

echo "==> bank: banked interleaver campaign smoke (conflict-free + decompose-win gates)"
target/release/bankcamp --smoke --seed 2026
check_schema BENCH_bank.json banks window conflict_free conflict_rate stall_cycles \
  decomposed_area monolithic_area decompose_win_pct choice

if [[ "${CI_SLOW:-0}" == "1" ]]; then
  echo "==> slow tier: ignored scale tests"
  cargo test --workspace --release -q -- --ignored
  echo "==> slow tier: full-size simbench (8x speedup contract)"
  cargo run --release -p adgen-bench --bin simbench -- --seed 2026
  echo "==> slow tier: 1000-connection overload run"
  target/release/loadgen --conns 1000 --overload
  echo "==> slow tier: full chaos campaign (every kill site, every mutation)"
  target/release/chaoscamp
  echo "==> slow tier: full-size banked interleaver campaign (256 addresses, 8 banks)"
  target/release/bankcamp --seed 2026
fi

echo "==> CI OK"
