#!/usr/bin/env bash
# Offline-safe CI gate for the adgen workspace.
#
# Runs the same checks the PR driver enforces:
#   1. formatting        (cargo fmt --check)
#   2. lints             (clippy, warnings are errors)
#   3. tier-1 build      (release, all targets)
#   4. tier-1 tests      (full workspace)
#   5. fuzz smoke        (fixed-seed differential fuzz, 200 cases)
#   6. fault smoke       (fixed-seed fault campaign, 4x4 array,
#                         full select-line stuck-at list)
#
# Set CI_SLOW=1 to additionally run the #[ignore]d large
# configurations (512x512 / 256x256 scale tests) and the exhaustive
# 8x8 fault-campaign sweep.
#
# The workspace has zero external dependencies, so every step works
# without network access. Run from anywhere inside the repo.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace --all-targets

echo "==> cargo test"
cargo test --workspace -q

echo "==> fuzz smoke (fixed seed, deterministic)"
cargo run --release -p adgen-fuzz -- --iters 200 --seed 1

echo "==> fault-campaign smoke (fixed seed, 4x4, full select-line fault list)"
cargo run --release -p adgen-bench --bin faultcamp -- --smoke --seed 2026

if [[ "${CI_SLOW:-0}" == "1" ]]; then
  echo "==> slow tier: ignored scale tests"
  cargo test --workspace --release -q -- --ignored
  echo "==> slow tier: exhaustive 8x8 fault campaign"
  cargo run --release -p adgen-bench --bin faultcamp -- --seed 2026
fi

echo "==> CI OK"
