//! # adgen — address-generator synthesis for decoder-decoupled memory
//!
//! A from-scratch reproduction of *“Performance-Area Trade-Off of
//! Address Generators for Address Decoder-Decoupled Memory”*
//! (S. Hettiaratchi, P. Y. K. Cheung, T. J. W. Clarke; DATE 2002),
//! including every substrate the paper relies on: a standard-cell
//! library with static timing and area models, a two-level logic
//! minimizer and FSM synthesizer, the paper's SRAG architecture and
//! automatic mapping procedure, the counter-plus-decoder baseline,
//! behavioural memory models, and a design-space explorer.
//!
//! This crate is the facade: it re-exports each subsystem under a
//! short module name and offers a [`prelude`] for the common types.
//!
//! ## Quick start
//!
//! Map the paper's running example onto an SRAG and verify it at
//! gate level:
//!
//! ```
//! use adgen::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The motion-estimation read sequence of paper Table 1.
//! let shape = ArrayShape::new(4, 4);
//! let sequence = workloads::motion_est_read(shape, 2, 2, 0);
//!
//! // Map row and column streams onto the two-hot SRAG pair.
//! let pair = Srag2d::map(&sequence, shape, Layout::RowMajor)?;
//! assert_eq!(pair.row().spec.div_count, 2); // paper Table 2: dC = 2
//! assert_eq!(pair.row().spec.pass_count, 4); // paper Table 2: pC = 4
//!
//! // Elaborate to gates and measure.
//! let design = pair.elaborate()?;
//! let library = Library::vcl018();
//! let timing = TimingAnalysis::run(&design.netlist, &library)?;
//! let area = AreaReport::of(&design.netlist, &library);
//! assert!(timing.critical_path_ns() > 0.0);
//! assert!(area.total() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Subsystem map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`affine`] | `adgen-affine` | runtime-programmable 2-deep affine AGU: spec + behavioural model, sequence-to-parameter mapper with FSM residuals, structural elaboration |
//! | [`netlist`] | `adgen-netlist` | netlist IR, `vcl018` library (+Liberty), STA, levelized & event-driven simulators, equivalence, power, VCD/Verilog/DOT |
//! | [`synth`] | `adgen-synth` | espresso (+PLA), FSM synthesis, counters/rings/decoders/adders/ROMs |
//! | [`seq`] | `adgen-seq` | sequences, regularity analysis, workloads, loop nests, trace I/O |
//! | [`core`] | `adgen-core` | SRAG: mapper, simulator, elaboration, control styles, chaining, time-sharing |
//! | [`cntag`] | `adgen-cntag` | counter/arithmetic/ROM baselines, loop-nest compiler |
//! | [`memory`] | `adgen-memory` | ADDM / RAM models, behavioural & gate-level co-simulation |
//! | [`bank`] | `adgen-bank` | multi-bank ADDM, interleaver workloads, conflict-aware window scheduling, address-map decomposition + per-bank pricing |
//! | [`explorer`] | `adgen-explorer` | candidates, Pareto, selection, reports, power & resilience comparisons |
//! | [`fault`] | `adgen-fault` | stuck-at / SEU fault models, deterministic injection campaigns, coverage classification |
//! | [`exec`] | `adgen-exec` | scoped thread pool with deterministic ordering, seedable PRNG |
//! | [`obs`] | `adgen-obs` | zero-dep observability: spans, typed counters, Chrome-trace and profile exporters |
//! | [`serve`] | `adgen-serve` | batch compilation service: binary wire protocol, admission queue with deadlines, two-tier content-addressed result cache |

pub use adgen_affine as affine;
pub use adgen_bank as bank;
pub use adgen_cntag as cntag;
pub use adgen_core as core;
pub use adgen_exec as exec;
pub use adgen_explorer as explorer;
pub use adgen_fault as fault;
pub use adgen_memory as memory;
pub use adgen_netlist as netlist;
pub use adgen_obs as obs;
pub use adgen_seq as seq;
pub use adgen_serve as serve;
pub use adgen_synth as synth;

/// The types most programs need, in one import.
pub mod prelude {
    pub use adgen_affine::{fit_sequence, AffineAgNetlist, AffineFit, AffineSimulator, AffineSpec};
    pub use adgen_bank::{BankMap, BankedAddm, Decomposition, Interleaver};
    pub use adgen_cntag::{
        compile_loop_nest, ArithAgNetlist, ArithAgSimulator, ArithAgSpec, CntAgNetlist,
        CntAgSimulator, CntAgSpec,
    };
    pub use adgen_core::arch::ControlStyle;
    pub use adgen_core::composite::{Srag2d, Srag2dSimulator};
    pub use adgen_core::mapper::{map_sequence, Mapping};
    pub use adgen_core::multi_counter::map_sequence_relaxed;
    pub use adgen_core::shared::TimeSharedSragNetlist;
    pub use adgen_core::{HardenedSragNetlist, SragError, SragNetlist, SragSimulator, SragSpec};
    pub use adgen_explorer::{
        compare_power, compare_resilience, compare_srag_cntag, evaluate, pareto_frontier, select,
        Architecture, ComparisonRow, Constraint, EvaluateOptions, ResilienceRow,
    };
    pub use adgen_fault::{
        enumerate_stuck_at, run_campaign, CampaignReport, CampaignSpec, Classification, Fault,
    };
    pub use adgen_memory::{Addm, MemError, Ram};
    pub use adgen_netlist::{
        measure_power, to_verilog, AreaReport, CellKind, Library, Logic, Netlist, NetlistError,
        PowerReport, Simulator, TimingAnalysis,
    };
    pub use adgen_seq::{
        workloads, AddressGenerator, AddressSequence, ArrayShape, Layout, ReplayGenerator,
    };
    pub use adgen_synth::{Encoding, Fsm, OutputStyle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_names_resolve() {
        use crate::prelude::*;
        let shape = ArrayShape::new(4, 4);
        let seq = workloads::fifo(shape);
        assert_eq!(seq.len(), 16);
        let _lib = Library::vcl018();
    }
}
