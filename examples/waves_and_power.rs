//! Observability tour: record a VCD waveform of the SRAG token
//! marching through its select lines, and measure switching power of
//! the SRAG against the conventional generator under both clock
//! models — the paper's deferred §7 power study, runnable in one
//! command.
//!
//! Run with: `cargo run --example waves_and_power`
//! The waveform lands in `results/srag_token.vcd` (open in GTKWave).

use adgen::netlist::vcd::VcdTrace;
use adgen::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = ArrayShape::new(8, 8);
    let seq = workloads::motion_est_read(shape, 2, 2, 0);
    let pair = Srag2d::map(&seq, shape, Layout::RowMajor)?;
    let design = pair.elaborate()?;

    // 1. Waveform: two full periods of the token walk.
    let mut sim = Simulator::new(&design.netlist)?;
    let mut trace = VcdTrace::new(&design.netlist);
    sim.step_bools(&[true, false])?;
    trace.sample(&sim);
    for _ in 0..2 * seq.len() {
        sim.step_bools(&[false, true])?;
        trace.sample(&sim);
    }
    std::fs::create_dir_all("results")?;
    let path = "results/srag_token.vcd";
    std::fs::write(path, trace.finish())?;
    println!(
        "wrote {path} ({} cycles, {} signals)",
        2 * seq.len() + 1,
        design.netlist.nets().len()
    );

    // 2. Power: the §7 study on this workload.
    let library = Library::vcl018();
    let row = compare_power(
        &seq,
        shape,
        &CntAgSpec::motion_est(shape, 2, 2, 0),
        &library,
        100.0,
        512,
    )?;
    println!("\npower at 100 MHz over 512 streaming accesses:");
    println!(
        "  SRAG : {:>6.1} µW total ({:>5.1} switching + {:>5.1} clock)",
        row.srag.total_uw(),
        row.srag.dynamic_uw,
        row.srag.clock_uw
    );
    println!(
        "  CntAG: {:>6.1} µW total ({:>5.1} switching + {:>5.1} clock)",
        row.cntag.total_uw(),
        row.cntag.dynamic_uw,
        row.cntag.clock_uw
    );
    println!(
        "  factor (CntAG/SRAG): {:.2} free-running, {:.2} with enable-gated clocks",
        row.power_reduction_factor(),
        row.gated_power_reduction_factor()
    );
    if row.srag.dynamic_uw < row.cntag.dynamic_uw {
        println!(
            "  → the decoder-switching saving shows ({:.1} vs {:.1} µW switching), but the",
            row.srag.dynamic_uw, row.cntag.dynamic_uw
        );
        println!("    SRAG's H+W flip-flop clock load dominates its total.");
    } else {
        println!(
            "  → at this small array even the switching term favours the CntAG ({:.1} vs {:.1} µW):",
            row.cntag.dynamic_uw, row.srag.dynamic_uw
        );
        println!("    its decoders are tiny while the SRAG's enable tree toggles every cycle.");
    }
    println!("    See EXPERIMENTS.md for the full study across sizes and workloads.");
    Ok(())
}
