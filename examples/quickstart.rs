//! Quick start: reproduce the paper's running example end to end.
//!
//! Builds the `new_img` read sequence of the block-matching motion
//! estimation kernel (paper Table 1), maps its row and column streams
//! onto the two-hot SRAG (paper Table 2), elaborates the generator to
//! gates, verifies it cycle by cycle against the behavioural model,
//! and reports delay and area.
//!
//! Run with: `cargo run --example quickstart`

use adgen::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Paper Table 1: img 4x4, macroblock 2x2, search range m = 0.
    let shape = ArrayShape::new(4, 4);
    let linear = workloads::motion_est_read(shape, 2, 2, 0);
    let (rows, cols) = linear.decompose(shape, Layout::RowMajor)?;
    println!("LinAS = {linear}");
    println!("RowAS = {rows}");
    println!("ColAS = {cols}");

    // Paper Table 2: the automatic mapping procedure on the row
    // stream.
    let mapping = map_sequence(&rows)?;
    println!("\nMapping parameters (paper Table 2):");
    println!("  D  = {:?}", mapping.division_counts);
    println!("  R  = {}", mapping.reduced);
    println!("  U  = {:?}", mapping.unique);
    println!("  O  = {:?}", mapping.occurrences);
    println!("  Z  = {:?}", mapping.first_positions);
    println!("  S  = {}", mapping.spec);
    println!("  dC = {}", mapping.spec.div_count);
    println!("  pC = {}", mapping.spec.pass_count);

    // Elaborate the full two-hot pair and verify at gate level.
    let pair = Srag2d::map(&linear, shape, Layout::RowMajor)?;
    let design = pair.elaborate()?;
    let mut sim = Simulator::new(&design.netlist)?;
    sim.step_bools(&[true, false])?; // assert reset for one cycle
    for (step, &expected) in linear.iter().enumerate() {
        sim.step_bools(&[false, true])?;
        let got = design.observed_address(&sim);
        assert_eq!(got, Some(expected), "gate-level mismatch at step {step}");
    }
    println!("\ngate-level SRAG reproduces all {} accesses", linear.len());

    // Measure.
    let library = Library::vcl018();
    let timing = TimingAnalysis::run(&design.netlist, &library)?;
    let area = AreaReport::of(&design.netlist, &library);
    println!(
        "SRAG pair: delay {:.3} ns, area {:.0} cell units, {} flip-flops",
        timing.critical_path_ns(),
        area.total(),
        design.netlist.num_flip_flops()
    );
    Ok(())
}
