//! Design-space exploration across architectures — the paper's
//! stated "final goal" (§7): pick the best address generator for a
//! given access pattern under delay/area constraints.
//!
//! For each paper workload the explorer evaluates the SRAG, the
//! multi-counter SRAG, the counter-plus-decoder baseline and a
//! symbolic FSM, prints the measured candidates, the Pareto frontier,
//! and constraint-driven selections.
//!
//! Run with: `cargo run --example design_space`

use adgen::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = Library::vcl018();
    let shape = ArrayShape::new(16, 16);

    let cases: Vec<(&str, AddressSequence, CntAgSpec)> = vec![
        ("fifo", workloads::fifo(shape), CntAgSpec::raster(shape)),
        (
            "motion_est",
            workloads::motion_est_read(shape, 4, 4, 0),
            CntAgSpec::motion_est(shape, 4, 4, 0),
        ),
        (
            "dct",
            workloads::transpose_scan(shape),
            CntAgSpec::transpose(shape),
        ),
        (
            "zoombytwo",
            workloads::zoom_by_two(shape),
            CntAgSpec::zoom_by_two(shape),
        ),
    ];

    for (name, sequence, program) in cases {
        println!("== workload `{name}` ({} accesses) ==", sequence.len());
        let options = EvaluateOptions {
            cntag_program: Some(program),
            fsm_state_limit: 300,
            ..EvaluateOptions::default()
        };
        let eval = evaluate(&sequence, shape, &library, &options);
        for c in &eval.candidates {
            println!(
                "  {:<12} {:>8.3} ns {:>9.0} units {:>5} FFs",
                c.architecture.to_string(),
                c.delay_ps / 1000.0,
                c.area,
                c.flip_flops
            );
        }
        for (arch, reason) in &eval.rejected {
            println!("  {arch:<12} rejected: {reason}");
        }
        let front = pareto_frontier(&eval.candidates);
        println!(
            "  pareto frontier: {}",
            front
                .iter()
                .map(|c| c.architecture.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        if let Some(best) = select(&eval.candidates, Constraint::MinDelay) {
            println!("  fastest: {}", best.architecture);
        }
        if let Some(best) = select(&eval.candidates, Constraint::MinArea) {
            println!("  smallest: {}", best.architecture);
        }
        // A mid-range area budget: half way between the extremes.
        let areas: Vec<f64> = eval.candidates.iter().map(|c| c.area).collect();
        if let (Some(&min), Some(&max)) = (
            areas.iter().min_by(|a, b| a.total_cmp(b)),
            areas.iter().max_by(|a, b| a.total_cmp(b)),
        ) {
            let budget = (min + max) / 2.0;
            match select(&eval.candidates, Constraint::MinDelayUnderArea(budget)) {
                Some(best) => println!(
                    "  fastest within {budget:.0} cell units: {}",
                    best.architecture
                ),
                None => println!("  nothing fits within {budget:.0} cell units"),
            }
        }
        println!();
    }
    Ok(())
}
