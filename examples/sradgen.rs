//! `sradgen` — a command-line reimplementation of the paper's SRAdGen
//! tool (§5): "The tool accepts a sequence of one-dimensional
//! addresses and, if mapping is successful, produces synthesizable
//! [structural] code describing the corresponding SRAG."
//!
//! Usage:
//!
//! ```text
//! cargo run --example sradgen -- 0,0,1,1,0,0,1,1,2,2,3,3,2,2,3,3
//! cargo run --example sradgen -- --relaxed 5,5,5,1,1,4,4,0,0
//! cargo run --example sradgen -- --dot 0,1,2,3
//! cargo run --example sradgen -- --verilog 0,1,2,3
//! cargo run --example sradgen -- --explore @trace.txt   # read a trace file
//! ```
//!
//! On success it prints the mapping report (the paper's Table 2
//! parameter sets), a netlist summary with delay/area on `vcl018`,
//! and optionally the netlist as Graphviz DOT (`--dot`) or
//! self-contained structural Verilog (`--verilog`), standing in for
//! the original tool's synthesizable VHDL output. On failure it
//! explains which SRAG restriction the sequence violates.

use adgen::core::multi_counter::{map_sequence_relaxed, MultiCounterSragNetlist};
use adgen::explorer::render_evaluation;
use adgen::netlist::{dot, verilog};
use adgen::prelude::*;
use adgen::seq::io::parse_trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut relaxed = false;
    let mut emit_dot = false;
    let mut emit_verilog = false;
    let mut explore = false;
    let mut sequence_text = None;
    for a in &args {
        match a.as_str() {
            "--relaxed" => relaxed = true,
            "--dot" => emit_dot = true,
            "--verilog" => emit_verilog = true,
            "--explore" => explore = true,
            other => sequence_text = Some(other.to_string()),
        }
    }
    let Some(text) = sequence_text else {
        eprintln!(
            "usage: sradgen [--relaxed] [--dot] [--verilog] [--explore] <addresses | @tracefile>"
        );
        eprintln!("example: sradgen 0,0,1,1,0,0,1,1,2,2,3,3,2,2,3,3");
        eprintln!("example: sradgen --explore @trace.txt");
        std::process::exit(2);
    };
    let sequence = if let Some(path) = text.strip_prefix('@') {
        parse_trace(&std::fs::read_to_string(path)?)?
    } else {
        let addresses: Vec<u32> = text
            .split(',')
            .map(|t| t.trim().parse())
            .collect::<Result<_, _>>()?;
        AddressSequence::from_vec(addresses)
    };
    println!("input sequence ({} elements): {sequence}", sequence.len());

    let library = Library::vcl018();
    if explore {
        // Square power-of-two array just large enough for the
        // sequence.
        let max = sequence.max_address().unwrap_or(0);
        let mut edge = 2u32;
        while u64::from(edge) * u64::from(edge) <= u64::from(max) {
            edge *= 2;
        }
        let shape = ArrayShape::new(edge, edge);
        println!("exploring over a {edge}x{edge} array:");
        let eval = evaluate(
            &sequence,
            shape,
            &library,
            &EvaluateOptions {
                fsm_state_limit: 128,
                ..EvaluateOptions::default()
            },
        );
        print!("{}", render_evaluation(&sequence, &eval));
        return Ok(());
    }
    if relaxed {
        match map_sequence_relaxed(&sequence) {
            Ok(spec) => {
                println!("mapped onto a multi-counter SRAG:");
                println!(
                    "  registers   = {:?}",
                    spec.registers
                        .iter()
                        .map(|r| r.lines().to_vec())
                        .collect::<Vec<_>>()
                );
                println!("  div counts  = {:?}", spec.div_counts);
                println!("  pass counts = {:?}", spec.pass_counts);
                let design = MultiCounterSragNetlist::elaborate(&spec)?;
                summarize(&design.netlist, &library)?;
                if emit_dot {
                    println!("{}", dot::to_dot(&design.netlist));
                }
                if emit_verilog {
                    println!("{}", verilog::to_verilog(&design.netlist, true));
                }
            }
            Err(e) => {
                println!("mapping failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match map_sequence(&sequence) {
            Ok(mapping) => {
                println!("mapped onto an SRAG:");
                println!("  D  = {:?}", mapping.division_counts);
                println!("  R  = {}", mapping.reduced);
                println!("  U  = {:?}", mapping.unique);
                println!("  O  = {:?}", mapping.occurrences);
                println!("  Z  = {:?}", mapping.first_positions);
                println!("  P  = {:?}", mapping.pass_counts);
                println!("  S  = {}", mapping.spec);
                let design = SragNetlist::elaborate(&mapping.spec)?;
                summarize(&design.netlist, &library)?;
                if emit_dot {
                    println!("{}", dot::to_dot(&design.netlist));
                }
                if emit_verilog {
                    println!("{}", verilog::to_verilog(&design.netlist, true));
                }
            }
            Err(e) => {
                println!("mapping failed: {e}");
                println!(
                    "hint: retry with --relaxed to allow per-address and per-register counters"
                );
                std::process::exit(1);
            }
        }
    }
    Ok(())
}

fn summarize(netlist: &Netlist, library: &Library) -> Result<(), Box<dyn std::error::Error>> {
    let timing = TimingAnalysis::run(netlist, library)?;
    let area = AreaReport::of(netlist, library);
    println!(
        "netlist `{}`: {} instances ({} flip-flops), delay {:.3} ns, area {:.0} cell units",
        netlist.name(),
        netlist.num_instances(),
        netlist.num_flip_flops(),
        timing.critical_path_ns(),
        area.total()
    );
    Ok(())
}
