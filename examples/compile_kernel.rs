//! From source kernel to silicon, automatically: write the loop nest
//! of paper Fig. 7 once, then derive *everything* from it — the
//! address trace, the two-hot SRAG (via the mapping procedure), the
//! conventional counter program (via the loop-nest compiler) — and
//! cross-verify all three implementations cycle by cycle. Finally,
//! export the SRAG as structural Verilog, as the paper's SRAdGen tool
//! exported VHDL.
//!
//! Run with: `cargo run --example compile_kernel`

use adgen::cntag::compile_loop_nest;
use adgen::netlist::verilog;
use adgen::prelude::*;
use adgen::seq::{AffineIndex, LoopNest, LoopVar};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The kernel: for g, h, k, l { access new_img[g*MB+k][h*MB+l] }.
    let shape = ArrayShape::new(16, 16);
    let mb = 4i64;
    let w = i64::from(shape.width());
    let h = i64::from(shape.height());
    let nest = LoopNest::new(vec![
        LoopVar::new("g", 0, h / mb),
        LoopVar::new("h", 0, w / mb),
        LoopVar::new("k", 0, mb),
        LoopVar::new("l", 0, mb),
    ]);
    let row_expr = AffineIndex::new(&[("g", mb), ("k", 1)], 0);
    let col_expr = AffineIndex::new(&[("h", mb), ("l", 1)], 0);
    let linear_expr = AffineIndex::new(&[("g", mb * w), ("k", w), ("h", mb), ("l", 1)], 0);

    // 1. Trace the kernel.
    let trace = nest.trace(&linear_expr)?;
    println!(
        "kernel traces {} accesses over a {}x{} array",
        trace.len(),
        shape.width(),
        shape.height()
    );

    // 2. Map the trace onto the two-hot SRAG.
    let pair = Srag2d::map(&trace, shape, Layout::RowMajor)?;
    let srag = pair.elaborate()?;
    println!(
        "SRAG pair mapped: row dC={} pC={}, col dC={} pC={} ({} flip-flops)",
        pair.row().spec.div_count,
        pair.row().spec.pass_count,
        pair.col().spec.div_count,
        pair.col().spec.pass_count,
        srag.netlist.num_flip_flops()
    );

    // 3. Compile the loop nest into the conventional counter program.
    let program = compile_loop_nest(&nest, &row_expr, &col_expr, shape)?;
    let cntag = CntAgNetlist::elaborate(&program)?;
    println!(
        "counter program compiled: {} stages, {} state bits",
        program.stages.len(),
        program.num_state_bits()
    );

    // 4. Cross-verify the three implementations cycle by cycle.
    let mut srag_sim = Simulator::new(&srag.netlist)?;
    let mut cnt_sim = Simulator::new(&cntag.netlist)?;
    srag_sim.step_bools(&[true, false])?;
    cnt_sim.step_bools(&[true, false])?;
    for (step, &expected) in trace.iter().enumerate() {
        srag_sim.step_bools(&[false, true])?;
        cnt_sim.step_bools(&[false, true])?;
        let s = srag.observed_address(&srag_sim);
        let c = cntag.observed_address(&cnt_sim);
        assert_eq!(s, Some(expected), "SRAG diverged at step {step}");
        assert_eq!(c, Some(expected), "CntAG diverged at step {step}");
    }
    println!("trace, SRAG netlist and compiled CntAG netlist all agree");

    // 5. Measure and export.
    let library = Library::vcl018();
    for (name, netlist) in [("SRAG", &srag.netlist), ("CntAG", &cntag.netlist)] {
        let t = TimingAnalysis::run(netlist, &library)?;
        let a = AreaReport::of(netlist, &library);
        println!(
            "  {name:<6} {:.3} ns, {:.0} cell units",
            t.critical_path_ns(),
            a.total()
        );
    }
    let text = verilog::to_verilog(&srag.netlist, false);
    println!(
        "Verilog export: {} lines (use --verilog on the sradgen example for full output)",
        text.lines().count()
    );
    Ok(())
}
