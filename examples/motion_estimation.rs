//! The paper's motivating workload at realistic scale: a frame is
//! produced into the `new_img` buffer in raster order and consumed in
//! block-matching order, with the address generators driving an
//! address decoder-decoupled memory.
//!
//! The example co-simulates the SRAG pair against the ADDM cell-array
//! model (checking the two-hot select discipline on every access and
//! the integrity of every transferred pixel), then compares the SRAG
//! against the conventional counter-plus-decoder generator on delay
//! and area, as in paper Figs. 8 and 10.
//!
//! Run with: `cargo run --example motion_estimation`

use adgen::explorer::compare_srag_cntag;
use adgen::memory::cosim;
use adgen::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = ArrayShape::new(64, 64);
    let mb = 8;
    println!(
        "frame {}x{}, macroblock {mb}x{mb}",
        shape.width(),
        shape.height()
    );

    // Address streams: raster production, block-matching consumption.
    let write_seq = workloads::motion_est_write(shape);
    let read_seq = workloads::motion_est_read(shape, mb, mb, 0);

    // Map both onto two-hot SRAG pairs.
    let writer_pair = Srag2d::map(&write_seq, shape, Layout::RowMajor)?;
    let reader_pair = Srag2d::map(&read_seq, shape, Layout::RowMajor)?;
    println!(
        "writer SRAG: row dC={} pC={}, col dC={} pC={}",
        writer_pair.row().spec.div_count,
        writer_pair.row().spec.pass_count,
        writer_pair.col().spec.div_count,
        writer_pair.col().spec.pass_count,
    );
    println!(
        "reader SRAG: row dC={} pC={}, col dC={} pC={}",
        reader_pair.row().spec.div_count,
        reader_pair.row().spec.pass_count,
        reader_pair.col().spec.div_count,
        reader_pair.col().spec.pass_count,
    );

    // A synthetic frame: pixel value = linear address ^ 0xA5.
    let frame: Vec<u64> = (0..shape.capacity() as u64).map(|a| a ^ 0xA5).collect();

    // Drive the decoder-decoupled array end to end. Every access is
    // checked for the two-hot safety discipline; every pixel read in
    // block order must match what raster order wrote.
    let mut writer = writer_pair.simulator();
    let mut reader = reader_pair.simulator();
    let report = cosim::run_addm(&mut writer, &mut reader, shape, &frame, read_seq.len())?;
    println!(
        "co-simulation: {} writes, {} checked reads — no select hazard, no corruption",
        report.writes, report.reads
    );

    // Performance-area comparison against the counter-based baseline.
    let library = Library::vcl018();
    let program = CntAgSpec::motion_est(shape, mb, mb, 0);
    let row = compare_srag_cntag(&read_seq, shape, &program, &library)?;
    println!("\nread-side generators on vcl018:");
    println!(
        "  SRAG : {:.3} ns, {:>8.0} cell units, {} flip-flops",
        row.srag_delay_ps / 1000.0,
        row.srag_area,
        row.srag_flip_flops
    );
    println!(
        "  CntAG: {:.3} ns, {:>8.0} cell units, {} flip-flops",
        row.cntag_delay_ps / 1000.0,
        row.cntag_area,
        row.cntag_flip_flops
    );
    println!(
        "  delay reduction {:.2}x at area increase {:.2}x (paper: ~1.8x / ~3.0x)",
        row.delay_reduction_factor(),
        row.area_increase_factor()
    );
    Ok(())
}
